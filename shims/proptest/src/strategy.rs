//! Strategy trait and combinators for the proptest shim.
//!
//! A strategy produces `Option<Value>`: `None` signals a strategy-level
//! rejection (e.g. `prop_filter_map` declining an input), which the
//! runner retries without counting against the case budget.

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange};

/// A generator of test inputs.
pub trait Strategy {
    /// The produced input type.
    type Value;

    /// Draw one value, or `None` to reject this attempt.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Transform produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each produced value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (the reason string is kept
    /// for API parity; it is not reported by this shim).
    fn prop_filter<F>(self, _reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Filter and transform in one step: `None` rejects the input.
    fn prop_filter_map<U, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.pred)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        self.inner.generate(rng)
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $range:ty),* $(,)?) => {$(
        impl Strategy for $range {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(<$range as SampleRange<$t>>::sample(self.clone(), rng))
            }
        }
    )*};
}

impl_range_strategy!(
    usize => std::ops::Range<usize>,
    u64 => std::ops::Range<u64>,
    u32 => std::ops::Range<u32>,
    i64 => std::ops::Range<i64>,
    i32 => std::ops::Range<i32>,
    usize => std::ops::RangeInclusive<usize>,
    u64 => std::ops::RangeInclusive<u64>,
    u32 => std::ops::RangeInclusive<u32>,
    i64 => std::ops::RangeInclusive<i64>,
    i32 => std::ops::RangeInclusive<i32>,
    f64 => std::ops::Range<f64>,
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types usable as plain `name: Type` proptest arguments.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}

impl_arbitrary_std!(u64, u32, usize, bool);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rng.random::<u64>() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> i32 {
        rng.random::<u32>() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite values across a broad magnitude range; proptest proper
        // samples special values too, but in-repo properties only need
        // ordinary finite floats.
        (rng.random::<f64>() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        (rng.random::<f32>() - 0.5) * 2.0e6
    }
}

/// Strategy form of [`Arbitrary`] (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// An unconstrained strategy for `T` (used for `name: Type` arguments).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
