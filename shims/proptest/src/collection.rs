//! Collection strategies for the proptest shim (`collection::vec`).

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(
            r.start() <= r.end(),
            "empty size range {}..={}",
            r.start(),
            r.end()
        );
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = rng.random_range(self.size.min..=self.size.max);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
