//! Offline shim for `proptest`: the strategy combinators and runner
//! macros this workspace uses. Values are sampled with the in-repo
//! `rand` shim from a seed derived from the test name, so runs are
//! deterministic. There is **no shrinking**: a failing case reports its
//! message and panics without input minimisation.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a property-test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// Input rejected by `prop_assume!`; retried without counting.
    Reject,
}

/// Deterministic RNG for a named property test.
pub fn runner_rng(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Drive one property: generate inputs from `strategy`, run `case`,
/// panic on the first failure. Called by the `proptest!` expansion.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut case: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = runner_rng(name);
    let mut executed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(20).max(200);
    while executed < config.cases && attempts < max_attempts {
        attempts += 1;
        let Some(value) = strategy.generate(&mut rng) else {
            continue; // strategy-level rejection (prop_filter_map)
        };
        match case(value) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest property `{name}` failed after {executed} passing cases: {msg}");
            }
        }
    }
    assert!(
        executed > 0,
        "proptest property `{name}`: generator rejected every input ({attempts} attempts)"
    );
}

/// Everything a `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Assert a condition inside a property, failing the case (not the
/// process) so the runner can report the inputs' context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discard the current case (retried without counting towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test runner macro. Supports an optional leading
/// `#![proptest_config(...)]`, and per-test arguments of both forms:
/// `name in strategy` and `name: Type` (the latter meaning `any::<T>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_one! {
            cfg = ($cfg);
            meta = ($(#[$meta])*);
            name = $name;
            norm = [];
            args = [$($args)*];
            body = $body;
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    // `name in strategy, ...`
    (
        cfg = ($cfg:expr); meta = ($($meta:tt)*); name = $name:ident;
        norm = [$($norm:tt)*];
        args = [$arg:ident in $strat:expr, $($rest:tt)*];
        body = $body:block;
    ) => {
        $crate::__proptest_one! {
            cfg = ($cfg); meta = ($($meta)*); name = $name;
            norm = [$($norm)* ($arg, ($strat))];
            args = [$($rest)*];
            body = $body;
        }
    };
    // trailing `name in strategy`
    (
        cfg = ($cfg:expr); meta = ($($meta:tt)*); name = $name:ident;
        norm = [$($norm:tt)*];
        args = [$arg:ident in $strat:expr];
        body = $body:block;
    ) => {
        $crate::__proptest_one! {
            cfg = ($cfg); meta = ($($meta)*); name = $name;
            norm = [$($norm)* ($arg, ($strat))];
            args = [];
            body = $body;
        }
    };
    // `name: Type, ...` sugar for `any::<Type>()`
    (
        cfg = ($cfg:expr); meta = ($($meta:tt)*); name = $name:ident;
        norm = [$($norm:tt)*];
        args = [$arg:ident : $ty:ty, $($rest:tt)*];
        body = $body:block;
    ) => {
        $crate::__proptest_one! {
            cfg = ($cfg); meta = ($($meta)*); name = $name;
            norm = [$($norm)* ($arg, ($crate::strategy::any::<$ty>()))];
            args = [$($rest)*];
            body = $body;
        }
    };
    // trailing `name: Type`
    (
        cfg = ($cfg:expr); meta = ($($meta:tt)*); name = $name:ident;
        norm = [$($norm:tt)*];
        args = [$arg:ident : $ty:ty];
        body = $body:block;
    ) => {
        $crate::__proptest_one! {
            cfg = ($cfg); meta = ($($meta)*); name = $name;
            norm = [$($norm)* ($arg, ($crate::strategy::any::<$ty>()))];
            args = [];
            body = $body;
        }
    };
    // all arguments normalised: emit the test fn
    (
        cfg = ($cfg:expr); meta = ($($meta:tt)*); name = $name:ident;
        norm = [$(($arg:ident, ($strat:expr)))+];
        args = [];
        body = $body:block;
    ) => {
        $($meta)*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn typed_args_work(seed: u64, flag: bool) {
            let _ = (seed, flag);
            prop_assert_eq!(seed, seed);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(1usize..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1usize), Just(3), Just(5)]) {
            prop_assert!(k == 1 || k == 3 || k == 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            &(0usize..10,),
            |(_n,)| Err(crate::TestCaseError::Fail("nope".into())),
        );
    }

    #[test]
    fn flat_map_and_filter_map() {
        let strat = (1usize..4, 1usize..4)
            .prop_flat_map(|(a, b)| crate::collection::vec(0usize..10, (a * b)..=(a * b)))
            .prop_filter_map("nonempty", |v| (!v.is_empty()).then_some(v.len()));
        let mut rng = crate::runner_rng("flat_map_and_filter_map");
        for _ in 0..50 {
            let n = strat.generate(&mut rng).unwrap();
            assert!((1..=9).contains(&n));
        }
    }
}
