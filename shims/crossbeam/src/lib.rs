//! Offline shim for `crossbeam`: the scoped-thread API
//! (`crossbeam::thread::scope`) layered over `std::thread::scope`.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// Result of joining a scoped thread (mirrors `std::thread::Result`).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handed to the closure passed to [`scope`]; spawn scoped
    /// threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing [`scope`] call. As in
        /// crossbeam, the closure receives the scope again so it can
        /// spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns once every spawned thread has finished.
    ///
    /// Unlike crossbeam this propagates child panics as a panic (via
    /// `std::thread::scope`) rather than an `Err`, which is equivalent
    /// for callers that `.unwrap()` the result — as this workspace does.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spawn_returns_joinable_handles() {
        let out: Vec<usize> = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..3).map(|i| s.spawn(move |_| i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
