//! Offline shim for `crossbeam`: the scoped-thread API
//! (`crossbeam::thread::scope`) layered over `std::thread::scope`, and
//! the bounded MPMC channel subset of `crossbeam::channel` that the
//! ingress layer uses.

/// Bounded multi-producer multi-consumer channels
/// (`crossbeam::channel`), implemented over a mutex-protected ring with
/// two condvars. The API subset mirrors crossbeam exactly:
/// [`bounded`], cloneable [`Sender`]/[`Receiver`], blocking and
/// non-blocking operations, and disconnect semantics (a receive on a
/// channel whose senders are all dropped drains the buffer first, then
/// errors).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            // A panicking sender cannot corrupt a VecDeque push/pop, so
            // poisoning is recoverable here.
            match self.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half of a bounded channel. Clone freely: the channel
    /// disconnects only when the last clone drops.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a bounded channel. Clone freely for
    /// multi-consumer draining.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a bounded MPMC channel holding at most `capacity`
    /// messages (a zero capacity is clamped to one: this shim has no
    /// rendezvous mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while the channel is full. Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.chan.capacity {
                    state.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = match self.chan.not_full.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Enqueue `value` without blocking; a full channel returns the
        /// value back in [`TrySendError::Full`] — the load-shedding
        /// primitive.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.chan.capacity {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's capacity bound.
        pub fn capacity(&self) -> usize {
            self.chan.capacity
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue one message, blocking while the channel is empty.
        /// Errors only when the buffer is drained *and* every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = match self.chan.not_empty.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Dequeue one message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            if let Some(value) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must wake to observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Blocked senders must wake to observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }
}

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// Result of joining a scoped thread (mirrors `std::thread::Result`).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handed to the closure passed to [`scope`]; spawn scoped
    /// threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing [`scope`] call. As in
        /// crossbeam, the closure receives the scope again so it can
        /// spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns once every spawned thread has finished.
    ///
    /// Unlike crossbeam this propagates child panics as a panic (via
    /// `std::thread::scope`) rather than an `Err`, which is equivalent
    /// for callers that `.unwrap()` the result — as this workspace does.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod channel_tests {
    use crate::channel::{bounded, TryRecvError, TrySendError};
    use std::collections::HashSet;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_reports_full_and_returns_value() {
        let (tx, rx) = bounded(1);
        tx.try_send(10).unwrap();
        assert_eq!(tx.try_send(11), Err(TrySendError::Full(11)));
        assert_eq!(rx.recv().unwrap(), 10);
        tx.try_send(12).unwrap();
    }

    #[test]
    fn recv_drains_buffer_before_disconnecting() {
        let (tx, rx) = bounded(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert!(tx.send(5).is_err());
        assert!(matches!(tx.try_send(6), Err(TrySendError::Disconnected(6))));
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 500;
        let (tx, rx) = bounded(8);
        let received: Vec<usize> = std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send(p * PER_PRODUCER + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(received.len(), PRODUCERS * PER_PRODUCER);
        let unique: HashSet<usize> = received.iter().copied().collect();
        assert_eq!(unique.len(), PRODUCERS * PER_PRODUCER);
    }

    #[test]
    fn blocking_send_resumes_when_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| tx.send(1).unwrap()); // blocks until the recv below
            assert_eq!(rx.recv().unwrap(), 0);
            assert_eq!(rx.recv().unwrap(), 1);
        });
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spawn_returns_joinable_handles() {
        let out: Vec<usize> = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..3).map(|i| s.spawn(move |_| i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
