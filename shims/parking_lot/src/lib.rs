//! Offline shim for `parking_lot`: the same lock API the workspace uses
//! (`lock`/`read`/`write` returning guards directly, no poisoning),
//! implemented over `std::sync`. A poisoned std lock means a thread
//! panicked while holding the guard; parking_lot's semantics are to keep
//! going, so we recover the inner guard instead of propagating.

use std::sync::{self, PoisonError};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
            assert!(l.try_write().is_none());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
