//! Offline shim for `rand`: a deterministic, seedable PRNG exposing the
//! rand 0.10 method names the workspace uses (`seed_from_u64`,
//! `random`, `random_range`, `shuffle`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high
//! quality for simulation/testing purposes, but a *different stream*
//! than the real crate's `StdRng`, so numbers differ from upstream runs
//! while staying reproducible within this repository.

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

use rngs::StdRng;

/// A type that can be produced uniformly at random ([`RngExt::random`]).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw(rng: &mut StdRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn draw(rng: &mut StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn draw(rng: &mut StdRng) -> i32 {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

/// A range argument accepted by [`RngExt::random_range`]. Generic over
/// the produced type (rather than using an associated type) so that
/// usage-site constraints — e.g. indexing a slice with the result —
/// flow back into integer-literal inference, as with upstream rand.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

fn uniform_below(rng: &mut StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end,
                    "random_range: empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as Standard>::draw(rng);
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "random_range: empty f64 range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The drawing methods (rand 0.10 naming).
pub trait RngExt {
    /// Uniform value of type `T` (full width for ints, `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T;
    /// Uniform value within `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Slice utilities (mirrors `rand::seq`).
pub mod seq {
    use super::{RngExt, StdRng};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(10..=12u64);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
