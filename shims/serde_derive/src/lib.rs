//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shapes this workspace actually
//! declares — non-generic structs with named fields, tuple structs, and
//! enums with unit / tuple / struct variants. No `#[serde(...)]`
//! attribute support (none is used in-repo).
//!
//! Implemented directly on `proc_macro::TokenStream` because the usual
//! helper crates (`syn`, `quote`) are unavailable offline. The parser
//! extracts just the type name and the field/variant names; the
//! generated code leans on type inference to pick the right
//! `Serialize`/`Deserialize` impls for field types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields; the count.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip any number of outer attributes (`#[...]`), including the
    /// `#[doc = "..."]` form doc comments lower to.
    fn skip_attributes(&mut self) {
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
    }

    /// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

/// Count / name the fields inside a brace or paren group.
fn parse_fields(group: &proc_macro::Group) -> Result<Fields, String> {
    match group.delimiter() {
        Delimiter::Brace => {
            let mut c = Cursor::new(group.stream());
            let mut names = Vec::new();
            while c.peek().is_some() {
                c.skip_attributes();
                c.skip_visibility();
                let name = c.expect_ident()?;
                match c.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, found {other:?}")),
                }
                // Skip the type: consume until a comma at angle-depth 0.
                let mut angle: i32 = 0;
                loop {
                    match c.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) => {
                            let ch = p.as_char();
                            if ch == '<' {
                                angle += 1;
                            } else if ch == '>' {
                                angle -= 1;
                            } else if ch == ',' && angle == 0 {
                                c.pos += 1;
                                break;
                            }
                            c.pos += 1;
                        }
                        Some(_) => c.pos += 1,
                    }
                }
                names.push(name);
            }
            Ok(Fields::Named(names))
        }
        Delimiter::Parenthesis => {
            let mut count = 0usize;
            let mut angle: i32 = 0;
            let mut any = false;
            for t in group.stream() {
                any = true;
                if let TokenTree::Punct(p) = &t {
                    let ch = p.as_char();
                    if ch == '<' {
                        angle += 1;
                    } else if ch == '>' {
                        angle -= 1;
                    } else if ch == ',' && angle == 0 {
                        count += 1;
                    }
                }
            }
            Ok(Fields::Tuple(if any { count + 1 } else { 0 }))
        }
        _ => Err("unsupported field group".into()),
    }
}

fn parse_input(ts: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(ts);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) => {
                let fields = parse_fields(g)?;
                Ok(Input::Struct { name, fields })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unexpected token after struct name: {other:?}")),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.skip_attributes();
                let vname = vc.expect_ident()?;
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) => {
                        let f = parse_fields(g)?;
                        vc.pos += 1;
                        f
                    }
                    _ => Fields::Unit,
                };
                if let Some(TokenTree::Punct(p)) = vc.peek() {
                    if p.as_char() == ',' {
                        vc.pos += 1;
                    }
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Ok(Input::Enum { name, variants })
        }
        other => Err(format!("serde_derive shim: cannot derive for `{other}`")),
    }
}

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                        .collect();
                    format!(
                        "::serde::Value::Object(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![{}])",
                                binds.join(", "),
                                obj_entry(vn, &payload)
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![{}])",
                                fields.join(", "),
                                obj_entry(
                                    vn,
                                    &format!(
                                        "::serde::Value::Object(::std::vec![{}])",
                                        entries.join(", ")
                                    )
                                )
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{ \
                           ::serde::Value::Array(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}({items})), \
                           __other => ::std::result::Result::Err(::serde::Error::msg( \
                             format!(\"expected {n}-element array for {name}, got {{__other:?}}\"))), \
                         }}",
                        items = items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__v.get_field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn})")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}( \
                               ::serde::Deserialize::from_value(__payload)?))"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __payload {{ \
                                   ::serde::Value::Array(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{vn}({items})), \
                                   __other => ::std::result::Result::Err(::serde::Error::msg( \
                                     format!(\"bad payload for {name}::{vn}: {{__other:?}}\"))), \
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value( \
                                           __payload.get_field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     match __v {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => ::std::result::Result::Err(::serde::Error::msg( \
                           format!(\"unknown {name} variant `{{__other}}`\"))), \
                       }}, \
                       ::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                         let (__tag, __payload) = &__entries[0]; \
                         match __tag.as_str() {{ \
                           {tagged_arms} \
                           __other => ::std::result::Result::Err(::serde::Error::msg( \
                             format!(\"unknown {name} variant `{{__other}}`\"))), \
                         }} \
                       }} \
                       __other => ::std::result::Result::Err(::serde::Error::msg( \
                         format!(\"cannot deserialize {name} from {{__other:?}}\"))), \
                     }} \
                   }} \
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                tagged_arms = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(", "))
                },
            )
        }
    }
}

fn derive(ts: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(ts) {
        Ok(input) => gen(&input)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(e) => format!("compile_error!({e:?});").parse().unwrap(),
    }
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(ts: TokenStream) -> TokenStream {
    derive(ts, gen_serialize)
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(ts: TokenStream) -> TokenStream {
    derive(ts, gen_deserialize)
}
