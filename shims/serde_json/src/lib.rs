//! Offline shim for `serde_json`: compact and pretty printing plus a
//! recursive-descent parser for the `serde` shim's [`Value`] model.
//!
//! Floats are printed with Rust's shortest-roundtrip `Display`, so a
//! serialise → parse cycle reproduces every finite `f64` exactly.
//! Non-finite floats (NaN, ±inf — they appear in telemetry means and
//! bandit arm statistics) have no JSON literal; they are written as a
//! tagged object `{"$f64":"nan"|"inf"|"-inf"}` and collapsed back to
//! `Value::Num` on parse, so the cycle never panics or errors on them.

pub use serde::Error;
pub use serde::Value;

/// Key of the tagged-object encoding for non-finite floats.
const NONFINITE_TAG: &str = "$f64";

fn nonfinite_label(n: f64) -> &'static str {
    if n.is_nan() {
        "nan"
    } else if n > 0.0 {
        "inf"
    } else {
        "-inf"
    }
}

fn nonfinite_from_label(label: &str) -> Option<f64> {
    match label {
        "nan" => Some(f64::NAN),
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        _ => None,
    }
}

/// Serialise to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialise to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into any shim-`Deserialize` type (including
/// [`Value`] itself).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                // Tagged encoding: JSON has no literal for these.
                out.push_str("{\"");
                out.push_str(NONFINITE_TAG);
                out.push_str("\":\"");
                out.push_str(nonfinite_label(*n));
                out.push_str("\"}");
            } else {
                out.push_str(&n.to_string());
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, depth + 1)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("{what} at byte {}", self.pos))
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace; accept BMP scalars only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat("{")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(collapse_nonfinite(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Collapse the tagged non-finite encoding back to a number: an object
/// that is exactly `{"$f64": "<label>"}` with a recognised label parses
/// as `Value::Num`; anything else stays a plain object.
fn collapse_nonfinite(entries: Vec<(String, Value)>) -> Value {
    if let [(key, Value::Str(label))] = entries.as_slice() {
        if key == NONFINITE_TAG {
            if let Some(n) = nonfinite_from_label(label) {
                return Value::Num(n);
            }
        }
    }
    Value::Object(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(1.0)),
            (
                "b".into(),
                Value::Array(vec![
                    Value::Bool(true),
                    Value::Null,
                    Value::Str("x\"y".into()),
                ]),
            ),
        ]);
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [1.0f64, 0.1, 1e-9, 123456.789012345, 2.5e-300, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip_via_tagged_encoding() {
        // Typed round-trip: the tagged object collapses back to Num, so
        // the existing f64 Deserialize impl sees a plain number.
        for (x, label) in [
            (f64::NAN, "nan"),
            (f64::INFINITY, "inf"),
            (f64::NEG_INFINITY, "-inf"),
        ] {
            let s = to_string(&x).unwrap();
            assert_eq!(s, format!("{{\"$f64\":\"{label}\"}}"), "{x}");
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
        // Nested inside containers, compact and pretty.
        let v = vec![1.0f64, f64::NAN, f64::NEG_INFINITY];
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Vec<f64> = from_str(&s).unwrap();
            assert_eq!(back.len(), 3);
            assert_eq!(back[0], 1.0);
            assert!(back[1].is_nan());
            assert_eq!(back[2], f64::NEG_INFINITY);
        }
    }

    #[test]
    fn nonfinite_tag_lookalikes_stay_plain_objects() {
        // Unrecognised label, extra keys, non-string payload: all parse
        // as ordinary objects, never as numbers.
        let v: Value = from_str(r#"{"$f64":"huge"}"#).unwrap();
        assert_eq!(v["$f64"], "huge");
        let v: Value = from_str(r#"{"$f64":"nan","extra":1}"#).unwrap();
        assert_eq!(v["extra"], 1);
        let v: Value = from_str(r#"{"$f64":3}"#).unwrap();
        assert_eq!(v["$f64"], 3);
    }

    #[test]
    fn parses_escapes_and_nested_structures() {
        let v: Value = from_str(r#"{"k": [1, -2.5, "a\nbA", {"inner": null}]}"#).unwrap();
        assert_eq!(v["k"][0], 1);
        assert_eq!(v["k"][1].as_f64(), Some(-2.5));
        assert_eq!(v["k"][2], "a\nbA");
        assert!(v["k"][3]["inner"].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<f64> = from_str("[1, 2.5, 3]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, 3.0]);
        let n: usize = from_str("640").unwrap();
        assert_eq!(n, 640);
    }
}
