//! Offline shim for `rayon`: the data-parallel iterator surface this
//! workspace uses (`par_iter`, `into_par_iter`, `par_chunks_mut` with
//! `map` / `enumerate` / `for_each` / `collect`), executed with real
//! threads via `std::thread::scope`.
//!
//! Unlike rayon this is *eager* with static partitioning: each adapter
//! materialises its input, splits it into one contiguous chunk per
//! worker thread, and joins before returning. Ordering of results is
//! preserved. That is semantically equivalent for the pure closures used
//! here, at the cost of rayon's work stealing.

use std::ops::Range;

fn thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Run `f` over `items` on up to [`thread_count`] threads, preserving
/// input order in the output.
fn run_par<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// An eager "parallel iterator": a materialised list of items whose
/// consuming adapters run on multiple threads.
pub struct Par<T> {
    items: Vec<T>,
}

impl<T: Send> Par<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> Par<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        Par {
            items: run_par(self.items, f),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_par(self.items, f);
    }

    /// Collect the (already computed, ordered) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `par_iter` over slices (and anything derefing to one, e.g. `Vec`).
pub trait ParallelSliceRef<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> Par<&T>;
}

impl<T: Sync> ParallelSliceRef<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk` (last may be shorter).
    fn par_chunks_mut(&mut self, chunk: usize) -> Par<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> Par<&mut [T]> {
        Par {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

/// `into_par_iter` over owned collections and ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert into an eager parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> Par<usize> {
        Par {
            items: self.collect(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut, ParallelSliceRef};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..1000).collect();
        let out: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let out: Vec<usize> = (0..37usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 37);
        assert_eq!(out[36], 37);
    }

    #[test]
    fn par_chunks_mut_writes_all_chunks() {
        let mut v = vec![0u32; 100];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[99], 100usize.div_ceil(7) as u32);
    }

    #[test]
    fn collect_into_result_short_circuit_semantics() {
        let v: Vec<usize> = (0..10).collect();
        let ok: Result<Vec<usize>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }
}
