//! Offline shim for `criterion`: the macro/struct surface the workspace
//! benches use, measured with plain wall-clock timing.
//!
//! Statistics are deliberately simple — per-sample mean over an
//! adaptively chosen iteration count, reporting min/mean/max across
//! samples. When the binary is invoked with `--test` (as `cargo test`
//! does for bench targets), every benchmark runs exactly once so the
//! test suite stays fast.

use std::time::{Duration, Instant};

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Join a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Timing loop handle passed to each benchmark routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, storing one duration per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm up and size the inner loop so one sample costs ~2 ms.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Set samples per benchmark (builder style, as upstream).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Apply command-line mode flags (`--test` → single-shot runs).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, self.sample_size, self.test_mode, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Print the end-of-run banner (called by `criterion_group!`).
    pub fn final_summary(&mut self) {
        if !self.test_mode {
            println!();
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        test_mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode ok: {label}");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label:<56} (no samples — routine never called iter)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap();
    let max = bencher.samples.iter().max().copied().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let mut line = format!(
        "{label:<56} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            line.push_str(&format!(" thrpt: {:.3e} {unit}", count / secs));
        }
    }
    println!("{line}");
}

/// Declare a benchmark group function, upstream-compatible in both the
/// `name = / config = / targets =` and plain positional forms.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.test_mode = true; // keep the unit test fast
        let mut calls = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("f", 42), &7usize, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
