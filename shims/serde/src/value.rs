//! The in-memory JSON-like data model shared by the `serde` and
//! `serde_json` shims.

/// A JSON value. Numbers are stored as `f64` (all numbers serialised by
/// this workspace fit exactly: indices, sizes and simulated seconds).
/// Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Look up a field of an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but produces a descriptive error, for derived
    /// `Deserialize` impls.
    pub fn get_field(&self, key: &str) -> Result<&Value, crate::Error> {
        self.get(key)
            .ok_or_else(|| crate::Error::msg(format!("missing field `{key}`")))
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object field access; missing keys index to `Null` (as in
    /// `serde_json`), so chained lookups don't panic.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Array element access; out-of-range indexes to `Null`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_num_eq!(u32, u64, usize, i32, i64, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("a".into(), Value::Num(1.0)),
            (
                "items".into(),
                Value::Array(vec![Value::Str("x".into()), Value::Bool(true)]),
            ),
        ])
    }

    #[test]
    fn index_and_accessors() {
        let v = sample();
        assert_eq!(v["a"], 1);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["items"][0], "x");
        assert_eq!(v["items"][1], true);
        assert!(v["missing"].is_null());
        assert!(v["items"][99].is_null());
        assert_eq!(v["items"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn numeric_equality_across_types() {
        let n = Value::Num(640.0);
        assert_eq!(n, 640u64);
        assert_eq!(n, 640usize);
        assert_eq!(n, 640i32);
        assert_eq!(n, 640.0f64);
        assert!(n.as_u64() == Some(640));
        assert!(Value::Num(1.5).as_u64().is_none());
    }
}
