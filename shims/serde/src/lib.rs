//! Offline shim for `serde`: `Serialize` / `Deserialize` traits over an
//! in-memory JSON-like [`Value`] model, plus the derive macros
//! (re-exported from the sibling `serde_derive` proc-macro shim).
//!
//! The real serde decouples data formats from the data model through
//! visitor traits; this shim hard-wires the single format the workspace
//! uses (JSON via the `serde_json` shim) for a fraction of the surface.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Deserialisation error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// Convert `self` into the value model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => {
                        let out = *n as $t;
                        if out as f64 == *n {
                            Ok(out)
                        } else {
                            Err(Error::msg(format!(
                                "number {n} out of range for {}", stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(Error::msg(format!(
                                "expected {expect}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: std::fmt::Display + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        for v in [0usize, 1, 640, usize::MAX >> 12] {
            assert_eq!(usize::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![Some(1u32), None, Some(3)];
        let back = Vec::<Option<u32>>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integer_type_errors_are_reported() {
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
    }
}
