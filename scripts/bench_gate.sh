#!/usr/bin/env bash
# Bench-regression gate: run the micro benchmarks in smoke mode and
# compare their tracked metrics against the blessed baselines in
# bench_results/.
#
#   scripts/bench_gate.sh            -- gate: fail on regression
#   BLESS=1 scripts/bench_gate.sh    -- re-bless: overwrite the
#                                       baselines with this run's
#                                       numbers (commit the diff)
#
# Smoke mode (`cargo bench ... -- --test`) runs every criterion target
# single-shot, so the whole gate takes seconds. Candidate JSONs land in
# a scratch directory via AUTOKERNEL_BENCH_DIR — the committed
# baselines are never written unless BLESS=1. The tracked metrics and
# their tolerances live in crates/bench/src/bin/bench_gate.rs; the
# rationale is documented in DESIGN.md §12.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline_dir="bench_results"
candidate_dir="target/bench_gate"
rm -rf "${candidate_dir}"
mkdir -p "${candidate_dir}"

echo "==> collecting candidate bench numbers (smoke mode) into ${candidate_dir}"
AUTOKERNEL_BENCH_DIR="${PWD}/${candidate_dir}" \
    cargo bench -q -p autokernel-bench --bench micro_selection -- --test
AUTOKERNEL_BENCH_DIR="${PWD}/${candidate_dir}" \
    cargo bench -q -p autokernel-bench --bench micro_online -- --test
AUTOKERNEL_BENCH_DIR="${PWD}/${candidate_dir}" \
    cargo bench -q -p autokernel-bench --bench micro_ingress -- --test
AUTOKERNEL_BENCH_DIR="${PWD}/${candidate_dir}" \
    cargo bench -q -p autokernel-bench --bench micro_persist -- --test
AUTOKERNEL_BENCH_DIR="${PWD}/${candidate_dir}" \
    cargo bench -q -p autokernel-bench --bench micro_analytical -- --test
AUTOKERNEL_BENCH_DIR="${PWD}/${candidate_dir}" \
    cargo bench -q -p autokernel-bench --bench micro_decide -- --test

if [ "${BLESS:-0}" = "1" ]; then
    echo "==> BLESS=1: overwriting baselines in ${baseline_dir}/"
    for candidate in "${candidate_dir}"/*.json; do
        cp -v "${candidate}" "${baseline_dir}/$(basename "${candidate}")"
    done
    echo "re-blessed; review and commit the ${baseline_dir}/ diff"
    exit 0
fi

echo "==> comparing against ${baseline_dir}/ baselines"
cargo run -q --release -p autokernel-bench --bin bench_gate -- \
    "${baseline_dir}" "${candidate_dir}"
