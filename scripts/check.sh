#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection suite (cargo test -q --test resilient_executor)"
cargo test -q --test resilient_executor

echo "==> resilient serving example (cargo run --release --example resilient_serving)"
cargo run --release --example resilient_serving

echo "All checks passed."
