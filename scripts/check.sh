#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection suite (cargo test -q --test resilient_executor)"
cargo test -q --test resilient_executor

echo "==> hot-path lint (must pass clean, < 2s)"
cargo build -q --release --bin hotpath_lint
lint_start=$(date +%s%N)
./target/release/hotpath_lint
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "    lint wall time: ${lint_ms} ms"
if [ "${lint_ms}" -ge 2000 ]; then
    echo "    FAIL: hot-path lint exceeded the 2s budget" >&2
    exit 1
fi

echo "==> hot-path lint (must fail on the seeded fixture)"
if ./target/release/hotpath_lint crates/analyze/tests/fixtures/violations.rs > /dev/null; then
    echo "    FAIL: linter accepted the deliberately violating fixture" >&2
    exit 1
fi
echo "    fixture correctly rejected"

echo "==> kernel-space analyzer self-check (analyzer vs validate_launch)"
cargo run -q --release --bin analyze_space

echo "==> resilient serving example (cargo run --release --example resilient_serving)"
cargo run --release --example resilient_serving

echo "==> adaptive serving example (cargo run --release --example adaptive_serving)"
cargo run --release --example adaptive_serving

echo "All checks passed."
