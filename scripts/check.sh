#!/usr/bin/env bash
# Repo-wide hygiene gate, in two tiers:
#
#   scripts/check.sh fast   -- formatting, clippy, unit tests (~seconds
#                              after a warm build; the inner-loop gate)
#   scripts/check.sh full   -- everything: the whole test suite, the
#                              hot-path lint and its must-fail fixture,
#                              the analyzer self-check, the concurrency
#                              audit (atomic roles, lock order, model
#                              checker), the serving examples and the
#                              bench-regression gate (the default, and
#                              what CI runs)
set -euo pipefail
cd "$(dirname "$0")/.."

tier="${1:-full}"
case "${tier}" in
fast | full) ;;
*)
    echo "usage: scripts/check.sh [fast|full]" >&2
    exit 2
    ;;
esac

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${tier}" = "fast" ]; then
    echo "==> unit tests (cargo test -q --lib)"
    cargo test -q --lib
    echo "All fast-tier checks passed."
    exit 0
fi

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection suite (cargo test -q --test resilient_executor)"
cargo test -q --test resilient_executor

echo "==> sharded scheduler suite (cargo test -q --test sharded_scheduler)"
cargo test -q --test sharded_scheduler

echo "==> ingress + bounded-cache suite (cargo test -q --test ingress_serving)"
cargo test -q --test ingress_serving

echo "==> hot-path lint (must pass clean, < 2s)"
cargo build -q --release --bin hotpath_lint
lint_start=$(date +%s%N)
./target/release/hotpath_lint
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "    lint wall time: ${lint_ms} ms"
if [ "${lint_ms}" -ge 2000 ]; then
    echo "    FAIL: hot-path lint exceeded the 2s budget" >&2
    exit 1
fi

echo "==> hot-path lint (must fail on the seeded fixture)"
if ./target/release/hotpath_lint crates/analyze/tests/fixtures/violations.rs > /dev/null; then
    echo "    FAIL: linter accepted the deliberately violating fixture" >&2
    exit 1
fi
echo "    fixture correctly rejected"

echo "==> hot-path lint (must fail on the NaN-sweep fixture)"
if ./target/release/hotpath_lint crates/analyze/tests/fixtures/sweep/crates/mlkit/src/eigen.rs > /dev/null; then
    echo "    FAIL: linter accepted partial_cmp in a swept comparator" >&2
    exit 1
fi
echo "    sweep fixture correctly rejected"

echo "==> hot-path lint (must fail on the steal-path allocation fixture)"
if ./target/release/hotpath_lint crates/analyze/tests/fixtures/alloc/deque.rs > /dev/null; then
    echo "    FAIL: linter accepted allocations on the steal path" >&2
    exit 1
fi
echo "    deque fixture correctly rejected"

echo "==> kernel-space analyzer self-check (analyzer vs validate_launch)"
cargo run -q --release --bin analyze_space

echo "==> analytical selector head-to-head (geomean floor + golden report)"
cargo run -q --release --bin analytical_eval

echo "==> concurrency audit (atomic roles + lock order + model checker, < 60s)"
cargo build -q --release --bin concurrency_audit
conc_start=$(date +%s%N)
./target/release/concurrency_audit
conc_ms=$(( ($(date +%s%N) - conc_start) / 1000000 ))
echo "    audit wall time: ${conc_ms} ms"
if [ "${conc_ms}" -ge 60000 ]; then
    echo "    FAIL: concurrency audit exceeded the 60s budget" >&2
    exit 1
fi

echo "==> resilient serving example (cargo run --release --example resilient_serving)"
cargo run --release --example resilient_serving

echo "==> adaptive serving example (cargo run --release --example adaptive_serving)"
cargo run --release --example adaptive_serving

echo "==> sharded serving example (cargo run --release --example sharded_serving)"
cargo run --release --example sharded_serving

echo "==> ingress serving example (cargo run --release --example ingress_serving)"
cargo run --release --example ingress_serving

echo "==> crash recovery example (cargo run --release --example crash_recovery)"
cargo run --release --example crash_recovery

echo "==> bench-regression gate (scripts/bench_gate.sh)"
scripts/bench_gate.sh

echo "All checks passed."
