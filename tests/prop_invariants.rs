//! Property-based integration tests: invariants that must hold for
//! arbitrary shapes and configurations across the whole stack.

use autokernel::core::cache::CachedSelector;
use autokernel::core::{PerformanceDataset, PruneMethod, Selector, SelectorKind};
use autokernel::gemm::config::{KernelConfig, WORK_GROUPS};
use autokernel::gemm::reference::{max_abs_diff, reference_gemm, test_matrices};
use autokernel::gemm::{model, GemmShape, TiledGemmKernel};
use autokernel::sim::{perf, Buffer, DeviceSpec, DeviceType, Platform, Queue};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn arb_shape() -> impl Strategy<Value = GemmShape> {
    (1usize..200, 1usize..300, 1usize..200).prop_map(|(m, k, n)| GemmShape::new(m, k, n))
}

/// A selector trained once and shared across property cases (training
/// is far too slow to repeat per case, and the properties only concern
/// inference).
fn shared_selector() -> Arc<Selector> {
    static SEL: OnceLock<Arc<Selector>> = OnceLock::new();
    Arc::clone(SEL.get_or_init(|| {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        let ds = PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::TopN.select(&ds, &train, 6, 0).unwrap();
        Arc::new(Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap())
    }))
}

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (0usize..KernelConfig::count()).prop_map(|i| KernelConfig::from_index(i).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every configuration computes the same product as the reference,
    /// on arbitrary (including awkward) shapes.
    #[test]
    fn any_config_matches_reference(shape in arb_shape(), cfg in arb_config()) {
        let (a, b) = test_matrices(shape, 11);
        let mut expect = vec![0.0f32; shape.m * shape.n];
        reference_gemm(shape, &a, &b, &mut expect);

        let bc = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel = TiledGemmKernel::new(
            cfg, shape, Buffer::from_vec(a), Buffer::from_vec(b), bc.clone(),
        ).unwrap();
        let platform = Platform::standard();
        let queue = Queue::new(platform.device_by_type(DeviceType::Gpu).unwrap());
        queue.submit(&kernel, kernel.preferred_range().unwrap()).unwrap();
        let err = max_abs_diff(&bc.to_vec(), &expect);
        prop_assert!(err < 1e-3, "config {cfg} on {shape}: err {err}");
    }

    /// The launch range always covers the useful grid and is padded to
    /// exact work-group multiples.
    #[test]
    fn launch_range_covers_and_pads(shape in arb_shape(), cfg in arb_config()) {
        let grid = model::useful_grid(&cfg, &shape);
        let range = model::launch_range(&cfg, &shape).unwrap();
        prop_assert!(range.global()[0] >= grid[0]);
        prop_assert!(range.global()[1] >= grid[1]);
        prop_assert_eq!(range.global()[0] % cfg.work_group.rows, 0);
        prop_assert_eq!(range.global()[1] % cfg.work_group.cols, 0);
        // Padding never exceeds one work-group per dimension.
        prop_assert!(range.global()[0] - grid[0] < cfg.work_group.rows);
        prop_assert!(range.global()[1] - grid[1] < cfg.work_group.cols);
    }

    /// Cost-model outputs are finite, positive and bounded sanely for
    /// every (config, shape, device) triple.
    #[test]
    fn cost_model_outputs_are_physical(shape in arb_shape(), cfg in arb_config()) {
        for device in [
            DeviceSpec::amd_r9_nano(),
            DeviceSpec::desktop_gpu(),
            DeviceSpec::embedded_accelerator(),
        ] {
            let profile = model::profile(&cfg, &shape, &device);
            let range = model::launch_range(&cfg, &shape).unwrap();
            let cost = perf::estimate_cost(&device, &profile, &range);
            prop_assert!(cost.total_s.is_finite() && cost.total_s > 0.0);
            prop_assert!(cost.total_s >= device.launch_overhead);
            prop_assert!((0.0..=1.0).contains(&cost.occupancy));
            prop_assert!((0.0..=1.0).contains(&cost.utilization));
            // Achieved FLOP/s never exceeds peak.
            let achieved = cost.achieved_flops(shape.flops());
            prop_assert!(achieved <= device.peak_flops * 1.001,
                "{cfg} on {shape}: {achieved} > peak");
        }
    }

    /// Pricing is deterministic: two queues on the same device price a
    /// launch identically.
    #[test]
    fn pricing_is_deterministic(shape in arb_shape(), cfg in arb_config()) {
        let device = std::sync::Arc::new(DeviceSpec::amd_r9_nano());
        let q1 = Queue::timing_only(device.clone());
        let q2 = Queue::timing_only(device.clone());
        let profile = model::profile(&cfg, &shape, &device);
        let range = model::launch_range(&cfg, &shape).unwrap();
        let seed = model::noise_seed(&cfg, &shape);
        prop_assert_eq!(
            q1.price(&profile, &range, seed).unwrap().1,
            q2.price(&profile, &range, seed).unwrap().1
        );
    }

    /// Work-group shape is a runtime parameter: changing it never
    /// changes results, only timing.
    #[test]
    fn work_group_does_not_change_results(shape in arb_shape(), tile_idx in 0usize..64) {
        let (tr, tc, ad) = KernelConfig::compile_time_variants()[tile_idx];
        let (a, b) = test_matrices(shape, 5);
        let mut outputs = Vec::new();
        for wg in [WORK_GROUPS[0], WORK_GROUPS[6], WORK_GROUPS[9]] {
            let cfg = KernelConfig::new(tr, tc, ad, wg).unwrap();
            let bc = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
            let kernel = TiledGemmKernel::new(
                cfg, shape, Buffer::from_vec(a.clone()), Buffer::from_vec(b.clone()), bc.clone(),
            ).unwrap();
            let platform = Platform::standard();
            let queue = Queue::new(platform.device_by_type(DeviceType::Gpu).unwrap());
            queue.submit(&kernel, kernel.preferred_range().unwrap()).unwrap();
            outputs.push(bc.to_vec());
        }
        prop_assert_eq!(max_abs_diff(&outputs[0], &outputs[1]), 0.0);
        prop_assert_eq!(max_abs_diff(&outputs[0], &outputs[2]), 0.0);
    }

    /// The serving cache is a pure memoisation: for arbitrary shapes,
    /// cold lookups, warm lookups and lookups after concurrent warm-up
    /// from several threads all equal the uncached selector's answer.
    #[test]
    fn cached_selection_equals_uncached(shapes in proptest::collection::vec(arb_shape(), 1..8)) {
        let selector = shared_selector();
        let cached = CachedSelector::new(Arc::clone(&selector));
        for shape in &shapes {
            let direct = selector.select_shape(shape).unwrap();
            prop_assert_eq!(cached.select(shape).unwrap(), direct, "cold lookup for {}", shape);
            prop_assert_eq!(cached.select(shape).unwrap(), direct, "warm lookup for {}", shape);
        }

        // Concurrent warm-up of a fresh cache must not change decisions.
        let fresh = CachedSelector::new(Arc::clone(&selector));
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let fresh = &fresh;
                let shapes = &shapes;
                scope.spawn(move |_| {
                    for shape in shapes {
                        fresh.select(shape).unwrap();
                    }
                });
            }
        }).unwrap();
        for shape in &shapes {
            prop_assert_eq!(
                fresh.select(shape).unwrap(),
                selector.select_shape(shape).unwrap(),
                "post-concurrent-warm-up lookup for {}",
                shape
            );
        }
        let t = fresh.telemetry();
        prop_assert_eq!(t.hits() + t.misses(), t.total());
    }
}
