//! Integration tests of the resilient execution layer: the circuit
//! breaker's state machine under arbitrary event sequences, the
//! executor under 8-thread traffic with injected faults, the acceptance
//! scenario over the full 170-shape paper dataset, and bit-identity of
//! the zero-fault path with plain submission.

use autokernel::core::resilient::{BreakerState, CircuitBreaker, ResilientPolicy};
use autokernel::core::{PerformanceDataset, PipelineConfig, TuningPipeline};
use autokernel::gemm::reference::{max_abs_diff, reference_gemm, test_matrices};
use autokernel::gemm::{GemmShape, TiledGemmKernel};
use autokernel::sim::fault::FaultPlan;
use autokernel::sim::trace::{FallbackLevel, TraceRecorder};
use autokernel::sim::{Buffer, Context, DeviceSpec, Queue};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The paper dataset, collected once for the whole test binary.
fn paper_dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        PerformanceDataset::collect_paper_dataset(&DeviceSpec::amd_r9_nano())
            .expect("dataset collects")
    })
}

/// A quick-to-collect dataset for tests that really execute kernel
/// bodies.
fn small_dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).expect("dataset collects")
    })
}

/// Each test builds its own pipeline (training is cheap next to
/// collection) so telemetry assertions never observe another test's
/// launches.
fn pipeline_over(dataset: &PerformanceDataset) -> TuningPipeline {
    TuningPipeline::from_dataset(dataset.clone(), PipelineConfig::default())
        .expect("pipeline trains")
}

fn operand_buffers(shape: GemmShape, seed: u64) -> (Buffer<f32>, Buffer<f32>, Buffer<f32>) {
    let (a, b) = test_matrices(shape, seed);
    (
        Buffer::from_vec(a),
        Buffer::from_vec(b),
        Buffer::new_filled(shape.m * shape.n, 0.0f32),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The two breaker invariants, under arbitrary sequences of time
    /// steps, outcomes and hung probes: an open breaker never admits a
    /// launch, and a half-open breaker admits exactly one probe until
    /// that probe reports back.
    #[test]
    fn breaker_state_machine_invariants(
        ops in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0u32..40), 1..=80),
        threshold in 1u32..5,
    ) {
        let b = CircuitBreaker::new(threshold, 1.0);
        let mut now = 0.0f64;
        let mut probe_outstanding = false;
        for (fail, report, dt) in ops {
            now += dt as f64 * 0.1; // steps of 0..4s against a 1s cooldown
            let before = b.state(now);
            let admitted = b.admit(now);
            match before {
                BreakerState::Open => {
                    prop_assert!(!admitted, "quarantined config was served while open");
                }
                BreakerState::Closed => prop_assert!(admitted, "closed breaker must admit"),
                BreakerState::HalfOpen => {
                    prop_assert_eq!(
                        admitted, !probe_outstanding,
                        "half-open must admit exactly one probe"
                    );
                }
            }
            if admitted {
                if before == BreakerState::HalfOpen {
                    probe_outstanding = true;
                }
                if report {
                    if fail {
                        b.on_failure(now);
                    } else {
                        b.on_success();
                    }
                    probe_outstanding = false;
                }
            }
        }
    }
}

#[test]
fn eight_threads_of_faulty_traffic_all_complete_with_correct_results() {
    const THREADS: usize = 8;
    const LAUNCHES_PER_THREAD: usize = 6;

    let pipeline = pipeline_over(small_dataset());
    let device = Arc::new(DeviceSpec::amd_r9_nano());
    let plan = Arc::new(FaultPlan::new(97).with_transient_rate(0.30));
    let queue = Context::new(device).create_queue().with_fault_plan(plan);
    let executor = pipeline.resilient_executor(queue, ResilientPolicy::default());

    let shapes: Vec<GemmShape> = (0..THREADS)
        .map(|i| GemmShape::new(24 + i * 7, 16 + i * 5, 20 + i * 3))
        .collect();

    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let executor = &executor;
            let shapes = &shapes;
            scope.spawn(move |_| {
                for i in 0..LAUNCHES_PER_THREAD {
                    let shape = shapes[(t + i) % shapes.len()];
                    let (a, b, c) = operand_buffers(shape, (t * 100 + i) as u64);
                    let report = executor
                        .launch(shape, &a, &b, &c)
                        .expect("resilient launch always completes");
                    assert!(!report.event.is_failed());
                    let (av, bv) = (a.to_vec(), b.to_vec());
                    let mut expect = vec![0.0f32; shape.m * shape.n];
                    reference_gemm(shape, &av, &bv, &mut expect);
                    assert!(
                        max_abs_diff(&c.to_vec(), &expect) < 1e-3,
                        "thread {t} launch {i} produced a wrong product on {shape}"
                    );
                }
            });
        }
    })
    .unwrap();

    let telemetry = pipeline.telemetry();
    let total = (THREADS * LAUNCHES_PER_THREAD) as u64;
    assert_eq!(telemetry.resilient_launches(), total);
    assert!(
        telemetry.launch_failures() > 0,
        "a 30% fault rate must produce failures over {total} launches"
    );
    assert!(telemetry.retries() > 0, "transient faults must be retried");
}

#[test]
fn paper_dataset_run_survives_faults_and_quarantines_the_bad_config() {
    let pipeline = pipeline_over(paper_dataset());

    // Find the configuration the selector leans on hardest: dooming it
    // guarantees primary-path failures.
    let shapes: Vec<GemmShape> = paper_dataset().shapes.clone();
    let mut counts = std::collections::HashMap::new();
    for shape in &shapes {
        let cfg = pipeline.select(shape).expect("selection succeeds");
        *counts.entry(cfg).or_insert(0usize) += 1;
    }
    let (&doomed, &doomed_picks) = counts.iter().max_by_key(|&(_, &n)| n).unwrap();
    assert!(doomed_picks >= 4, "most-picked config must recur");
    let doomed_index = doomed.index();

    // 30% transient launch failures plus one permanently failing
    // shipped config — the acceptance scenario.
    let plan = Arc::new(
        FaultPlan::new(42)
            .with_transient_rate(0.30)
            .doom_kernels_matching(format!("gemm_{doomed}_")),
    );
    let device = Arc::new(DeviceSpec::amd_r9_nano());
    let queue = Queue::timing_only(device).with_fault_plan(plan);
    let executor = pipeline.resilient_executor(queue, ResilientPolicy::default());

    let mut trace = TraceRecorder::new();
    let mut degraded = 0usize;
    for (i, &shape) in shapes.iter().enumerate() {
        // Timing-only queue: bodies never run, so zeroed operands are
        // enough and the 170 launches stay cheap.
        let a = Buffer::new_filled(shape.m * shape.k, 0.0f32);
        let b = Buffer::new_filled(shape.k * shape.n, 0.0f32);
        let c = Buffer::new_filled(shape.m * shape.n, 0.0f32);
        let report = executor
            .launch_traced(shape, &a, &b, &c, &mut trace, "serve")
            .unwrap_or_else(|e| panic!("launch {i} for {shape} must complete: {e}"));
        assert!(!report.event.is_failed());
        if report.decision.fallback.is_degraded() {
            degraded += 1;
            assert_ne!(
                report.config.map(|c| c.index()),
                Some(doomed_index),
                "a degraded launch must not land on the doomed config"
            );
        }
    }

    // Every launch completed; the doomed config is quarantined.
    let telemetry = pipeline.telemetry();
    assert_eq!(telemetry.resilient_launches(), shapes.len() as u64);
    assert!(telemetry.retries() > 0, "transient faults must be retried");
    assert!(
        telemetry.breaker_trips() >= 1,
        "the doomed config must trip its breaker"
    );
    assert!(
        telemetry.quarantine_skips() > 0,
        "later picks of the doomed config are skipped"
    );
    assert!(
        telemetry.fallback_next_best() > 0,
        "doomed picks must fall back"
    );
    assert!(degraded > 0);
    assert_ne!(
        executor.breaker_state(doomed_index),
        Some(BreakerState::Closed),
        "the doomed config's breaker must not be healthy after the run"
    );

    // The trace shows the failures and the fallbacks.
    assert_eq!(trace.failed_launches() as u64, telemetry.launch_failures());
    assert!(trace.failed_launches() > 0);
    assert_eq!(trace.degraded_launches(), degraded);
    let json = trace.to_chrome_trace();
    assert!(json.contains("\"fault\":\"resource_starvation\""));
    assert!(json.contains("\"fault\":\"transient_launch\""));
    assert!(json.contains("\"fallback\":\"next_best_"));
    serde_json::from_str::<serde_json::Value>(&json).expect("trace stays valid JSON");
}

#[test]
fn zero_fault_plan_is_bit_identical_to_plain_submission() {
    let pipeline = pipeline_over(small_dataset());
    let device = Arc::new(DeviceSpec::amd_r9_nano());
    let shapes: Vec<GemmShape> = (0..8)
        .map(|i| GemmShape::new(16 + i * 9, 12 + i * 5, 14 + i * 7))
        .collect();

    // Resilient path with an inert plan, against plain submission
    // exactly as PR 1 serves launches. Both queues start their private
    // timelines at zero.
    let guarded_queue = Queue::new(device.clone()).with_fault_plan(Arc::new(FaultPlan::none()));
    let executor = pipeline.resilient_executor(guarded_queue, ResilientPolicy::default());
    let plain_queue = Queue::new(device);

    for (i, &shape) in shapes.iter().enumerate() {
        let (ra, rb, rc) = operand_buffers(shape, i as u64);
        let report = executor
            .launch(shape, &ra, &rb, &rc)
            .expect("launch completes");
        assert!(report.is_clean(), "no faults: the pick must run first try");
        assert_eq!(report.decision.attempts, 0);
        assert_eq!(report.decision.fallback, FallbackLevel::Primary);

        let (pa, pb, pc) = operand_buffers(shape, i as u64);
        let config = pipeline.select(&shape).expect("selection succeeds");
        assert_eq!(report.config, Some(config));
        let kernel = TiledGemmKernel::new(config, shape, pa, pb, pc.clone()).unwrap();
        let event = plain_queue
            .submit(&kernel, kernel.preferred_range().unwrap())
            .unwrap();

        assert_eq!(
            report.event, event,
            "events must be bit-identical on {shape}"
        );
        let (got, want) = (rc.to_vec(), pc.to_vec());
        assert_eq!(got.len(), want.len());
        assert!(
            got.iter()
                .zip(&want)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "results must be bit-identical on {shape}"
        );
    }
}
