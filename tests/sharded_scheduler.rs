//! Integration tests for the sharded serving scheduler: routing must be
//! a pure function of the stream, the seed and the shard configuration
//! — never of worker-thread interleaving — and a device failing
//! mid-stream must drain to the survivors without dropping a request.

use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::sched::{
    DeviceShard, GemmRequest, RoutingPolicy, SchedConfig, SchedReport, ShardedScheduler,
};
use autokernel::core::{PerformanceDataset, PipelineConfig, TuningPipeline};
use autokernel::gemm::GemmShape;
use autokernel::sim::{DeviceSpec, FaultPlan, Queue};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Shapes the shared pipeline trains on; also the pool streams draw
/// from, so every request is in-distribution for the selector.
const POOL: [(usize, usize, usize); 12] = [
    (64, 64, 64),
    (512, 512, 512),
    (1, 4096, 1000),
    (12544, 27, 64),
    (196, 2304, 256),
    (3136, 144, 24),
    (49, 960, 160),
    (784, 1152, 128),
    (32, 4096, 4096),
    (2, 2048, 1000),
    (6272, 576, 128),
    (1024, 1024, 1024),
];

fn pipeline() -> &'static TuningPipeline {
    static PIPELINE: OnceLock<TuningPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let shapes: Vec<(GemmShape, String)> = POOL
            .iter()
            .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
            .collect();
        let ds = PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap();
        TuningPipeline::from_dataset(ds, PipelineConfig::default()).unwrap()
    })
}

fn shape(index: usize) -> GemmShape {
    let (m, k, n) = POOL[index % POOL.len()];
    GemmShape::new(m, k, n)
}

/// A fresh three-device fleet (every call starts from zeroed clocks,
/// cold caches and closed breakers, so two fleets given the same
/// stream are exact replicas).
fn fleet() -> Vec<DeviceShard> {
    let devices = [
        (DeviceSpec::amd_r9_nano(), "nano", 1.0),
        (DeviceSpec::desktop_gpu(), "desktop", 0.8),
        (DeviceSpec::host_cpu(), "cpu", 0.3),
    ];
    devices
        .into_iter()
        .map(|(device, label, fitness)| {
            let queue = Queue::timing_only(Arc::new(device));
            let executor = pipeline()
                .device_executor(queue, ResilientPolicy::default())
                .unwrap();
            DeviceShard::new(label, executor).with_fitness(fitness)
        })
        .collect()
}

fn run(stream: &[GemmRequest], config: SchedConfig) -> (SchedReport, ShardedScheduler) {
    let mut sched = ShardedScheduler::new(fleet(), config).unwrap();
    let report = sched.serve(stream).unwrap();
    (report, sched)
}

fn arb_policy() -> impl Strategy<Value = RoutingPolicy> {
    prop_oneof![
        Just(RoutingPolicy::RoundRobin),
        Just(RoutingPolicy::LeastLoaded),
        Just(RoutingPolicy::PerfAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With a fixed seed, routing and telemetry are identical whether
    /// the wave queues execute on worker threads or sequentially, and
    /// across repeat runs — worker interleaving must not leak into any
    /// decision. Even the simulated makespan is bit-identical, because
    /// each device's launch order (and so its clock history) is fixed.
    #[test]
    fn routing_is_deterministic_under_fixed_seed(
        bursts in proptest::collection::vec((0usize..POOL.len(), 1usize..4), 1..12),
        policy in arb_policy(),
        seed in 0u64..1000,
        queue_capacity in 1usize..5,
        batch_window in 1usize..5,
    ) {
        let stream: Vec<GemmRequest> = bursts
            .iter()
            .flat_map(|&(idx, burst)| (0..burst).map(move |_| GemmRequest::zeroed(shape(idx))))
            .collect();
        let config = SchedConfig {
            policy,
            queue_capacity,
            batch_window,
            seed,
            parallel: true,
            ..SchedConfig::default()
        };
        let sequential = SchedConfig { parallel: false, ..config.clone() };

        let (report_p, sched_p) = run(&stream, config.clone());
        let (report_s, sched_s) = run(&stream, sequential);
        let (report_r, sched_r) = run(&stream, config);

        prop_assert_eq!(report_p.served, stream.len());
        prop_assert_eq!(report_p.dropped, 0);
        prop_assert_eq!(&report_p.assignments, &report_s.assignments);
        prop_assert_eq!(&report_p.assignments, &report_r.assignments);
        prop_assert_eq!(sched_p.telemetry(), sched_s.telemetry());
        prop_assert_eq!(sched_p.telemetry(), sched_r.telemetry());
        prop_assert_eq!(report_p.waves, report_s.waves);
        prop_assert_eq!(report_p.makespan_s.to_bits(), report_s.makespan_s.to_bits());
        prop_assert_eq!(report_p.makespan_s.to_bits(), report_r.makespan_s.to_bits());
        for (p, s) in report_p.devices.iter().zip(&report_s.devices) {
            prop_assert_eq!(p.served, s.served);
            prop_assert_eq!(p.batches, s.batches);
            prop_assert_eq!(p.busy_s.to_bits(), s.busy_s.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Work stealing must change *where* a planned batch executes, and
    /// nothing else: the served set (every request served exactly once,
    /// zero drops), the batching decisions, the number of batches
    /// routed and the wave count are all identical to the deterministic
    /// executor. Makespan may differ — that is the point of stealing.
    #[test]
    fn stealing_preserves_routing_and_serving_accounting(
        bursts in proptest::collection::vec((0usize..POOL.len(), 1usize..4), 1..12),
        policy in arb_policy(),
        seed in 0u64..1000,
        queue_capacity in 1usize..5,
        batch_window in 1usize..5,
    ) {
        let stream: Vec<GemmRequest> = bursts
            .iter()
            .flat_map(|&(idx, burst)| (0..burst).map(move |_| GemmRequest::zeroed(shape(idx))))
            .collect();
        let config = SchedConfig {
            policy,
            queue_capacity,
            batch_window,
            seed,
            parallel: true,
            stealing: false,
            ..SchedConfig::default()
        };
        let stealing = SchedConfig { stealing: true, ..config.clone() };

        let (report_d, sched_d) = run(&stream, config);
        let (report_w, sched_w) = run(&stream, stealing);

        // Served-set equality: the whole stream, exactly once, under
        // both executors.
        prop_assert_eq!(report_d.served, stream.len());
        prop_assert_eq!(report_w.served, stream.len());
        prop_assert_eq!(report_d.dropped, 0);
        prop_assert_eq!(report_w.dropped, 0);
        let sum_d: u64 = report_d.devices.iter().map(|d| d.served).sum();
        let sum_w: u64 = report_w.devices.iter().map(|d| d.served).sum();
        prop_assert_eq!(sum_d as usize, stream.len());
        prop_assert_eq!(sum_w as usize, stream.len());

        // Routing accounting: batching is a pure function of the
        // stream, every batch is planned exactly once, and the healthy
        // fleet admits the same number of batches per wave either way.
        let t_d = sched_d.telemetry();
        let t_w = sched_w.telemetry();
        prop_assert_eq!(t_d.batched, t_w.batched);
        prop_assert_eq!(t_d.routed, t_w.routed);
        prop_assert_eq!(t_d.served, t_w.served);
        prop_assert_eq!(t_d.waves, t_w.waves);
        prop_assert_eq!(t_d.rebalanced, 0);
        prop_assert_eq!(t_w.rebalanced, 0);
        prop_assert_eq!(report_d.assignments.len(), report_w.assignments.len());
        let planned_d: usize = report_d.assignments.iter().map(|a| a.requests).sum();
        let planned_w: usize = report_w.assignments.iter().map(|a| a.requests).sum();
        prop_assert_eq!(planned_d, stream.len());
        prop_assert_eq!(planned_w, stream.len());
    }

    /// In the single-wave regime the whole plan is drawn up before any
    /// launch, so execution placement cannot feed back into routing
    /// through the device clocks: the assignment sequence must be
    /// bit-identical between the deterministic and stealing executors,
    /// for every policy.
    #[test]
    fn stealing_leaves_single_wave_plans_bit_identical(
        bursts in proptest::collection::vec((0usize..POOL.len(), 1usize..3), 1..8),
        policy in arb_policy(),
        seed in 0u64..1000,
    ) {
        let stream: Vec<GemmRequest> = bursts
            .iter()
            .flat_map(|&(idx, burst)| (0..burst).map(move |_| GemmRequest::zeroed(shape(idx))))
            .collect();
        // Capacity comfortably above the batch count: one wave.
        let config = SchedConfig {
            policy,
            queue_capacity: 32,
            batch_window: 2,
            seed,
            parallel: true,
            stealing: false,
            ..SchedConfig::default()
        };
        let stealing = SchedConfig { stealing: true, ..config.clone() };
        let (report_d, sched_d) = run(&stream, config);
        let (report_w, sched_w) = run(&stream, stealing);
        prop_assert_eq!(report_d.waves, 1);
        prop_assert_eq!(report_w.waves, 1);
        prop_assert_eq!(&report_d.assignments, &report_w.assignments);
        prop_assert_eq!(sched_d.telemetry(), sched_w.telemetry());
        prop_assert_eq!(report_w.served, stream.len());
        prop_assert_eq!(report_w.dropped, 0);
    }
}

/// Meltdown under the stealing executor: the doomed shard stops
/// mid-wave, its unexecuted batches are either stolen by the survivors
/// or drained to leftovers and re-routed, and the stream still
/// completes with zero drops.
#[test]
fn stealing_executor_survives_mid_stream_meltdown() {
    let doomed_queue =
        Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano())).with_fault_plan(Arc::new(
            FaultPlan::new(41)
                .doom_kernels_matching("gemm")
                .with_onset(12),
        ));
    let doomed = DeviceShard::new(
        "doomed",
        pipeline()
            .device_executor(doomed_queue, ResilientPolicy::default())
            .unwrap(),
    );
    let survivors = [
        (DeviceSpec::amd_r9_nano(), "nano"),
        (DeviceSpec::desktop_gpu(), "desktop"),
    ]
    .into_iter()
    .map(|(device, label)| {
        let queue = Queue::timing_only(Arc::new(device));
        let executor = pipeline()
            .device_executor(queue, ResilientPolicy::default())
            .unwrap();
        DeviceShard::new(label, executor)
    });
    let mut shards = vec![doomed];
    shards.extend(survivors);
    let mut sched = ShardedScheduler::new(
        shards,
        SchedConfig {
            policy: RoutingPolicy::RoundRobin,
            queue_capacity: 4,
            batch_window: 1,
            meltdown_threshold: 2,
            stealing: true,
            ..SchedConfig::default()
        },
    )
    .unwrap();

    let stream: Vec<GemmRequest> = (0..60).map(|i| GemmRequest::zeroed(shape(i))).collect();
    let report = sched.serve(&stream).unwrap();

    assert_eq!(report.served, stream.len());
    assert_eq!(report.dropped, 0);
    assert!(!sched.is_healthy(0), "the poisoned shard must be drained");
    assert!(sched.is_healthy(1) && sched.is_healthy(2));
    let per_device: u64 = report.devices.iter().map(|d| d.served).sum();
    assert_eq!(per_device as usize, stream.len());
}

/// The e2e drain scenario the module exists for: three devices serve a
/// stream, and one of them starts failing every kernel mid-stream (a
/// fault plan with an onset, i.e. the first launches are clean). The
/// scheduler must detect the meltdown, drain the shard, re-route its
/// unfinished work and finish the stream with zero drops.
#[test]
fn mid_stream_device_failure_drains_without_drops() {
    // Device 0 is poisoned from its 12th submission on; retries and
    // fallbacks burn through the breaker budget quickly after that.
    let doomed_queue =
        Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano())).with_fault_plan(Arc::new(
            FaultPlan::new(41)
                .doom_kernels_matching("gemm")
                .with_onset(12),
        ));
    let doomed = DeviceShard::new(
        "doomed",
        pipeline()
            .device_executor(doomed_queue, ResilientPolicy::default())
            .unwrap(),
    );
    let survivors = [
        (DeviceSpec::amd_r9_nano(), "nano"),
        (DeviceSpec::desktop_gpu(), "desktop"),
    ]
    .into_iter()
    .map(|(device, label)| {
        let queue = Queue::timing_only(Arc::new(device));
        let executor = pipeline()
            .device_executor(queue, ResilientPolicy::default())
            .unwrap();
        DeviceShard::new(label, executor)
    });

    let mut shards = vec![doomed];
    shards.extend(survivors);
    let mut sched = ShardedScheduler::new(
        shards,
        SchedConfig {
            // Round-robin keeps feeding the doomed shard until its
            // meltdown is detected — the worst case for draining.
            policy: RoutingPolicy::RoundRobin,
            queue_capacity: 4,
            batch_window: 1,
            meltdown_threshold: 2,
            ..SchedConfig::default()
        },
    )
    .unwrap();

    let stream: Vec<GemmRequest> = (0..60).map(|i| GemmRequest::zeroed(shape(i))).collect();
    let report = sched.serve(&stream).unwrap();

    assert_eq!(
        report.served,
        stream.len(),
        "graceful degradation, not loss"
    );
    assert_eq!(report.dropped, 0);
    assert!(
        !sched.is_healthy(0),
        "the poisoned shard must be drained mid-stream"
    );
    assert!(sched.is_healthy(1) && sched.is_healthy(2));
    let per_device: u64 = report.devices.iter().map(|d| d.served).sum();
    assert_eq!(
        per_device as usize,
        stream.len(),
        "every request accounted for"
    );
    assert!(
        report.devices[0].served < stream.len() as u64 / 3,
        "the doomed shard must not have carried its full round-robin share"
    );
    assert!(
        sched.telemetry().rebalanced > 0,
        "work left in the dead shard's queue must be re-routed, not dropped"
    );
    // The survivors absorbed the drained traffic.
    assert!(report.devices[1].served + report.devices[2].served > 40);
}

/// Serving twice through the same scheduler keeps working after a
/// drain: the dead shard stays out of rotation and new streams still
/// complete.
#[test]
fn scheduler_keeps_serving_after_a_drain() {
    let doomed_queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()))
        .with_fault_plan(Arc::new(FaultPlan::new(7).doom_kernels_matching("gemm")));
    let doomed = DeviceShard::new(
        "doomed",
        pipeline()
            .device_executor(doomed_queue, ResilientPolicy::default())
            .unwrap(),
    );
    let healthy = DeviceShard::new(
        "healthy",
        pipeline()
            .device_executor(
                Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano())),
                ResilientPolicy::default(),
            )
            .unwrap(),
    );
    let mut sched = ShardedScheduler::new(
        vec![doomed, healthy],
        SchedConfig {
            policy: RoutingPolicy::RoundRobin,
            meltdown_threshold: 2,
            batch_window: 1,
            ..SchedConfig::default()
        },
    )
    .unwrap();

    let first: Vec<GemmRequest> = (0..20).map(|i| GemmRequest::zeroed(shape(i))).collect();
    let report = sched.serve(&first).unwrap();
    assert_eq!(report.served, 20);
    assert!(!sched.is_healthy(0));

    let second: Vec<GemmRequest> = (0..10).map(|i| GemmRequest::zeroed(shape(i))).collect();
    let report = sched.serve(&second).unwrap();
    assert_eq!(report.served, 10);
    assert_eq!(report.dropped, 0);
    assert_eq!(
        report.devices[0].served, 0,
        "a drained shard receives no traffic in later streams"
    );
}
