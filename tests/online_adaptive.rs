//! Integration tests of the online adaptation layer: Mirror-stage
//! bit-identity over the full 170-shape paper dataset, bandit
//! convergence to the oracle configuration on stationary reward
//! streams, and the acceptance scenario — a nano → edge_dsp device swap
//! mid-stream, where the adaptive selector must recover to ≥ 95 % of
//! the post-swap shipped-set oracle while the static classifier's picks
//! stay measurably below it.

use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{OnlineConfig, PerformanceDataset, PipelineConfig, TuningPipeline};
use autokernel::gemm::{model, GemmShape, KernelConfig};
use autokernel::sim::{Buffer, DeviceSpec, Queue};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The paper dataset, collected once for the whole test binary.
fn paper_dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        PerformanceDataset::collect_paper_dataset(&DeviceSpec::amd_r9_nano())
            .expect("dataset collects")
    })
}

/// Each test trains its own pipeline (training is cheap next to
/// collection) so telemetry assertions never observe another test's
/// launches.
fn pipeline_over(dataset: &PerformanceDataset) -> TuningPipeline {
    TuningPipeline::from_dataset(dataset.clone(), PipelineConfig::default())
        .expect("pipeline trains")
}

/// Simulated duration of `config_index` on `shape` for `queue`'s
/// device, or `None` when the device rejects the launch.
fn priced(queue: &Queue, shape: &GemmShape, config_index: usize) -> Option<f64> {
    let cfg = KernelConfig::from_index(config_index)?;
    let range = model::launch_range(&cfg, shape).ok()?;
    let profile = model::profile(&cfg, shape, queue.device());
    queue
        .price(&profile, &range, model::noise_seed(&cfg, shape))
        .ok()
        .map(|(_, duration)| duration)
}

fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Zeroed operand buffers for a timing-only launch (bodies never run).
fn zero_buffers(shape: GemmShape) -> (Buffer<f32>, Buffer<f32>, Buffer<f32>) {
    (
        Buffer::new_filled(shape.m * shape.k, 0.0f32),
        Buffer::new_filled(shape.k * shape.n, 0.0f32),
        Buffer::new_filled(shape.m * shape.n, 0.0f32),
    )
}

#[test]
fn mirror_stage_is_bit_identical_over_the_paper_dataset() {
    let pipeline = pipeline_over(paper_dataset());
    let online = pipeline
        .online_selector(OnlineConfig::default())
        .expect("online selector builds");

    for shape in &paper_dataset().shapes {
        let offline = pipeline.select(shape).expect("offline pick").index();
        let picked = online.select(shape).expect("online pick");
        assert_eq!(
            picked, offline,
            "mirror stage must be bit-identical to the classifier on {shape}"
        );
    }

    assert!(!online.is_adaptive(), "no drift was injected");
    let t = pipeline.telemetry();
    assert_eq!(t.adaptive_picks(), 0);
    assert_eq!(t.drift_events(), 0);
    assert_eq!(
        t.hits() + t.misses(),
        paper_dataset().shapes.len() as u64,
        "mirror picks flow through the serving cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On a stationary reward stream with well-separated arm durations,
    /// the post-drift bandit converges to the oracle (minimum-duration)
    /// configuration, whatever the durations are and however they
    /// disagree with the offline priors.
    #[test]
    fn bandit_converges_to_oracle_on_stationary_stream(
        perm_seed in 0u64..1000,
        base_us in 50.0f64..500.0,
    ) {
        let pipeline = pipeline_over(paper_dataset());
        let online = pipeline
            .online_selector(OnlineConfig::default())
            .expect("online selector builds");
        let shipped = online.shipped().to_vec();

        // A deterministic permutation of arm ranks from the seed, with a
        // 1.8x duration gap between consecutive ranks.
        let mut ranks: Vec<usize> = (0..shipped.len()).collect();
        let mut state = perm_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..ranks.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ranks.swap(i, (state >> 33) as usize % (i + 1));
        }
        let durations: Vec<f64> = ranks
            .iter()
            .map(|&r| base_us * 1e-6 * 1.8f64.powi(r as i32))
            .collect();
        let oracle = shipped[ranks
            .iter()
            .enumerate()
            .min_by_key(|&(_, &r)| r)
            .map(|(slot, _)| slot)
            .expect("non-empty shipped set")];

        let shape = GemmShape::new(512, 512, 512);
        online.force_drift();
        prop_assert!(online.is_adaptive());

        let mut tail = Vec::new();
        for round in 0..250 {
            let pick = online.select(&shape).expect("adaptive pick");
            let slot = shipped.iter().position(|&c| c == pick).expect("shipped pick");
            online.record_success(&shape, pick, durations[slot], online.generation());
            if round >= 230 {
                tail.push(pick);
            }
        }
        prop_assert!(
            tail.iter().all(|&p| p == oracle),
            "last picks {tail:?} must all equal oracle {oracle} (durations {durations:?})"
        );
        prop_assert!(!online.stats().adaptive || online.stats().ph_statistic < 25.0);
        prop_assert_eq!(
            pipeline.telemetry().drift_events(), 1,
            "a stationary stream must not re-trip drift"
        );
    }
}

/// Regression test for the stale-reward poisoning bug: a measurement
/// captured before a drift trip (its launch straddles the reset) must
/// be discarded, not folded into the freshly reset arm statistics.
/// Before the fix, a pre-drift duration delivered after the reset
/// seeded the new bandit epoch with a reward measured under the old
/// device regime.
#[test]
fn stale_generation_reward_is_discarded_after_drift() {
    let pipeline = pipeline_over(paper_dataset());
    let online = pipeline
        .online_selector(OnlineConfig::default())
        .expect("online selector builds");
    let shape = GemmShape::new(512, 512, 512);

    // An in-flight measurement: the pick and the generation are
    // captured here, but the reward is only delivered after drift.
    let held_generation = online.generation();
    let held_pick = online.select(&shape).expect("mirror pick");

    online.force_drift();
    assert!(online.is_adaptive());
    assert!(
        online.generation() > held_generation,
        "drift must open a new reward generation"
    );

    // The straddling measurement lands late: it must be dropped whole,
    // leaving the freshly reset bandit and detector untouched.
    online.record_success(&shape, held_pick, 123.0e-6, held_generation);
    online.record_failure(&shape, held_pick, true, held_generation);
    let stats = online.stats();
    assert_eq!(
        stats.clusters, 0,
        "no arm state may grow from stale rewards"
    );
    assert_eq!(stats.ph_samples, 0, "the reset detector must stay empty");
    assert_eq!(
        pipeline.telemetry().reward_updates(),
        0,
        "a discarded reward must not count as an update"
    );
    assert_eq!(
        pipeline.telemetry().stale_rewards_dropped(),
        2,
        "dropped rewards are counted, never silent"
    );

    // A measurement from the current generation is consumed normally.
    let fresh_pick = online.select(&shape).expect("adaptive pick");
    online.record_success(&shape, fresh_pick, 123.0e-6, online.generation());
    assert_eq!(
        pipeline.telemetry().reward_updates(),
        1,
        "a current-generation reward must be accepted"
    );
    assert_eq!(online.stats().clusters, 1);
}

/// The acceptance scenario: two epochs of nano serving (bit-identical
/// to the static stack), then the queue is swapped for an edge DSP the
/// offline model has never seen. Four of the six shipped configurations
/// cannot launch there at all. The drift detector must trip, the cache
/// generation must be invalidated, and the bandit must recover to
/// ≥ 95 % of the post-swap shipped-set oracle — while a static pipeline
/// serving the same stream keeps choosing unlaunchable kernels and
/// stays below the adaptive geomean even with the resilient fallback
/// chain rescuing every launch.
#[test]
fn device_swap_drift_recovers_to_near_oracle_while_static_stays_below() {
    // Each cluster tries at most one new arm per epoch (the fallback
    // chain completes on the first launchable candidate), so with six
    // shipped arms the bandit needs six epochs to exhaust forced
    // exploration; two more land the measurement in the settled regime.
    const NANO_EPOCHS: usize = 2;
    const EDGE_EPOCHS: usize = 8;

    let shapes: Vec<GemmShape> = paper_dataset().shapes.clone();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let edge = Arc::new(DeviceSpec::edge_dsp());

    let pipeline = pipeline_over(paper_dataset());
    let policy = ResilientPolicy::default();
    let (nano_exec, online) = pipeline
        .adaptive_executor(
            Queue::timing_only(Arc::clone(&nano)),
            policy.clone(),
            OnlineConfig::default(),
        )
        .expect("adaptive executor builds");
    // The device swap: a second executor on the edge queue sharing the
    // same online layer (and the same serving cache + telemetry).
    let edge_exec = pipeline
        .resilient_executor(Queue::timing_only(Arc::clone(&edge)), policy.clone())
        .with_online(Arc::clone(&online));

    // An independent static pipeline serving the identical post-swap
    // stream, for the comparison baseline.
    let static_pipeline = pipeline_over(paper_dataset());
    let static_exec =
        static_pipeline.resilient_executor(Queue::timing_only(Arc::clone(&edge)), policy.clone());

    let buffers: Vec<_> = shapes.iter().map(|&s| zero_buffers(s)).collect();

    // Phase 1 — nano serving. Epoch 0 doubles as the load-bearing
    // bit-identity check: every report must carry the classifier's own
    // pick, clean on the first attempt.
    for epoch in 0..NANO_EPOCHS {
        for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
            let report = nano_exec.launch(*shape, a, b, c).expect("nano launch");
            if epoch == 0 {
                let offline = pipeline.select(shape).expect("offline pick");
                assert_eq!(
                    report.config,
                    Some(offline),
                    "pre-drift serving must be bit-identical to the classifier on {shape}"
                );
                assert!(report.is_clean(), "no faults on the training device");
            }
        }
    }
    assert!(
        !online.is_adaptive(),
        "two epochs on the training device must not read as drift"
    );
    assert_eq!(pipeline.telemetry().drift_events(), 0);
    assert_eq!(pipeline.telemetry().adaptive_picks(), 0);
    let generation_before = pipeline.serving().cache().generation();

    // Phase 2 — the swap. Serve the same stream from the edge queue.
    let mut final_epoch_durations: Vec<f64> = Vec::new();
    for epoch in 0..EDGE_EPOCHS {
        for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
            let report = edge_exec.launch(*shape, a, b, c).expect("edge launch");
            assert!(!report.event.is_failed());
            if epoch + 1 == EDGE_EPOCHS {
                final_epoch_durations.push(report.event.duration_s());
            }
        }
        if epoch == 0 {
            assert!(
                online.is_adaptive(),
                "one epoch of 10-100x slowdowns and structural rejections must trip Page-Hinkley"
            );
        }
    }

    let telemetry = pipeline.telemetry();
    assert!(telemetry.drift_events() >= 1, "drift must be recorded");
    assert!(
        telemetry.adaptive_picks() > 0,
        "post-drift picks come from the bandit"
    );
    assert!(
        telemetry.reward_updates() > 0,
        "launch outcomes must feed the reward estimates"
    );
    assert!(
        pipeline.serving().cache().generation() > generation_before,
        "drift must bump the decision-cache generation"
    );

    // The post-swap shipped-set oracle: best launchable shipped config
    // per shape on the edge device.
    let probe = Queue::timing_only(Arc::clone(&edge));
    let oracle: Vec<f64> = shapes
        .iter()
        .map(|shape| {
            pipeline
                .shipped_configs()
                .iter()
                .filter_map(|&c| priced(&probe, shape, c))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    assert!(oracle.iter().all(|d| d.is_finite()));

    // Static pipeline serves the same post-swap stream.
    let mut static_final: Vec<f64> = Vec::new();
    let mut static_unlaunchable_picks = 0usize;
    for epoch in 0..EDGE_EPOCHS {
        for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
            let report = static_exec.launch(*shape, a, b, c).expect("static launch");
            if epoch + 1 == EDGE_EPOCHS {
                static_final.push(report.event.duration_s());
                let pick = static_pipeline.select(shape).expect("static pick").index();
                if priced(&probe, shape, pick).is_none() {
                    static_unlaunchable_picks += 1;
                }
            }
        }
    }

    let adaptive_ratio: Vec<f64> = oracle
        .iter()
        .zip(&final_epoch_durations)
        .map(|(&o, &d)| o / d)
        .collect();
    let static_ratio: Vec<f64> = oracle
        .iter()
        .zip(&static_final)
        .map(|(&o, &d)| o / d)
        .collect();
    let adaptive_geomean = geomean(&adaptive_ratio);
    let static_geomean = geomean(&static_ratio);
    println!(
        "adaptive geomean {adaptive_geomean:.4}, static geomean {static_geomean:.4}, \
         static unlaunchable picks {static_unlaunchable_picks}/170"
    );

    assert!(
        adaptive_geomean >= 0.95,
        "adaptive serving must recover to >= 95% of the shipped-set oracle \
         (got {adaptive_geomean:.4})"
    );
    assert!(
        static_geomean < adaptive_geomean,
        "the static stack must stay below the adaptive one \
         (static {static_geomean:.4}, adaptive {adaptive_geomean:.4})"
    );
    // The static classifier itself never recovers: a majority of its
    // picks remain configurations the edge device refuses to launch at
    // all — only the resilient fallback chain keeps it serving.
    assert!(
        static_unlaunchable_picks * 2 > shapes.len(),
        "most static picks must be unlaunchable on the edge device \
         (got {static_unlaunchable_picks}/{})",
        shapes.len()
    );
}

/// The analytically-seeded bandit must recover from the nano → edge_dsp
/// swap at least as fast as the offline-rank-seeded one. The priors
/// set the bandit's forced-exploration scan order after the drift
/// reset: offline priors rank the training device's favourites first
/// (mostly unlaunchable on the DSP), while the analytical priors are
/// computed for the *edge* device model with zero benchmark launches,
/// so launchable configurations are explored first.
#[test]
fn analytically_seeded_bandit_recovers_at_least_as_fast_as_offline_seeded() {
    const NANO_EPOCHS: usize = 2;
    const EDGE_EPOCHS: usize = 8;
    const RECOVERED: f64 = 0.95;

    let shapes: Vec<GemmShape> = paper_dataset().shapes.clone();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let edge = Arc::new(DeviceSpec::edge_dsp());
    let edge_device = DeviceSpec::edge_dsp();
    let policy = ResilientPolicy::default();
    let buffers: Vec<_> = shapes.iter().map(|&s| zero_buffers(s)).collect();

    // The post-swap shipped-set oracle is prior-independent (both
    // pipelines are trained identically, so they ship the same set).
    let probe = Queue::timing_only(Arc::clone(&edge));

    // Serve the identical nano → edge stream through one adaptive
    // stack, returning the per-edge-epoch oracle-relative geomeans.
    let serve = |analytical: bool| -> Vec<f64> {
        let pipeline = pipeline_over(paper_dataset());
        let online = if analytical {
            pipeline
                .analytical_online_selector(&edge_device, OnlineConfig::default())
                .expect("analytical online selector builds")
        } else {
            pipeline
                .online_selector(OnlineConfig::default())
                .expect("offline online selector builds")
        };
        let nano_exec = pipeline
            .resilient_executor(Queue::timing_only(Arc::clone(&nano)), policy.clone())
            .with_online(Arc::clone(&online));
        let edge_exec = pipeline
            .resilient_executor(Queue::timing_only(Arc::clone(&edge)), policy.clone())
            .with_online(Arc::clone(&online));

        let oracle: Vec<f64> = shapes
            .iter()
            .map(|shape| {
                pipeline
                    .shipped_configs()
                    .iter()
                    .filter_map(|&c| priced(&probe, shape, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        assert!(oracle.iter().all(|d| d.is_finite()));

        for _ in 0..NANO_EPOCHS {
            for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
                nano_exec.launch(*shape, a, b, c).expect("nano launch");
            }
        }
        assert!(
            !online.is_adaptive(),
            "priors must not affect the pre-drift mirror stage"
        );

        let mut per_epoch = Vec::with_capacity(EDGE_EPOCHS);
        for _ in 0..EDGE_EPOCHS {
            let mut ratios = Vec::with_capacity(shapes.len());
            for ((shape, (a, b, c)), &oracle_s) in shapes.iter().zip(&buffers).zip(&oracle) {
                let report = edge_exec.launch(*shape, a, b, c).expect("edge launch");
                assert!(!report.event.is_failed());
                ratios.push(oracle_s / report.event.duration_s());
            }
            per_epoch.push(geomean(&ratios));
        }
        assert!(online.is_adaptive(), "the swap must trip drift");
        per_epoch
    };

    let offline_epochs = serve(false);
    let analytical_epochs = serve(true);
    let recovery = |per_epoch: &[f64]| {
        per_epoch
            .iter()
            .position(|&g| g >= RECOVERED)
            .unwrap_or(usize::MAX)
    };
    let offline_at = recovery(&offline_epochs);
    let analytical_at = recovery(&analytical_epochs);
    println!(
        "offline-seeded epochs {offline_epochs:?} (recovered at {offline_at}), \
         analytical-seeded epochs {analytical_epochs:?} (recovered at {analytical_at})"
    );

    assert!(
        *analytical_epochs.last().unwrap() >= RECOVERED,
        "the analytically-seeded bandit must recover to >= {RECOVERED} of the \
         shipped-set oracle (got {:.4})",
        analytical_epochs.last().unwrap()
    );
    assert!(
        analytical_at <= offline_at,
        "analytical seeding must recover at least as fast: analytical epoch \
         {analytical_at} vs offline epoch {offline_at}"
    );
}
