//! Integration tests of the concurrency correctness pass: the audit
//! binary against the live repo and its committed golden report, the
//! interleaving model checker's seeded-mutation kill list, the
//! lock-cycle fixture that must fail, and agreement between the audit's
//! site census and an independent scan of the annotations.

use autokernel::analyze::concurrency::{assemble, audit_source, audit_workspace, FindingRule};
use autokernel::analyze::interleave::{check, Model, Mutation};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// The audit binary exits 0 on the repo and reports the committed
/// golden as matching; pointed at a perturbed golden it exits 1, and at
/// a missing one it exits 2.
#[test]
fn concurrency_audit_binary_passes_repo_and_detects_drift() {
    let bin = env!("CARGO_BIN_EXE_concurrency_audit");

    let clean = std::process::Command::new(bin)
        .current_dir(repo_root())
        .output()
        .expect("binary runs");
    assert!(
        clean.status.success(),
        "repo must audit clean:\n{}\n{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("report matches"), "{stdout}");

    let golden = repo_root().join("reports/concurrency_audit.json");
    let perturbed = std::env::temp_dir().join("concurrency_audit_perturbed.json");
    let mut text = std::fs::read_to_string(&golden).expect("golden exists");
    text.push('\n');
    std::fs::write(&perturbed, text).expect("temp write");
    let drifted = std::process::Command::new(bin)
        .arg(&perturbed)
        .current_dir(repo_root())
        .output()
        .expect("binary runs");
    assert_eq!(drifted.status.code(), Some(1), "drift must exit 1");
    let _ = std::fs::remove_file(&perturbed);

    let missing = std::process::Command::new(bin)
        .arg("does/not/exist.json")
        .current_dir(repo_root())
        .output()
        .expect("binary runs");
    assert_eq!(missing.status.code(), Some(2), "missing golden is exit 2");
}

/// Every faithful model explores exhaustively with zero violations.
#[test]
fn faithful_models_pass_exhaustively() {
    for model in Model::ALL {
        let exploration =
            check(model, None).unwrap_or_else(|cx| panic!("{} must pass, got: {cx}", model.name()));
        assert!(exploration.complete, "{} must be exhaustive", model.name());
        assert!(exploration.executions > 0);
    }
}

/// The checker kills every seeded mutation — each weakened ordering,
/// dropped notification, torn update or broken accounting step produces
/// a concrete counterexample schedule. (The issue's bar is at least
/// four; the suite carries eleven.)
#[test]
fn every_seeded_mutation_is_caught() {
    assert!(Mutation::ALL.len() >= 4);
    for mutation in Mutation::ALL {
        let cx = check(mutation.model(), Some(mutation))
            .expect_err(&format!("mutation {} must be caught", mutation.name()));
        assert!(
            !cx.schedule.is_empty(),
            "{}: counterexample must carry its schedule",
            mutation.name()
        );
    }
}

/// The AB/BA fixture must produce a lock-order-cycle finding — proving
/// the cycle detector is live, since the real lock graph is acyclic.
#[test]
fn lock_cycle_fixture_must_fail() {
    let path = repo_root().join("crates/analyze/tests/fixtures/lock_cycle.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let module = audit_source("fixture::accounts", "lock_cycle.rs", &source);
    let audit = assemble(vec![module]);
    assert!(
        !audit.cycles.is_empty(),
        "AB/BA acquisition order must form a cycle: {:?}",
        audit.edges
    );
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.rule == FindingRule::LockOrderCycle),
        "cycle must surface as a finding: {:?}",
        audit.findings
    );
}

/// The audit's atomic-site census agrees with an independent textual
/// scan: every `atomic:role(` annotation in the target files binds to
/// exactly one site, and every site is declared.
#[test]
fn audit_site_census_agrees_with_annotation_scan() {
    let audit = audit_workspace(repo_root()).expect("targets readable");
    assert!(audit.findings.is_empty(), "{:#?}", audit.findings);
    assert_eq!(audit.total_sites(), audit.declared_sites());
    assert!(audit.cycles.is_empty());

    for module in &audit.modules {
        let source =
            std::fs::read_to_string(repo_root().join(&module.file)).expect("target readable");
        let annotations = source.matches("atomic:role(").count();
        let declared = module.sites.iter().filter(|s| s.role.is_some()).count();
        assert_eq!(
            annotations, declared,
            "{}: every annotation must bind to exactly one atomic site",
            module.label
        );
    }

    // The serving cache alone carries a substantial atomic surface; a
    // collapse here means the site scanner regressed.
    assert!(audit.total_sites() >= 100, "got {}", audit.total_sites());
}
