//! Integration tests for the beyond-the-paper extensions: feature-space
//! ablation, regression selection, cross-validation, search strategies
//! and the Winograd lowering — each asserting the finding its bench
//! target reports.

use autokernel::core::crossval::{cross_validate_pruning, cross_validate_selector};
use autokernel::core::evaluate::selection_score;
use autokernel::core::regression::{RegressionParams, RegressionSelector};
use autokernel::core::select::{FeatureSpace, Selector};
use autokernel::core::{PerformanceDataset, PruneMethod, SelectorKind};
use autokernel::mlkit::model_selection::train_test_split;
use autokernel::sim::DeviceSpec;
use autokernel::tuner::{BasinHopping, GemmObjective, HillClimbing, Objective, SearchStrategy};
use autokernel::workloads::conv::{direct_conv, input_len, output_len, weight_len};
use autokernel::workloads::winograd::winograd_conv;
use autokernel::workloads::ConvLayer;
use std::sync::OnceLock;

fn dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        PerformanceDataset::collect_paper_dataset(&DeviceSpec::amd_r9_nano())
            .expect("dataset collects")
    })
}

#[test]
fn scaling_rescues_the_rbf_svm_but_not_the_tree() {
    let ds = dataset();
    let split = train_test_split(ds.n_shapes(), 0.2, 42);
    let configs = PruneMethod::DecisionTree
        .select(ds, &split.train, 8, 7)
        .unwrap();

    let score = |kind: SelectorKind, space: FeatureSpace| {
        let sel = Selector::train_in_space(kind, ds, &split.train, &configs, 7, space).unwrap();
        selection_score(ds, &split.test, &sel.select_rows(ds, &split.test).unwrap())
    };

    let rbf_raw = score(SelectorKind::RadialSvm, FeatureSpace::RawSizes);
    let rbf_scaled = score(SelectorKind::RadialSvm, FeatureSpace::ScaledLog);
    assert!(
        rbf_scaled > rbf_raw + 0.15,
        "scaling should rescue the RBF SVM: {rbf_raw:.3} -> {rbf_scaled:.3}"
    );

    let tree_raw = score(SelectorKind::DecisionTree, FeatureSpace::RawSizes);
    let tree_scaled = score(SelectorKind::DecisionTree, FeatureSpace::ScaledLog);
    assert!(
        (tree_raw - tree_scaled).abs() < 1e-9,
        "trees are invariant to monotone transforms: {tree_raw:.6} vs {tree_scaled:.6}"
    );
}

#[test]
fn regression_selection_is_competitive_with_classification() {
    let ds = dataset();
    let split = train_test_split(ds.n_shapes(), 0.2, 42);
    let configs = PruneMethod::DecisionTree
        .select(ds, &split.train, 8, 7)
        .unwrap();

    let clf = Selector::train(SelectorKind::DecisionTree, ds, &split.train, &configs, 7).unwrap();
    let clf_score = selection_score(ds, &split.test, &clf.select_rows(ds, &split.test).unwrap());

    let reg =
        RegressionSelector::train(ds, &split.train, &configs, RegressionParams::default()).unwrap();
    let reg_score = selection_score(ds, &split.test, &reg.select_rows(ds, &split.test).unwrap());

    assert!(
        reg_score > clf_score - 0.03,
        "regression ({reg_score:.3}) should be competitive with classification ({clf_score:.3})"
    );
}

#[test]
fn cross_validation_confirms_the_figure4_ordering() {
    // Across folds, clustering-based pruning beats top-N at budget 5.
    let ds = dataset();
    let tree = cross_validate_pruning(ds, PruneMethod::DecisionTree, 5, 5, 3).unwrap();
    let topn = cross_validate_pruning(ds, PruneMethod::TopN, 5, 5, 3).unwrap();
    assert!(
        tree.mean > topn.mean + 0.05,
        "tree CV mean {:.3} should beat top-N {:.3}",
        tree.mean,
        topn.mean
    );
    // And the end-to-end selector CV stays below the pruning ceiling.
    let sel = cross_validate_selector(
        ds,
        PruneMethod::DecisionTree,
        SelectorKind::DecisionTree,
        5,
        5,
        3,
    )
    .unwrap();
    assert!(sel.mean <= tree.mean + 1e-9);
    assert!(
        sel.mean > 0.5,
        "selector CV mean {:.3} suspiciously low",
        sel.mean
    );
}

#[test]
fn structured_search_recovers_the_brute_force_optimum_cheaply() {
    let device = DeviceSpec::amd_r9_nano();
    let shapes = [
        autokernel::gemm::GemmShape::new(784, 1152, 128),
        autokernel::gemm::GemmShape::new(12544, 27, 64),
    ];
    for shape in shapes {
        let reference = GemmObjective::new(&device, shape);
        let (_, optimum) = reference.brute_force_best().expect("non-empty space");
        for strategy in [
            &HillClimbing as &dyn SearchStrategy,
            &BasinHopping::default(),
        ] {
            let obj = GemmObjective::new(&device, shape);
            let r = strategy.tune(&obj, 200, 13);
            assert!(
                r.best_value <= optimum * 1.10,
                "{} on {shape}: {:.3}x off the optimum",
                strategy.name(),
                r.best_value / optimum
            );
            assert!(obj.evaluations() <= 200);
        }
    }
}

#[test]
fn winograd_lowering_is_numerically_equivalent_in_the_full_stack() {
    // A ResNet-like 3x3 layer: direct convolution vs the Winograd path.
    let layer = ConvLayer::standard(8, 16, 3, 1, 1, 14);
    let batch = 2;
    let input: Vec<f32> = (0..input_len(&layer, batch))
        .map(|i| ((i % 17) as f32 - 8.0) / 8.0)
        .collect();
    let weights: Vec<f32> = (0..weight_len(&layer))
        .map(|i| ((i % 13) as f32 - 6.0) / 13.0)
        .collect();
    let mut direct = vec![0.0f32; output_len(&layer, batch)];
    let mut wino = vec![0.0f32; output_len(&layer, batch)];
    direct_conv(&layer, batch, &input, &weights, &mut direct);
    winograd_conv(&layer, batch, &input, &weights, &mut wino);
    let err = direct
        .iter()
        .zip(&wino)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(err < 1e-3, "winograd disagrees with direct conv: {err}");
}

#[test]
fn library_size_report_reflects_actual_pruning() {
    use autokernel::core::libsize::LibrarySizeModel;
    let ds = dataset();
    let split = train_test_split(ds.n_shapes(), 0.2, 42);
    let configs = PruneMethod::DecisionTree
        .select(ds, &split.train, 6, 7)
        .unwrap();
    let report = LibrarySizeModel::default().report(&configs);
    assert_eq!(report.full_variants, 64);
    assert!(report.shipped_variants <= configs.len());
    assert!(report.kernel_section_shrink() >= 64.0 / 6.0);
}
