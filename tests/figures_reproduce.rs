//! Integration tests asserting the comparative findings of Figure 4 and
//! Table I hold on the regenerated dataset: who wins, by roughly what
//! factor, and where the crossovers fall.

use autokernel::core::evaluate::{achievable_score, selection_score};
use autokernel::core::select::Selector;
use autokernel::core::{PerformanceDataset, PruneMethod, SelectorKind};
use autokernel::mlkit::model_selection::train_test_split;
use autokernel::sim::DeviceSpec;
use std::sync::OnceLock;

const SEED: u64 = 42;

fn dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        PerformanceDataset::collect_paper_dataset(&DeviceSpec::amd_r9_nano())
            .expect("dataset collects")
    })
}

fn split() -> (Vec<usize>, Vec<usize>) {
    let s = train_test_split(dataset().n_shapes(), 0.2, SEED);
    (s.train, s.test)
}

#[test]
fn fig4_clustering_beats_naive_at_small_budgets() {
    // Paper: "when the number of configurations is very limited, the
    // clustering methods all perform significantly better than the
    // naive method".
    let ds = dataset();
    let (train, test) = split();
    for budget in [4usize, 5] {
        let naive = achievable_score(
            ds,
            &test,
            &PruneMethod::TopN.select(ds, &train, budget, 7).unwrap(),
        );
        for method in [
            PruneMethod::KMeans,
            PruneMethod::PcaKMeans,
            PruneMethod::DecisionTree,
        ] {
            let s = achievable_score(ds, &test, &method.select(ds, &train, budget, 7).unwrap());
            assert!(
                s > naive + 0.05,
                "{} ({s:.3}) should clearly beat top-N ({naive:.3}) at budget {budget}",
                method.name()
            );
        }
    }
}

#[test]
fn fig4_all_methods_reach_90_percent_by_budget_15() {
    // Paper: "as more configurations were allowed all techniques
    // improved, achieving around 95% of the optimal performance".
    let ds = dataset();
    let (train, test) = split();
    for method in PruneMethod::all() {
        let s = achievable_score(ds, &test, &method.select(ds, &train, 15, 7).unwrap());
        assert!(
            s > 0.90,
            "{} only reaches {s:.3} at budget 15",
            method.name()
        );
    }
}

#[test]
fn fig4_decision_tree_wins_from_budget_6() {
    // Paper: "the decision tree consistently provided the best results
    // when 6 or more kernel configurations were allowed" — allow a
    // small tolerance for near-ties (k-means sits within ~3 points of
    // the tree at budget 8 under the in-repo RNG stream).
    let ds = dataset();
    let (train, test) = split();
    for budget in [6usize, 8, 10, 15] {
        let tree = achievable_score(
            ds,
            &test,
            &PruneMethod::DecisionTree
                .select(ds, &train, budget, 7)
                .unwrap(),
        );
        for method in PruneMethod::all() {
            let s = achievable_score(ds, &test, &method.select(ds, &train, budget, 7).unwrap());
            assert!(
                tree >= s - 0.035,
                "at budget {budget} {} ({s:.3}) beats the tree ({tree:.3}) by too much",
                method.name()
            );
        }
    }
}

#[test]
fn fig4_decision_tree_peak_is_around_96_percent() {
    // Paper's best case: 96.6% of optimal.
    let ds = dataset();
    let (train, test) = split();
    let peak = (4..=15)
        .map(|b| {
            achievable_score(
                ds,
                &test,
                &PruneMethod::DecisionTree.select(ds, &train, b, 7).unwrap(),
            )
        })
        .fold(0.0f64, f64::max);
    assert!(
        (0.93..=1.0).contains(&peak),
        "tree peak {peak:.3} outside the 0.93..1.0 band"
    );
}

#[test]
fn table1_no_classifier_reaches_its_ceiling() {
    // Paper: ceilings 93-96.6% but no model achieves over 89%.
    let ds = dataset();
    let (train, test) = split();
    for budget in [6usize, 8] {
        let configs = PruneMethod::DecisionTree
            .select(ds, &train, budget, 7)
            .unwrap();
        let ceiling = achievable_score(ds, &test, &configs);
        for kind in SelectorKind::all() {
            let sel = Selector::train(kind, ds, &train, &configs, 7).unwrap();
            let chosen = sel.select_rows(ds, &test).unwrap();
            let score = selection_score(ds, &test, &chosen);
            assert!(
                score <= ceiling + 1e-9,
                "{} ({score:.3}) exceeds the ceiling ({ceiling:.3})",
                kind.name()
            );
        }
    }
}

#[test]
fn table1_radial_svm_collapses() {
    // Paper: RadialSVM sits at ~55% for every budget — the collapse of
    // an unscaled RBF kernel. Ours lands in the same regime (constant,
    // far below the tree).
    let ds = dataset();
    let (train, test) = split();
    let mut scores = Vec::new();
    for budget in [5usize, 6, 8, 15] {
        let configs = PruneMethod::DecisionTree
            .select(ds, &train, budget, 7)
            .unwrap();
        let sel = Selector::train(SelectorKind::RadialSvm, ds, &train, &configs, 7).unwrap();
        let chosen = sel.select_rows(ds, &test).unwrap();
        scores.push(selection_score(ds, &test, &chosen));
    }
    for s in &scores {
        assert!(*s < 0.75, "radial SVM should collapse, got {s:.3}");
    }
    // Near-constant across budgets (the paper shows 54.95/55.01/55.01/55.01).
    let spread = scores.iter().cloned().fold(0.0f64, f64::max)
        - scores.iter().cloned().fold(1.0f64, f64::min);
    assert!(
        spread < 0.05,
        "collapse should be budget-independent, spread {spread:.3}"
    );
}

#[test]
fn table1_decision_tree_beats_knn_and_svms() {
    // Paper's ordering: the tree outperforms or matches everything
    // except (sometimes) the forest.
    let ds = dataset();
    let (train, test) = split();
    let configs = PruneMethod::DecisionTree.select(ds, &train, 8, 7).unwrap();
    let score = |kind: SelectorKind| {
        let sel = Selector::train(kind, ds, &train, &configs, 7).unwrap();
        selection_score(ds, &test, &sel.select_rows(ds, &test).unwrap())
    };
    let tree = score(SelectorKind::DecisionTree);
    for kind in [
        SelectorKind::OneNearestNeighbor,
        SelectorKind::ThreeNearestNeighbors,
        SelectorKind::LinearSvm,
        SelectorKind::RadialSvm,
    ] {
        let s = score(kind);
        assert!(
            tree >= s - 0.01,
            "{} ({s:.3}) beats the tree ({tree:.3})",
            kind.name()
        );
    }
    // And the forest is at least in the same league.
    let forest = score(SelectorKind::RandomForest);
    assert!(
        (tree - forest).abs() < 0.05,
        "tree {tree:.3} vs forest {forest:.3}"
    );
}
