//! Integration tests of the static kernel-space analyzer: exhaustive
//! analyzer/runtime agreement on every shipped device model, golden
//! SARIF report bytes, static pre-pruning inside the tuning pipeline,
//! and the resilient executor's invalid/dominated fallback filtering.

use autokernel::analyze::{KernelSpaceAnalyzer, SpaceAnalysis, Verdict};
use autokernel::core::cache::CachedSelector;
use autokernel::core::resilient::{ResilientExecutor, ResilientPolicy};
use autokernel::core::{
    PerformanceDataset, PipelineConfig, Selector, SelectorKind, TuningPipeline,
};
use autokernel::gemm::reference::{max_abs_diff, reference_gemm, test_matrices};
use autokernel::gemm::{model, GemmShape, KernelConfig};
use autokernel::sim::trace::FallbackLevel;
use autokernel::sim::{validate_launch, Buffer, DeviceSpec, Queue, SimError};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn shipped_devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::amd_r9_nano(),
        DeviceSpec::desktop_gpu(),
        DeviceSpec::embedded_accelerator(),
        DeviceSpec::host_cpu(),
        DeviceSpec::edge_dsp(),
    ]
}

/// Host-CPU analysis, computed once: the interesting device for pruning
/// tests (its 64 total lanes reject every 128/256-wide work-group).
fn host_analysis() -> &'static SpaceAnalysis {
    static A: OnceLock<SpaceAnalysis> = OnceLock::new();
    A.get_or_init(|| {
        KernelSpaceAnalyzer::new(DeviceSpec::host_cpu())
            .analyze()
            .expect("analysis succeeds")
    })
}

/// A small host-CPU dataset shared by the resilient-filtering tests.
fn host_dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (196, 2304, 256),
            (49, 960, 160),
            (32, 4096, 4096),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        PerformanceDataset::collect(&DeviceSpec::host_cpu(), &shapes).expect("dataset collects")
    })
}

fn operand_buffers(shape: GemmShape, seed: u64) -> (Buffer<f32>, Buffer<f32>, Buffer<f32>) {
    let (a, b) = test_matrices(shape, seed);
    (
        Buffer::from_vec(a),
        Buffer::from_vec(b),
        Buffer::new_filled(shape.m * shape.n, 0.0f32),
    )
}

/// The tentpole guarantee: on every shipped device model, every one of
/// the 640 configurations gets an analyzer verdict that agrees *exactly*
/// with what the runtime's launch validation would decide — including
/// the resource kind and the requested/limit numbers in the rejection.
#[test]
fn analyzer_agrees_with_runtime_on_all_devices_and_all_640_configs() {
    let shape = GemmShape::new(1024, 1024, 1024);
    for device in shipped_devices() {
        let analysis = KernelSpaceAnalyzer::new(device.clone())
            .analyze()
            .expect("analysis succeeds");
        assert_eq!(analysis.configs.len(), KernelConfig::count());
        for (cfg, result) in KernelConfig::all().iter().zip(&analysis.configs) {
            let range = model::launch_range(cfg, &shape).expect("launch range");
            let profile = model::profile(cfg, &shape, &device);
            match (&result.verdict, validate_launch(&device, &profile, &range)) {
                (
                    Verdict::Invalid {
                        resource,
                        requested,
                        limit,
                    },
                    Err(SimError::Exhausted(e)),
                ) => {
                    assert_eq!(*resource, e.resource, "{}/{cfg}", device.name);
                    assert_eq!(*requested, e.requested, "{}/{cfg}", device.name);
                    assert_eq!(*limit, e.limit, "{}/{cfg}", device.name);
                }
                (Verdict::Valid | Verdict::Degraded { .. }, Ok(())) => {}
                (verdict, runtime) => panic!(
                    "{}/{cfg}: analyzer says {verdict:?}, runtime says {runtime:?}",
                    device.name
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Launch validity is a *static* property: the analyzer's verdict
    /// (computed at the canonical 1024³ shape) predicts the runtime's
    /// accept/reject decision for arbitrary problem shapes too, because
    /// all three resource checks read only the work-group geometry.
    #[test]
    fn invalid_verdicts_hold_for_arbitrary_shapes(
        m in 1usize..400,
        k in 1usize..400,
        n in 1usize..400,
        idx in 0usize..640,
    ) {
        let shape = GemmShape::new(m, k, n);
        let device = DeviceSpec::host_cpu();
        let cfg = KernelConfig::from_index(idx).unwrap();
        let range = model::launch_range(&cfg, &shape).unwrap();
        let profile = model::profile(&cfg, &shape, &device);
        let runtime_accepts = validate_launch(&device, &profile, &range).is_ok();
        prop_assert_eq!(
            !host_analysis().configs[idx].verdict.is_invalid(),
            runtime_accepts,
            "config {} on shape {}", cfg, shape
        );
    }
}

/// The SARIF report for the edge DSP (the device exercising all three
/// invalid kinds) is byte-identical to the checked-in golden file.
/// Regenerate intentionally with `BLESS=1 cargo test -q golden`.
#[test]
fn edge_dsp_sarif_report_matches_golden_file() {
    let analysis = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
        .analyze()
        .expect("analysis succeeds");
    assert!(analysis.invalid_count() > 0, "edge DSP must reject configs");
    assert!(analysis.dominated_count() > 0);
    let rendered =
        autokernel::analyze::render_report(std::slice::from_ref(&analysis)).expect("renders");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/edge_dsp_analysis.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).expect("bless writes golden file");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing: regenerate with BLESS=1 cargo test");
    assert_eq!(
        rendered, golden,
        "SARIF report drifted from tests/golden/edge_dsp_analysis.json \
         (re-bless with BLESS=1 if the change is intentional)"
    );
}

/// With `static_prune` (the default), the pipeline never benchmarks a
/// configuration the analyzer proved unlaunchable: the dataset carries
/// `inf` for those entries (normalising to score 0), the prune stats
/// account for every skipped launch, and no invalid config can ship.
#[test]
fn pipeline_prunes_statically_invalid_configs_before_benchmarking() {
    let shapes: Vec<(GemmShape, String)> = [
        (64, 64, 64),
        (512, 512, 512),
        (196, 2304, 256),
        (784, 1152, 128),
        (32, 4096, 4096),
        (2, 2048, 1000),
        (128, 128, 1000),
        (1024, 1024, 1024),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
    .collect();

    let pipeline = TuningPipeline::run(&DeviceSpec::host_cpu(), &shapes, PipelineConfig::default())
        .expect("pipeline trains");

    let stats = *pipeline.prune_stats().expect("run() records prune stats");
    let analysis = pipeline.space_analysis();
    assert_eq!(stats.pruned_configs, analysis.invalid_count());
    assert!(
        stats.pruned_configs > 0,
        "the host CPU's 64 lanes must reject wide work-groups"
    );
    assert_eq!(stats.skipped_launches, stats.pruned_configs * shapes.len());
    assert!(stats.sim_seconds_saved > 0.0);

    let mask = analysis.invalid_mask();
    let ds = pipeline.dataset();
    for shape in 0..ds.n_shapes() {
        for (config, &invalid) in mask.iter().enumerate() {
            if invalid {
                assert!(ds.raw_seconds(shape, config).is_infinite());
                assert_eq!(ds.normalized(shape, config), 0.0);
            } else {
                assert!(ds.raw_seconds(shape, config).is_finite());
            }
        }
    }
    for &shipped in pipeline.shipped_configs() {
        assert!(!mask[shipped], "an unlaunchable config must never ship");
    }
}

/// On a device where every configuration is launchable (the R9 Nano),
/// pre-pruning is a provable no-op: bit-identical timings and the same
/// shipped set as a pipeline with pruning disabled.
#[test]
fn pruning_is_a_noop_where_every_config_is_valid() {
    let shapes: Vec<(GemmShape, String)> = [
        (64, 64, 64),
        (512, 512, 512),
        (196, 2304, 256),
        (49, 960, 160),
        (32, 4096, 4096),
        (1024, 1024, 1024),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
    .collect();
    let device = DeviceSpec::amd_r9_nano();

    let pruned = TuningPipeline::run(&device, &shapes, PipelineConfig::default()).unwrap();
    let plain = TuningPipeline::run(
        &device,
        &shapes,
        PipelineConfig {
            static_prune: false,
            ..PipelineConfig::default()
        },
    )
    .unwrap();

    let stats = *pruned.prune_stats().expect("stats recorded");
    assert_eq!(stats.pruned_configs, 0);
    assert_eq!(stats.skipped_launches, 0);
    assert_eq!(stats.sim_seconds_saved, 0.0);
    assert!(plain.prune_stats().is_none(), "disabled path records none");

    for shape in 0..pruned.dataset().n_shapes() {
        for config in 0..pruned.dataset().n_configs() {
            assert_eq!(
                pruned.dataset().raw_seconds(shape, config).to_bits(),
                plain.dataset().raw_seconds(shape, config).to_bits(),
                "timings must be bit-identical at ({shape}, {config})"
            );
        }
    }
    assert_eq!(pruned.shipped_configs(), plain.shipped_configs());
    assert_eq!(pruned.test_score().unwrap(), plain.test_score().unwrap());
}

/// `with_static_analysis` drops unlaunchable configurations from the
/// fallback chain outright, and dominated ones whenever their dominator
/// is also in the chain — each drop counted in telemetry.
#[test]
fn fallback_chain_excludes_invalid_and_dominated_configs() {
    let analysis = host_analysis();
    let invalid_idx = analysis
        .configs
        .iter()
        .position(|c| c.verdict.is_invalid())
        .expect("host CPU has invalid configs");
    let (dominated_idx, dominator_idx) = analysis
        .configs
        .iter()
        .find_map(|c| c.dominated_by.map(|d| (c.config_index, d)))
        .expect("host CPU has dominated configs");

    let ds = host_dataset();
    let train: Vec<usize> = (0..ds.n_shapes()).collect();
    let shipped = vec![dominator_idx, dominated_idx, invalid_idx];
    let selector = Arc::new(
        Selector::train(SelectorKind::DecisionTree, ds, &train, &shipped, 0).expect("trains"),
    );
    let serving = Arc::new(CachedSelector::new(selector));
    let queue = Queue::new(Arc::new(DeviceSpec::host_cpu()));

    let executor = ResilientExecutor::with_static_analysis(
        Arc::clone(&serving),
        queue,
        shipped,
        ResilientPolicy::default(),
        analysis,
    );
    assert_eq!(
        executor.ranking(),
        &[dominator_idx],
        "only the undominated, launchable config survives"
    );
    assert_eq!(serving.telemetry().fallback_skipped_invalid(), 2);
    assert_eq!(serving.telemetry().snapshot().fallback_skipped_invalid, 2);
}

/// A statically invalid *primary* pick (a model artefact disagreeing
/// with the serving device) is skipped without burning a launch attempt:
/// the report shows zero failures and a depth-1 fallback.
#[test]
fn invalid_primary_pick_is_skipped_without_a_launch_attempt() {
    let analysis = host_analysis();
    let invalid_idx = analysis
        .configs
        .iter()
        .position(|c| c.verdict.is_invalid())
        .expect("host CPU has invalid configs");
    let valid_idx = analysis
        .configs
        .iter()
        .position(|c| !c.verdict.is_invalid() && !c.is_dominated())
        .expect("host CPU has valid configs");

    // A single-config shipped set: the selector can only ever pick the
    // config that is unlaunchable on the serving device.
    let ds = host_dataset();
    let train: Vec<usize> = (0..ds.n_shapes()).collect();
    let selector = Arc::new(
        Selector::train(SelectorKind::DecisionTree, ds, &train, &[invalid_idx], 0).expect("trains"),
    );
    let serving = Arc::new(CachedSelector::new(selector));
    let queue = Queue::new(Arc::new(DeviceSpec::host_cpu()));
    let executor = ResilientExecutor::with_static_analysis(
        Arc::clone(&serving),
        queue,
        vec![valid_idx],
        ResilientPolicy::default(),
        analysis,
    );

    let shape = GemmShape::new(40, 24, 32);
    let (a, b, c) = operand_buffers(shape, 3);
    let report = executor.launch(shape, &a, &b, &c).expect("completes");
    assert!(
        report.failures.is_empty(),
        "the invalid pick must be skipped statically, never attempted"
    );
    assert!(!report.event.is_failed());
    assert_eq!(report.decision.fallback, FallbackLevel::NextBest(1));
    assert_eq!(report.config.map(|c| c.index()), Some(valid_idx));
    assert!(serving.telemetry().fallback_skipped_invalid() >= 1);

    let (av, bv) = (a.to_vec(), b.to_vec());
    let mut expect = vec![0.0f32; shape.m * shape.n];
    reference_gemm(shape, &av, &bv, &mut expect);
    assert!(max_abs_diff(&c.to_vec(), &expect) < 1e-3);
}

/// The `hotpath_lint` binary: exit 0 on the repo's own serving modules,
/// exit 1 (with rule ids on stdout) on the seeded fixture violation.
#[test]
fn hotpath_lint_binary_passes_repo_and_fails_fixture() {
    let bin = env!("CARGO_BIN_EXE_hotpath_lint");
    let repo = env!("CARGO_MANIFEST_DIR");

    let clean = std::process::Command::new(bin)
        .current_dir(repo)
        .output()
        .expect("binary runs");
    assert!(
        clean.status.success(),
        "repo hot paths must lint clean:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let fixture = format!("{repo}/crates/analyze/tests/fixtures/violations.rs");
    let dirty = std::process::Command::new(bin)
        .arg(&fixture)
        .current_dir(repo)
        .output()
        .expect("binary runs");
    assert_eq!(
        dirty.status.code(),
        Some(1),
        "seeded violations must fail the lint"
    );
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    for rule in [
        "no-unwrap",
        "no-expect",
        "no-panic",
        "no-index",
        "no-partial-cmp",
        "no-todo",
        "no-unimplemented",
    ] {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "missing {rule}:\n{stdout}"
        );
    }

    let missing = std::process::Command::new(bin)
        .arg("does/not/exist.rs")
        .current_dir(repo)
        .output()
        .expect("binary runs");
    assert_eq!(missing.status.code(), Some(2), "unreadable file is exit 2");
}
