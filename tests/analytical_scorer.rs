//! Degenerate-shape hardening of the analytical scorer: the roofline
//! ranking must stay finite, bounded and launchability-consistent on
//! the shapes most likely to break item-count arithmetic — the 1×1×1
//! GEMV corner, a skinny-K outer product and the largest triple in the
//! paper dataset — on every shipped device model.

use autokernel::analyze::{AnalyticalScorer, KernelSpaceAnalyzer, Verdict};
use autokernel::gemm::{GemmShape, KernelConfig};
use autokernel::sim::DeviceSpec;
use autokernel::workloads::dataset::paper_shapes;

fn devices() -> [DeviceSpec; 5] {
    [
        DeviceSpec::amd_r9_nano(),
        DeviceSpec::desktop_gpu(),
        DeviceSpec::embedded_accelerator(),
        DeviceSpec::host_cpu(),
        DeviceSpec::edge_dsp(),
    ]
}

/// The corner shapes: the scalar GEMM, a wide outer-product with a
/// skinny reduction axis, and the largest (by item count) triple the
/// paper's dataset actually contains.
fn degenerate_shapes() -> Vec<GemmShape> {
    let largest = paper_shapes()
        .into_iter()
        .max_by_key(|s| s.m * s.k * s.n)
        .expect("paper dataset is non-empty");
    vec![
        GemmShape::new(1, 1, 1),
        GemmShape::new(4096, 8, 4096),
        largest,
    ]
}

#[test]
fn degenerate_shapes_score_finite_and_bounded_everywhere() {
    for device in devices() {
        let scorer = AnalyticalScorer::new(&device);
        assert_eq!(scorer.len(), KernelConfig::count());
        for shape in degenerate_shapes() {
            for index in 0..scorer.len() {
                let score = scorer.score_index(index, &shape);
                assert!(
                    score.is_finite() && (0.0..=1.0).contains(&score),
                    "score {score} for config {index} on {shape} ({})",
                    device.name
                );
                if !scorer.launchable(index) {
                    assert_eq!(
                        score, 0.0,
                        "unlaunchable config {index} must score zero on {shape} ({})",
                        device.name
                    );
                }
            }
        }
    }
}

#[test]
fn top_ranked_config_is_never_statically_invalid() {
    for device in devices() {
        let analysis = KernelSpaceAnalyzer::new(device.clone())
            .analyze()
            .expect("space analysis runs");
        let scorer = AnalyticalScorer::new(&device);
        for shape in degenerate_shapes() {
            let ranking = scorer.rank_all(&shape);
            assert_eq!(ranking.len(), KernelConfig::count());
            let (top, top_score) = ranking[0];
            if top_score > 0.0 {
                assert!(
                    !matches!(analysis.configs[top].verdict, Verdict::Invalid { .. }),
                    "top-ranked config {top} on {shape} ({}) is statically invalid",
                    device.name
                );
            }
            // Every positively-scored config must be launchable; the
            // analyzer and the scorer share the launch predicate.
            for &(index, score) in &ranking {
                if score > 0.0 {
                    assert!(
                        scorer.launchable(index),
                        "config {index} scored {score} on {shape} ({}) but cannot launch",
                        device.name
                    );
                }
            }
        }
    }
}

#[test]
fn top_n_returns_only_positive_launchable_configs() {
    let device = DeviceSpec::edge_dsp();
    let scorer = AnalyticalScorer::new(&device);
    for shape in degenerate_shapes() {
        let top = scorer.top_n(&shape, 32);
        assert!(top.len() <= 32);
        for &index in &top {
            assert!(scorer.launchable(index));
            assert!(scorer.score_index(index, &shape) > 0.0);
        }
    }
}
