//! Integration tests of the concurrent serving layer: the sharded
//! decision cache must behave as a pure memoisation of the selector
//! under multi-threaded traffic, its telemetry must reconcile exactly,
//! and decisions must flow into the simulator's launch traces.

use autokernel::core::cache::CachedSelector;
use autokernel::core::{PerformanceDataset, PruneMethod, Selector, SelectorKind};
use autokernel::gemm::{GemmShape, TiledGemmKernel};
use autokernel::sim::trace::{LaunchDecision, TraceRecorder};
use autokernel::sim::{Buffer, DeviceSpec, DeviceType, Platform, Queue};
use std::sync::{Arc, OnceLock};

const THREADS: usize = 8;
const SELECTIONS_PER_THREAD: usize = 25;

fn trained() -> Arc<Selector> {
    static SEL: OnceLock<Arc<Selector>> = OnceLock::new();
    Arc::clone(SEL.get_or_init(|| {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        let ds = PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::TopN.select(&ds, &train, 6, 0).unwrap();
        Arc::new(Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap())
    }))
}

/// Shapes a serving thread would see: a small working set that recurs.
fn traffic() -> Vec<GemmShape> {
    (0..10)
        .map(|i| GemmShape::new(32 + i * 61, 64 + i * 13, 48 + i * 29))
        .collect()
}

#[test]
fn concurrent_selection_is_coherent_and_reconciles() {
    let selector = trained();
    let cached = CachedSelector::new(Arc::clone(&selector));
    let shapes = traffic();

    // Uncached reference decisions, computed single-threaded.
    let expected: Vec<usize> = shapes
        .iter()
        .map(|s| selector.select_shape(s).unwrap())
        .collect();

    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let cached = &cached;
            let shapes = &shapes;
            let expected = &expected;
            scope.spawn(move |_| {
                for i in 0..SELECTIONS_PER_THREAD {
                    let j = (t + i) % shapes.len();
                    let got = cached.select(&shapes[j]).unwrap();
                    assert_eq!(
                        got, expected[j],
                        "thread {t} selection {i} diverged from the uncached selector"
                    );
                }
            });
        }
    })
    .unwrap();

    let t = cached.telemetry();
    let total = (THREADS * SELECTIONS_PER_THREAD) as u64;
    assert_eq!(t.total(), total, "every selection must be counted");
    assert_eq!(t.hits() + t.misses(), total, "counters must reconcile");
    // Each distinct shape misses at least once; concurrent first
    // touches may miss more than once (benign race), but never more
    // often than total threads per shape.
    assert!(t.misses() >= shapes.len() as u64);
    assert!(t.misses() <= (shapes.len() * THREADS) as u64);
    assert!(t.hits() > 0, "warm traffic must produce hits");
    assert_eq!(cached.cached_shapes(), shapes.len());
    let picked: u64 = t.picks().iter().map(|&(_, n)| n).sum();
    assert_eq!(picked, total, "every selection picks a shipped config");
}

#[test]
fn warm_then_serve_is_all_hits() {
    let cached = CachedSelector::new(trained());
    let shapes = traffic();
    cached.warm(&shapes).unwrap();
    let warm_misses = cached.telemetry().misses();
    assert_eq!(warm_misses, shapes.len() as u64);

    let decisions = cached.select_batch(&shapes).unwrap();
    assert_eq!(decisions.len(), shapes.len());
    assert_eq!(cached.telemetry().misses(), warm_misses, "no new misses");
    assert_eq!(cached.telemetry().hits(), shapes.len() as u64);
}

#[test]
fn selection_decisions_annotate_launch_traces() {
    let selector = trained();
    let cached = CachedSelector::new(Arc::clone(&selector));
    let shape = GemmShape::new(256, 256, 256);

    let platform = Platform::standard();
    let queue = Queue::new(platform.device_by_type(DeviceType::Gpu).unwrap());
    let mut trace = TraceRecorder::new();

    // Serve the same shape twice: one model inference, one cache hit.
    for _ in 0..2 {
        let outcome = cached.select_outcome(&shape).unwrap();
        let config = autokernel::gemm::config::KernelConfig::from_index(outcome.config_index)
            .expect("selector returns valid indices");
        let a = Buffer::from_vec(vec![1.0f32; shape.m * shape.k]);
        let b = Buffer::from_vec(vec![1.0f32; shape.k * shape.n]);
        let c = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel = TiledGemmKernel::new(config, shape, a, b, c).unwrap();
        let event = queue
            .submit(&kernel, kernel.preferred_range().unwrap())
            .unwrap();
        trace.record_with_decision("serving", event, LaunchDecision::from(outcome));
    }

    assert_eq!(trace.decided_launches(), 2);
    assert_eq!(trace.cache_hit_launches(), 1);
    let parsed: serde_json::Value = serde_json::from_str(&trace.to_chrome_trace()).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0]["args"]["cache_hit"], false);
    assert_eq!(events[1]["args"]["cache_hit"], true);
    assert_eq!(
        events[0]["args"]["config_index"],
        events[1]["args"]["config_index"]
    );
}
