//! Integration tests asserting the structural findings of the paper's
//! Section II (Figures 1-3) hold on the regenerated dataset.

use autokernel::core::PerformanceDataset;
use autokernel::mlkit::Pca;
use autokernel::sim::DeviceSpec;
use std::sync::OnceLock;

fn dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        PerformanceDataset::collect_paper_dataset(&DeviceSpec::amd_r9_nano())
            .expect("dataset collects")
    })
}

#[test]
fn dataset_has_paper_dimensions() {
    let ds = dataset();
    assert_eq!(ds.n_shapes(), 170);
    assert_eq!(ds.n_configs(), 640);
    // Per-network counts: 78 VGG + 66 ResNet + 26 MobileNet.
    let vgg = ds.networks.iter().filter(|n| n.as_str() == "VGG16").count();
    let res = ds
        .networks
        .iter()
        .filter(|n| n.as_str() == "ResNet50")
        .count();
    let mob = ds
        .networks
        .iter()
        .filter(|n| n.as_str() == "MobileNetV2")
        .count();
    assert_eq!((vgg, res, mob), (78, 66, 26));
}

#[test]
fn fig1_left_tail_never_above_30_percent() {
    // Paper: "those at the far left never achieving above 30% of the
    // optimal performance".
    let ds = dataset();
    let means = ds.mean_performance();
    let mut order: Vec<usize> = (0..ds.n_configs()).collect();
    order.sort_by(|&a, &b| means[a].partial_cmp(&means[b]).unwrap());
    let norm = ds.normalized_matrix();
    for &j in &order[..32] {
        let max = (0..ds.n_shapes())
            .map(|i| norm[(i, j)])
            .fold(0.0f64, f64::max);
        assert!(max < 0.30, "config {j} in the left tail peaks at {max}");
    }
}

#[test]
fn fig1_best_mean_config_still_poor_somewhere() {
    // Paper: "those that perform optimally on some sizes still perform
    // poorly on other sizes".
    let ds = dataset();
    let means = ds.mean_performance();
    let best = means
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(j, _)| j)
        .unwrap();
    let norm = ds.normalized_matrix();
    let worst_case = (0..ds.n_shapes())
        .map(|i| norm[(i, best)])
        .fold(1.0f64, f64::min);
    assert!(
        worst_case < 0.7,
        "best-mean config never drops below {worst_case}"
    );
}

#[test]
fn fig2_dominant_config_and_long_tail() {
    // Paper: one config best 32 times (>3x the runner-up); 58 distinct
    // optima. Bands allow for the different "hardware".
    let ds = dataset();
    let counts = ds.optimal_counts();
    let mut sorted: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let dominant = sorted[0];
    let runner = sorted.get(1).copied().unwrap_or(0);
    assert!(
        (20..=60).contains(&dominant),
        "dominant config wins {dominant}, expected a 20-60 band around the paper's 32"
    );
    assert!(
        dominant as f64 >= 2.5 * runner as f64,
        "dominance {dominant} vs runner-up {runner} too flat (paper: >3x)"
    );
    let distinct = ds.distinct_optima();
    assert!(
        (35..=90).contains(&distinct),
        "distinct optima {distinct}, expected a 35-90 band around the paper's 58"
    );
}

#[test]
fn fig3_variance_concentrates_in_few_components() {
    // Paper: 4 components cover >80%, 8 cover 90%, 15 cover 95%. Our
    // simulated dataset concentrates somewhat harder; assert the
    // qualitative claims: 4 components suffice for 80%, 15 for 95%, and
    // one component is NOT enough for 80% (the sweep range is 4..15 for
    // a reason).
    let ds = dataset();
    let norm = ds.normalized_matrix();
    let mut pca = Pca::new(20);
    pca.fit(&norm).unwrap();
    let ratios = pca.explained_variance_ratio().unwrap();
    let cum: Vec<f64> = ratios
        .iter()
        .scan(0.0, |a, &r| {
            *a += r;
            Some(*a)
        })
        .collect();
    assert!(cum[0] < 0.80, "one component already covers {:.3}", cum[0]);
    assert!(cum[3] >= 0.80, "4 components only cover {:.3}", cum[3]);
    assert!(cum[14] >= 0.95, "15 components only cover {:.3}", cum[14]);
    // Ratios descend.
    for w in ratios.windows(2) {
        assert!(w[0] >= w[1] - 1e-12);
    }
}

#[test]
fn every_config_is_launchable_on_the_r9_nano() {
    // The paper brute-forces all 640 configs; each must produce a valid
    // launch for representative shapes.
    use autokernel::gemm::{model, GemmShape, KernelConfig};
    let device = DeviceSpec::amd_r9_nano();
    for shape in [GemmShape::new(1, 1, 1), GemmShape::new(12544, 27, 64)] {
        for cfg in KernelConfig::all() {
            let range = model::launch_range(&cfg, &shape).expect("launchable");
            assert!(range.local_size() <= device.max_work_group_size);
        }
    }
}

#[test]
fn gflops_reported_are_physical() {
    let ds = dataset();
    let peak = ds.device.peak_flops / 1e9;
    for i in (0..ds.n_shapes()).step_by(17) {
        let best = ds.best_config(i);
        let g = ds.gflops(i, best);
        assert!(
            g > 0.0 && g <= peak,
            "shape {i}: {g} GFLOP/s vs {peak} peak"
        );
    }
}
