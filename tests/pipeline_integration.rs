//! End-to-end integration tests of the tuning pipeline, the deployment
//! codegen and the dynamic-autotuner baseline, spanning every crate.

use autokernel::core::autotune::DynamicAutotuner;
use autokernel::core::codegen::CompiledTree;
use autokernel::core::{PipelineConfig, PruneMethod, SelectorKind, TuningPipeline};
use autokernel::gemm::reference::{max_abs_diff, parallel_reference_gemm, test_matrices};
use autokernel::gemm::{GemmShape, TiledGemmKernel};
use autokernel::sim::{Buffer, DeviceSpec, DeviceType, Platform, Queue};

fn demo_shapes() -> Vec<(GemmShape, String)> {
    [
        (12544, 27, 64),
        (3136, 144, 24),
        (784, 1152, 128),
        (196, 2304, 256),
        (49, 960, 160),
        (1, 4096, 1000),
        (8, 25088, 4096),
        (64, 64, 64),
        (512, 512, 512),
        (1024, 1024, 1024),
        (32, 4096, 4096),
        (6272, 576, 128),
        (2, 2048, 1000),
        (128, 128, 1000),
        (25088, 576, 128),
        (3136, 576, 192),
        (16, 9216, 4096),
        (100352, 27, 64),
        (392, 4608, 512),
        (196, 512, 2048),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "demo".to_string()))
    .collect()
}

#[test]
fn pipeline_select_then_execute_matches_reference() {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    let pipeline = TuningPipeline::run(&device, &demo_shapes(), PipelineConfig::default()).unwrap();

    let unseen = GemmShape::new(123, 456, 78);
    let cfg = pipeline.select(&unseen).unwrap();
    assert!(pipeline.shipped_kernel_configs().contains(&cfg));

    let (a, b) = test_matrices(unseen, 3);
    let mut expect = vec![0.0f32; unseen.m * unseen.n];
    parallel_reference_gemm(unseen, &a, &b, &mut expect);

    let bc = Buffer::from_vec(vec![0.0f32; unseen.m * unseen.n]);
    let kernel = TiledGemmKernel::new(
        cfg,
        unseen,
        Buffer::from_vec(a),
        Buffer::from_vec(b),
        bc.clone(),
    )
    .unwrap();
    let queue = Queue::new(device);
    let event = queue
        .submit(&kernel, kernel.preferred_range().unwrap())
        .unwrap();
    assert!(event.duration_s() > 0.0);
    assert!(max_abs_diff(&bc.to_vec(), &expect) < 1e-3);
}

#[test]
fn compiled_selector_equals_estimator_on_a_shape_grid() {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    let pipeline = TuningPipeline::run(&device, &demo_shapes(), PipelineConfig::default()).unwrap();
    let compiled = CompiledTree::from_selector(pipeline.selector()).unwrap();
    for m in [1usize, 3, 64, 500, 12544, 200000] {
        for k in [1usize, 27, 576, 4096] {
            for n in [1usize, 24, 512, 4096] {
                let shape = GemmShape::new(m, k, n);
                assert_eq!(
                    compiled.select(&shape),
                    pipeline.selector().select_shape(&shape).unwrap(),
                    "divergence on {shape}"
                );
            }
        }
    }
}

#[test]
fn every_prune_method_and_selector_combination_runs() {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    for prune in PruneMethod::all() {
        for selector in [SelectorKind::DecisionTree, SelectorKind::OneNearestNeighbor] {
            let pipeline = TuningPipeline::run(
                &device,
                &demo_shapes(),
                PipelineConfig {
                    budget: 5,
                    prune,
                    selector,
                    ..PipelineConfig::default()
                },
            )
            .unwrap();
            let score = pipeline.test_score().unwrap();
            let ceiling = pipeline.achievable_ceiling();
            assert!(
                score > 0.0 && score <= ceiling + 1e-12,
                "{} + {}: score {score} ceiling {ceiling}",
                prune.name(),
                selector.name()
            );
        }
    }
}

#[test]
fn autotuner_converges_to_dataset_best() {
    // The dynamic autotuner's cached choice must equal the dataset's
    // per-shape argmin (they price launches identically).
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    let ds = autokernel::core::PerformanceDataset::collect(&device, &demo_shapes()).unwrap();
    let mut at = DynamicAutotuner::new(&device, vec![]);
    for (i, shape) in ds.shapes.iter().enumerate() {
        let decision = at.decide(*shape);
        assert_eq!(decision.config, ds.best_config(i), "shape {shape}");
    }
}

#[test]
fn pruned_autotuner_trials_cost_less_than_full() {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    let pipeline = TuningPipeline::run(
        &device,
        &demo_shapes(),
        PipelineConfig {
            budget: 8,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let shape = GemmShape::new(777, 333, 111);
    let mut full = DynamicAutotuner::new(&device, vec![]);
    let mut pruned = DynamicAutotuner::new(&device, pipeline.shipped_configs().to_vec());
    let d_full = full.decide(shape);
    let d_pruned = pruned.decide(shape);
    assert!(d_pruned.trial_cost_s < d_full.trial_cost_s / 10.0);
}

#[test]
fn dataset_round_trips_through_json() {
    let device = DeviceSpec::amd_r9_nano();
    let ds = autokernel::core::PerformanceDataset::collect(&device, &demo_shapes()[..4]).unwrap();
    let back = autokernel::core::PerformanceDataset::from_json(&ds.to_json()).unwrap();
    assert_eq!(back.shapes, ds.shapes);
    for i in 0..ds.n_shapes() {
        for j in (0..ds.n_configs()).step_by(97) {
            let (a, b) = (back.raw_seconds(i, j), ds.raw_seconds(i, j));
            // serde_json's float path may be off by one ULP.
            assert!((a - b).abs() <= a.abs() * 1e-14, "{a} vs {b}");
        }
    }
}

#[test]
fn pipeline_works_on_every_standard_device() {
    let platform = Platform::standard();
    for device in platform.devices() {
        let pipeline =
            TuningPipeline::run(device, &demo_shapes(), PipelineConfig::default()).unwrap();
        let score = pipeline.test_score().unwrap();
        assert!(score > 0.3, "{}: score {score}", device.name);
    }
}
