//! Integration tests of `core::persist`: the crash-recovery acceptance
//! scenario (drift trips mid-stream, the process dies, the warm
//! restart reaches the shipped-set oracle in a tenth of the cold-start
//! launches), corruption-tolerant restore under every injected fault
//! (typed outcomes, zero panics, zero silent drops), exact ingress
//! accounting across a restart, concurrent snapshot-while-serving
//! consistency, and cross-device transplant warm start.

use autokernel::core::cache::LATENCY_BUCKETS;
use autokernel::core::persist::{
    self, ArmState, CacheEntryState, CacheShardState, CacheState, ClusterSnapshot, OnlineState,
    TelemetryState,
};
use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{
    DeviceShard, GemmRequest, Ingress, IngressConfig, IngressRequest, OnlineConfig,
    PerformanceDataset, PipelineConfig, RestoreOutcome, SchedConfig, ShardedScheduler, Snapshot,
    SnapshotError, SnapshotFault, SnapshotFaultInjector, SnapshotterConfig, TuningPipeline,
};
use autokernel::gemm::{model, GemmShape, KernelConfig};
use autokernel::sim::{Buffer, DeviceSpec, Queue};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn shapes() -> Vec<(GemmShape, String)> {
    [
        (64, 64, 64),
        (512, 512, 512),
        (1, 4096, 1000),
        (12544, 27, 64),
        (196, 2304, 256),
        (3136, 144, 24),
        (49, 960, 160),
        (784, 1152, 128),
        (32, 4096, 4096),
        (2, 2048, 1000),
        (6272, 576, 128),
        (1024, 1024, 1024),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
    .collect()
}

/// The small dataset, collected once for the whole test binary.
fn dataset() -> &'static PerformanceDataset {
    static DS: OnceLock<PerformanceDataset> = OnceLock::new();
    DS.get_or_init(|| {
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes())
            .expect("dataset collects")
    })
}

/// Each test trains its own pipeline so telemetry and bandit state
/// never leak between tests.
fn pipeline() -> TuningPipeline {
    TuningPipeline::from_dataset(dataset().clone(), PipelineConfig::default())
        .expect("pipeline trains")
}

/// Simulated duration of `config_index` on `shape` for `queue`'s
/// device, or `None` when the device rejects the launch.
fn priced(queue: &Queue, shape: &GemmShape, config_index: usize) -> Option<f64> {
    let cfg = KernelConfig::from_index(config_index)?;
    let range = model::launch_range(&cfg, shape).ok()?;
    let profile = model::profile(&cfg, shape, queue.device());
    queue
        .price(&profile, &range, model::noise_seed(&cfg, shape))
        .ok()
        .map(|(_, duration)| duration)
}

fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn zero_buffers(shape: GemmShape) -> (Buffer<f32>, Buffer<f32>, Buffer<f32>) {
    (
        Buffer::new_filled(shape.m * shape.k, 0.0f32),
        Buffer::new_filled(shape.k * shape.n, 0.0f32),
        Buffer::new_filled(shape.m * shape.n, 0.0f32),
    )
}

/// A unique scratch directory for a test's snapshot files.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("autokernel-persist-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Per-shape best shipped-config duration on `queue`'s device.
fn shipped_oracle(pipeline: &TuningPipeline, queue: &Queue, shapes: &[GemmShape]) -> Vec<f64> {
    shapes
        .iter()
        .map(|shape| {
            pipeline
                .shipped_configs()
                .iter()
                .filter_map(|&c| priced(queue, shape, c))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Serve `rounds` passes over `shapes` on `exec`, returning each
/// launch's oracle-relative ratio (1.0 = oracle-fast) in launch order.
fn serve_rounds(
    exec: &autokernel::core::resilient::ResilientExecutor,
    shapes: &[GemmShape],
    buffers: &[(Buffer<f32>, Buffer<f32>, Buffer<f32>)],
    oracle: &[f64],
    rounds: usize,
) -> Vec<f64> {
    let mut ratios = Vec::with_capacity(rounds * shapes.len());
    for _ in 0..rounds {
        for ((shape, (a, b, c)), &best) in shapes.iter().zip(buffers).zip(oracle) {
            let report = exec.launch(*shape, a, b, c).expect("launch completes");
            assert!(!report.event.is_failed(), "every launch must complete");
            ratios.push(best / report.event.duration_s());
        }
    }
    ratios
}

/// The smallest launch index from which every later launch stays at or
/// above `bar` — "launches needed before sustained oracle-level
/// serving". `None` if the run never settles.
fn launches_until_stable(ratios: &[f64], bar: f64) -> Option<usize> {
    let mut first = ratios.len();
    while first > 0 && ratios[first - 1] >= bar {
        first -= 1;
    }
    (first < ratios.len()).then_some(first)
}

/// The acceptance scenario. Phase 1: a nano-trained adaptive stack
/// serves on the nano (bit-identical mirror), then the queue is
/// swapped for an edge DSP — drift trips naturally and the bandit
/// relearns, which costs a measurable number of launches (the *cold*
/// adaptation price). The converged state is snapshotted to disk and
/// the stack is dropped (the crash). Phase 2: a completely fresh stack
/// warm-restarts from the snapshot and must reach sustained ≥ 0.99 of
/// the shipped-set oracle within a tenth of the cold launches.
#[test]
fn crash_recovery_reaches_oracle_in_a_tenth_of_cold_launches() {
    const ROUNDS: usize = 30;
    let shapes: Vec<GemmShape> = dataset().shapes.clone();
    let buffers: Vec<_> = shapes.iter().map(|&s| zero_buffers(s)).collect();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let gpu = Arc::new(DeviceSpec::desktop_gpu());
    let dir = scratch("crash-recovery");
    let path = dir.join("serving.snap");

    // --- Phase 1: learn on the replacement device the hard way. ---
    // A small exploration coefficient and a zero prior weight keep
    // this UCB but make live evidence decisive: once every arm is
    // measured the bandit *stays* at the oracle, so "launches until
    // sustained oracle-level serving" is well-defined — and the whole
    // point of persistence is that those measurements survive.
    let learn = OnlineConfig {
        exploration: 0.02,
        prior_weight: 0.0,
        ..OnlineConfig::default()
    };
    let pipe = pipeline();
    let policy = ResilientPolicy::default();
    let (nano_exec, online) = pipe
        .adaptive_executor(Queue::timing_only(Arc::clone(&nano)), policy.clone(), learn)
        .expect("adaptive executor builds");
    for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
        nano_exec.launch(*shape, a, b, c).expect("nano launch");
    }
    assert!(!online.is_adaptive(), "no drift on the training device");

    // The nano dies and is replaced by an edge DSP: structural
    // rejections and order-of-magnitude slowdowns trip Page–Hinkley
    // within a few launches. Stop the moment it trips — the drift
    // transition has just reset the bandit for relearning.
    let edge_exec = pipe
        .resilient_executor(
            Queue::timing_only(Arc::new(DeviceSpec::edge_dsp())),
            policy.clone(),
        )
        .with_online(Arc::clone(&online));
    'trip: for _ in 0..5 {
        for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
            edge_exec.launch(*shape, a, b, c).expect("edge launch");
            if online.is_adaptive() {
                break 'trip;
            }
        }
    }
    assert!(online.is_adaptive(), "the device swap must trip drift");
    drop(edge_exec);

    // The replacement fleet lands on a desktop GPU, where four of the
    // shipped configurations launch with a real performance spread —
    // the bandit has to pay a measurable cold adaptation price.
    let gpu_exec = pipe
        .resilient_executor(Queue::timing_only(Arc::clone(&gpu)), policy.clone())
        .with_online(Arc::clone(&online));
    let probe = Queue::timing_only(Arc::clone(&gpu));
    let oracle = shipped_oracle(&pipe, &probe, &shapes);
    assert!(oracle.iter().all(|d| d.is_finite()));

    let cold_ratios = serve_rounds(&gpu_exec, &shapes, &buffers, &oracle, ROUNDS);
    let cold_launches = launches_until_stable(&cold_ratios, 0.99)
        .expect("cold adaptation must eventually settle at the oracle");
    assert!(
        cold_launches > 0,
        "a cold start must pay a real adaptation price"
    );

    // The last snapshot before the crash, exactly as the background
    // snapshotter would have written it.
    Snapshot::new(&gpu)
        .with_seq(7)
        .capture_stack(&online)
        .save(&path)
        .expect("snapshot saves");
    drop(gpu_exec);
    drop(nano_exec);
    drop(online);
    drop(pipe); // the crash: nothing survives but the snapshot file

    // --- Phase 2: warm restart into a completely fresh stack. ---
    let restored = Snapshot::load(&path).expect("snapshot loads");
    assert_eq!(restored.seq, 7);
    let fresh_pipe = pipeline();
    let (warm_exec, warm_online, outcome) = fresh_pipe
        .warm_adaptive_executor(
            Queue::timing_only(Arc::clone(&gpu)),
            policy.clone(),
            learn,
            &restored,
        )
        .expect("warm executor builds");
    assert_eq!(outcome, RestoreOutcome::Full, "every section must apply");
    assert!(
        warm_online.is_adaptive(),
        "a restored selector resumes in the adaptive stage"
    );
    assert!(
        warm_online.generation() >= 1,
        "the drift generation survives the restart"
    );
    assert!(
        fresh_pipe.telemetry().drift_events() >= 1,
        "restart-spanning telemetry stays cumulative"
    );

    let warm_ratios = serve_rounds(&warm_exec, &shapes, &buffers, &oracle, ROUNDS);
    let warm_launches =
        launches_until_stable(&warm_ratios, 0.99).expect("warm restart must serve at oracle level");
    let first_round = &warm_ratios[..shapes.len()];
    println!(
        "cold launches to oracle: {cold_launches}, warm: {warm_launches}, \
         warm first-round geomean {:.4}",
        geomean(first_round)
    );
    assert!(
        geomean(first_round) >= 0.99,
        "the warm stack's first round must already serve at >= 99% of the oracle"
    );
    assert!(
        warm_launches * 10 <= cold_launches,
        "warm restart must cost <= 10% of cold adaptation \
         (warm {warm_launches}, cold {cold_launches})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn adaptive_shard(pipe: &TuningPipeline, label: &str) -> DeviceShard {
    let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()));
    let (exec, _online) = pipe
        .device_adaptive_executor(queue, ResilientPolicy::default(), OnlineConfig::default())
        .expect("adaptive shard builds");
    DeviceShard::new(label, exec)
}

/// Ingress accounting across a restart: phase 1 serves through a
/// snapshotting ingress and is *dropped* (the crash — its report is
/// lost, only the on-drain snapshot survives); phase 2 warm-restarts a
/// fresh scheduler from the snapshot and keeps serving. The restored
/// shard's cumulative served counter spans both phases, and phase 2's
/// report satisfies `submitted == served + shed` exactly.
#[test]
fn ingress_accounting_is_exact_across_snapshot_restart() {
    let dir = scratch("ingress-restart");
    let path = dir.join("fleet.snap");
    let nano = DeviceSpec::amd_r9_nano();
    let pipe = pipeline();
    let config = IngressConfig {
        dispatch_chunk: 8,
        ..IngressConfig::default()
    };
    let snapshots = SnapshotterConfig::new(&path, nano.clone()).with_cadence(1);
    let pool: Vec<GemmShape> = dataset().shapes.clone();

    // --- Phase 1: serve 48 requests, then crash (drop). ---
    let sched = ShardedScheduler::new(vec![adaptive_shard(&pipe, "nano")], SchedConfig::default())
        .expect("scheduler builds");
    let ingress = Ingress::start_with_snapshots(sched, config, snapshots.clone());
    for i in 0..48usize {
        let request = IngressRequest::new(GemmRequest::zeroed(pool[i % pool.len()]));
        assert!(ingress.submit(request).expect("submit").is_enqueued());
    }
    drop(ingress); // crash: Drop joins the dispatcher, the report is lost
    assert!(
        path.exists(),
        "the on-drain snapshot must have been written"
    );

    // --- Phase 2: warm restart a fresh scheduler from the snapshot. ---
    let fresh_pipe = pipeline();
    let sched2 = ShardedScheduler::new(
        vec![adaptive_shard(&fresh_pipe, "nano")],
        SchedConfig::default(),
    )
    .expect("scheduler builds");
    let (ingress2, outcome) = Ingress::start_restored(sched2, config, snapshots);
    assert!(
        outcome.is_warm(),
        "the snapshot must restore warm, got {outcome:?}"
    );
    for i in 0..32usize {
        let request = IngressRequest::new(GemmRequest::zeroed(pool[i % pool.len()]));
        assert!(ingress2.submit(request).expect("submit").is_enqueued());
    }
    let (report, sched2) = ingress2.finish().expect("finish");
    assert!(report.accounted(), "submitted == served + shed: {report:?}");
    assert_eq!(report.submitted, 32);
    assert_eq!(report.served, 32);
    assert!(
        report.snapshots_written >= 1,
        "the restarted ingress keeps snapshotting"
    );
    let fleet = sched2.export_state();
    assert_eq!(
        fleet.shards[0].served, 80,
        "the served counter must span the restart (48 before + 32 after)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every injected corruption produces a typed `RestoreOutcome` and the
/// serving stack still completes all launches — zero panics, zero
/// silent drops, and a torn rename never costs the previous snapshot.
#[test]
fn every_injected_fault_degrades_typed_and_serving_continues() {
    let dir = scratch("fault-matrix");
    let pristine = dir.join("pristine.snap");
    let shapes: Vec<GemmShape> = dataset().shapes.clone();
    let buffers: Vec<_> = shapes.iter().map(|&s| zero_buffers(s)).collect();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());

    // Build real learned state to snapshot.
    let pipe = pipeline();
    let (exec, online) = pipe
        .adaptive_executor(
            Queue::timing_only(Arc::clone(&nano)),
            ResilientPolicy::default(),
            OnlineConfig::default(),
        )
        .expect("adaptive executor builds");
    online.force_drift();
    for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
        exec.launch(*shape, a, b, c).expect("launch");
    }
    Snapshot::new(&nano)
        .capture_stack(&online)
        .save(&pristine)
        .expect("snapshot saves");
    let original_online =
        serde_json::to_string(&Snapshot::load(&pristine).expect("pristine loads").online)
            .expect("encodes");

    let injector = SnapshotFaultInjector::new(0xC0FFEE);
    let faults = [
        SnapshotFault::Truncate { keep_fraction: 0.5 },
        SnapshotFault::BitFlips { count: 8 },
        SnapshotFault::TornRename,
        SnapshotFault::StaleVersion,
        SnapshotFault::WrongDevice,
    ];
    for fault in &faults {
        let label = fault.label();
        let path = dir.join(format!("{label}.snap"));
        std::fs::copy(&pristine, &path).expect("copy");
        injector.inject(&path, fault).expect("injection applies");

        // A fresh stack attempts a warm restart from the corrupted file.
        let fresh = pipeline();
        let (fresh_exec, fresh_online) = fresh
            .adaptive_executor(
                Queue::timing_only(Arc::clone(&nano)),
                ResilientPolicy::default(),
                OnlineConfig::default(),
            )
            .expect("fresh executor builds");
        let outcome = match Snapshot::load(&path) {
            Ok(snapshot) => snapshot.restore_stack(&fresh_online, &nano),
            Err(error) => RestoreOutcome::ColdStart { error },
        };
        match *fault {
            SnapshotFault::Truncate { .. } => assert!(
                matches!(
                    outcome,
                    RestoreOutcome::ColdStart {
                        error: SnapshotError::Malformed(_)
                    }
                ),
                "truncation: {outcome:?}"
            ),
            SnapshotFault::BitFlips { .. } => {
                // Wherever the flips landed, the outcome is typed and —
                // when the online section survived — byte-identical to
                // the original (the CRC catches every silent change).
                if let Ok(snapshot) = Snapshot::load(&path) {
                    if snapshot.online.is_some() && !snapshot.dropped.iter().any(|d| d == "online")
                    {
                        assert_eq!(
                            serde_json::to_string(&snapshot.online).expect("encodes"),
                            original_online,
                            "a surviving online section must be unmodified"
                        );
                    }
                }
            }
            SnapshotFault::TornRename => {
                assert!(
                    path.with_extension("snap.tmp").exists()
                        || dir.join(format!("{label}.snap.tmp")).exists(),
                    "a torn rename leaves a stray tmp file"
                );
                assert_eq!(
                    outcome,
                    RestoreOutcome::Full,
                    "the previous snapshot survives a torn rename"
                );
            }
            SnapshotFault::StaleVersion => assert!(
                matches!(
                    outcome,
                    RestoreOutcome::ColdStart {
                        error: SnapshotError::VersionSkew { .. }
                    }
                ),
                "stale version: {outcome:?}"
            ),
            SnapshotFault::WrongDevice => assert!(
                matches!(
                    outcome,
                    RestoreOutcome::ColdStart {
                        error: SnapshotError::DeviceMismatch { .. }
                    }
                ),
                "wrong device: {outcome:?}"
            ),
        }

        // Whatever the outcome, the stack completes every launch.
        for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
            let report = fresh_exec.launch(*shape, a, b, c).expect("launch");
            assert!(!report.event.is_failed(), "{label}: launches must complete");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A synthetic snapshot with every section populated, for corruption
/// proptests (no serving stack needed).
fn synthetic_snapshot() -> Snapshot {
    let mut snapshot = Snapshot::new(&DeviceSpec::amd_r9_nano()).with_seq(9);
    snapshot.online = Some(OnlineState {
        adaptive: true,
        generation: 2,
        shipped: vec![3, 5, 8],
        ph_n: 17,
        ph_mean_x: 1.01,
        ph_m: 0.4,
        ph_min_m: -0.2,
        clusters: vec![ClusterSnapshot {
            key: [6, 6, 6],
            arms: vec![
                ArmState {
                    prior: 0.9,
                    pulls: 12,
                    completions: 12,
                    sum_duration_s: 0.0012,
                    disabled: false,
                },
                ArmState {
                    prior: 0.5,
                    pulls: 3,
                    completions: 2,
                    sum_duration_s: 0.0009,
                    disabled: false,
                },
                ArmState {
                    prior: 0.1,
                    pulls: 1,
                    completions: 0,
                    sum_duration_s: 0.0,
                    disabled: true,
                },
            ],
        }],
    });
    snapshot.cache = Some(CacheState {
        generation: 2,
        shards: vec![CacheShardState {
            tick: 41,
            entries: vec![CacheEntryState {
                shape: GemmShape::new(64, 64, 64),
                config_index: 5,
                last_used: 40,
            }],
        }],
        bloom: None,
    });
    snapshot.telemetry = Some(TelemetryState {
        hits: 10,
        misses: 3,
        hit_nanos: 1000,
        miss_nanos: 9000,
        shipped: vec![3, 5, 8],
        picks: vec![7, 4, 2],
        resilient_launches: 13,
        launch_failures: 1,
        retries: 1,
        breaker_trips: 0,
        quarantine_skips: 0,
        fallback_next_best: 1,
        fallback_reference: 0,
        fallback_skipped_invalid: 0,
        reward_updates: 12,
        drift_events: 1,
        adaptive_picks: 9,
        stale_rewards_dropped: 0,
        latency_buckets: vec![0; LATENCY_BUCKETS],
    });
    snapshot
}

fn pristine_json() -> &'static String {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| synthetic_snapshot().to_json().expect("encodes"))
}

fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The surviving-section property: any section a corrupted parse still
/// reports (present, not dropped) must be byte-identical to the
/// original — the per-section CRC turns every silent modification into
/// a typed drop.
fn assert_survivors_unmodified(corrupted: &[u8]) {
    let text = String::from_utf8_lossy(corrupted);
    let pristine = synthetic_snapshot();
    match Snapshot::from_json(&text) {
        Err(_) => {} // typed cold start
        Ok(snapshot) => {
            let dropped = |name: &str| snapshot.dropped.iter().any(|d| d == name);
            assert_eq!(snapshot.device, pristine.device, "device is CRC-verified");
            if snapshot.online.is_some() && !dropped("online") {
                assert_eq!(
                    serde_json::to_string(&snapshot.online).expect("encodes"),
                    serde_json::to_string(&pristine.online).expect("encodes")
                );
            }
            if snapshot.cache.is_some() && !dropped("cache") {
                assert_eq!(
                    serde_json::to_string(&snapshot.cache).expect("encodes"),
                    serde_json::to_string(&pristine.cache).expect("encodes")
                );
            }
            if snapshot.telemetry.is_some() && !dropped("telemetry") {
                assert_eq!(
                    serde_json::to_string(&snapshot.telemetry).expect("encodes"),
                    serde_json::to_string(&pristine.telemetry).expect("encodes")
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any truncation of a valid snapshot yields a typed outcome —
    /// never a panic, never silently-wrong state.
    #[test]
    fn any_truncation_is_typed_or_unmodified(cut in 0usize..=4096) {
        let bytes = pristine_json().as_bytes();
        let cut = cut.min(bytes.len());
        assert_survivors_unmodified(&bytes[..cut]);
    }

    /// Any combination of bit flips yields a typed outcome, and every
    /// section that still parses is byte-identical to the original.
    #[test]
    fn any_bit_flips_are_typed_or_unmodified(seed in any::<u64>(), count in 1u64..24) {
        let mut bytes = pristine_json().as_bytes().to_vec();
        let len = bytes.len() as u64;
        for i in 0..count {
            let r = splitmix(seed, i);
            bytes[(r % len) as usize] ^= 1 << ((r >> 48) % 8);
        }
        assert_survivors_unmodified(&bytes);
    }
}

/// Eight threads hammer one adaptive stack — seven serving, one
/// snapshotting concurrently. Every captured snapshot must be
/// internally consistent (arm invariants hold, the envelope
/// round-trips) and the final state must restore into a fresh stack.
#[test]
fn snapshot_while_serving_stays_consistent_across_8_threads() {
    let shapes: Vec<GemmShape> = dataset().shapes.clone();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let pipe = pipeline();
    let (exec, online) = pipe
        .adaptive_executor(
            Queue::timing_only(Arc::clone(&nano)),
            ResilientPolicy::default(),
            OnlineConfig::default(),
        )
        .expect("adaptive executor builds");
    online.force_drift();

    std::thread::scope(|scope| {
        for worker in 0..7usize {
            let exec = &exec;
            let shapes = &shapes;
            scope.spawn(move || {
                for i in 0..40usize {
                    let shape = shapes[(worker * 5 + i) % shapes.len()];
                    let (a, b, c) = zero_buffers(shape);
                    exec.launch(shape, &a, &b, &c).expect("launch");
                }
            });
        }
        let online = &online;
        let nano = &nano;
        scope.spawn(move || {
            for _ in 0..60usize {
                let state = online.export_state();
                for cluster in &state.clusters {
                    assert_eq!(cluster.arms.len(), state.shipped.len());
                    for arm in &cluster.arms {
                        assert!(arm.completions <= arm.pulls, "torn arm stats");
                        assert!(arm.sum_duration_s.is_finite() && arm.sum_duration_s >= 0.0);
                        assert!(arm.prior.is_finite());
                    }
                }
                let snapshot = Snapshot::new(nano).capture_stack(online);
                let json = snapshot.to_json().expect("encodes mid-serving");
                let back = Snapshot::from_json(&json).expect("round-trips mid-serving");
                assert!(back.dropped.is_empty());
                std::thread::yield_now();
            }
        });
    });

    // The final concurrent capture restores cleanly into a fresh stack.
    let snapshot = Snapshot::new(&nano).capture_stack(&online);
    let fresh = pipeline();
    let (_, fresh_online, outcome) = fresh
        .warm_adaptive_executor(
            Queue::timing_only(Arc::clone(&nano)),
            ResilientPolicy::default(),
            OnlineConfig::default(),
            &snapshot,
        )
        .expect("warm executor builds");
    assert_eq!(outcome, RestoreOutcome::Full);
    assert_eq!(fresh_online.stats().clusters, online.stats().clusters);
}

/// Cross-device warm start (ROADMAP item 1): `nearest` picks the donor
/// whose device spec is closest in log-feature space, and the
/// transplanted snapshot re-seeds a fresh device's bandit priors from
/// the donor's measured evidence — adaptive from launch one, device
/// sections deliberately dropped.
#[test]
fn transplant_seeds_a_fresh_device_from_the_nearest_donor() {
    let shapes: Vec<GemmShape> = dataset().shapes.clone();
    let buffers: Vec<_> = shapes.iter().map(|&s| zero_buffers(s)).collect();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let pipe = pipeline();
    let (exec, online) = pipe
        .adaptive_executor(
            Queue::timing_only(Arc::clone(&nano)),
            ResilientPolicy::default(),
            OnlineConfig::default(),
        )
        .expect("adaptive executor builds");
    online.force_drift();
    for _ in 0..4 {
        for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
            exec.launch(*shape, a, b, c).expect("launch");
        }
    }
    let learned = Snapshot::new(&nano).capture_stack(&online);
    let idle = Snapshot::new(&DeviceSpec::host_cpu());
    let fleet = vec![idle, learned];

    // The desktop GPU's nearest profiled neighbour is the nano (also a
    // GPU), not the host CPU.
    let gpu = DeviceSpec::desktop_gpu();
    let donor = persist::nearest(&fleet, &gpu).expect("a donor exists");
    assert_eq!(donor.device, *nano);

    let transplanted = donor.transplant(&gpu);
    assert_eq!(transplanted.device_crc, persist::device_fingerprint(&gpu));
    let fresh = pipeline();
    let (gpu_exec, gpu_online, outcome) = fresh
        .warm_adaptive_executor(
            Queue::timing_only(Arc::new(gpu)),
            ResilientPolicy::default(),
            OnlineConfig::default(),
            &transplanted,
        )
        .expect("gpu executor builds");
    assert!(
        outcome.is_warm(),
        "transplant must restore warm: {outcome:?}"
    );
    assert!(
        outcome.dropped().iter().any(|d| d.starts_with("cache"))
            && outcome.dropped().iter().any(|d| d.starts_with("telemetry")),
        "device-specific sections must be reported dropped: {outcome:?}"
    );
    assert!(gpu_online.is_adaptive(), "transplant starts adaptive");
    assert!(gpu_online.stats().clusters > 0, "priors arrived");
    for (shape, (a, b, c)) in shapes.iter().zip(&buffers) {
        let report = gpu_exec.launch(*shape, a, b, c).expect("gpu launch");
        assert!(!report.event.is_failed());
    }
}

/// Graceful shutdown semantics: a pre-expired drain deadline sheds the
/// whole queue typed (never silently), a generous one serves it all,
/// and `Drop` without `finish` no longer leaks the dispatcher thread.
#[test]
fn shutdown_sheds_typed_and_drop_joins_the_dispatcher() {
    let pipe = pipeline();
    let pool: Vec<GemmShape> = dataset().shapes.clone();

    // Expired drain deadline: everything queued sheds as Shutdown.
    let sched = ShardedScheduler::new(vec![adaptive_shard(&pipe, "nano")], SchedConfig::default())
        .expect("scheduler builds");
    let ingress = Ingress::start(sched, IngressConfig::default());
    ingress.handle().shutdown(Duration::ZERO);
    for i in 0..16usize {
        let request = IngressRequest::new(GemmRequest::zeroed(pool[i % pool.len()]));
        assert!(ingress.submit(request).expect("submit").is_enqueued());
    }
    let (report, _) = ingress.finish().expect("finish");
    assert!(report.accounted(), "shed work is counted: {report:?}");
    assert_eq!(report.shed_shutdown, 16, "typed Shutdown sheds");
    assert_eq!(report.served, 0);

    // Generous deadline: the queue drains fully before the join.
    let sched = ShardedScheduler::new(vec![adaptive_shard(&pipe, "nano")], SchedConfig::default())
        .expect("scheduler builds");
    let ingress = Ingress::start(sched, IngressConfig::default());
    for i in 0..16usize {
        let request = IngressRequest::new(GemmRequest::zeroed(pool[i % pool.len()]));
        assert!(ingress.submit(request).expect("submit").is_enqueued());
    }
    let (report, _) = ingress.shutdown(Duration::from_secs(60)).expect("shutdown");
    assert!(report.accounted());
    assert_eq!(report.served, 16, "a generous drain serves everything");
    assert_eq!(report.shed_shutdown, 0);

    // Drop without finish: returns (thread joined), nothing leaks.
    let sched = ShardedScheduler::new(vec![adaptive_shard(&pipe, "nano")], SchedConfig::default())
        .expect("scheduler builds");
    let ingress = Ingress::start(sched, IngressConfig::default());
    for i in 0..8usize {
        let request = IngressRequest::new(GemmRequest::zeroed(pool[i % pool.len()]));
        ingress.submit(request).expect("submit");
    }
    drop(ingress);
}

/// Non-finite arm statistics (the NaN a div-by-zero mean can mint)
/// survive the serde_json round trip via the tagged encoding and are
/// then rejected *typed* at restore: the poisoned cluster is dropped,
/// the healthy one applies.
#[test]
fn nan_arm_state_roundtrips_and_is_dropped_typed_at_restore() {
    let pipe = pipeline();
    let online = pipe
        .online_selector(OnlineConfig::default())
        .expect("online selector builds");
    let shipped = online.shipped().to_vec();
    let healthy_arms: Vec<ArmState> = shipped
        .iter()
        .map(|_| ArmState {
            prior: 0.5,
            pulls: 4,
            completions: 4,
            sum_duration_s: 0.004,
            disabled: false,
        })
        .collect();
    let mut poisoned_arms = healthy_arms.clone();
    poisoned_arms[0].sum_duration_s = f64::NAN;

    let nano = DeviceSpec::amd_r9_nano();
    let mut snapshot = Snapshot::new(&nano);
    snapshot.online = Some(OnlineState {
        adaptive: true,
        generation: 1,
        shipped: shipped.clone(),
        ph_n: 0,
        ph_mean_x: 0.0,
        ph_m: 0.0,
        ph_min_m: 0.0,
        clusters: vec![
            ClusterSnapshot {
                key: [1, 1, 1],
                arms: healthy_arms,
            },
            ClusterSnapshot {
                key: [2, 2, 2],
                arms: poisoned_arms,
            },
        ],
    });

    // The NaN must survive the envelope round trip (satellite: tagged
    // non-finite encoding in the serde_json shim), not crash it.
    let json = snapshot.to_json().expect("NaN encodes");
    let back = Snapshot::from_json(&json).expect("NaN decodes");
    let back_online = back.online.as_ref().expect("online section survives");
    assert!(back_online.clusters[1].arms[0].sum_duration_s.is_nan());

    let outcome = back.restore_stack(&online, &nano);
    match &outcome {
        RestoreOutcome::Partial { dropped } => {
            assert!(
                dropped.iter().any(|d| d == "online:1-clusters"),
                "the poisoned cluster is dropped by name: {dropped:?}"
            );
        }
        other => panic!("expected Partial, got {other:?}"),
    }
    assert!(online.is_adaptive());
    assert_eq!(
        online.stats().clusters,
        1,
        "only the healthy cluster survives"
    );
}
