//! Integration tests for the SLO-aware ingress layer and the bounded
//! decision-cache mode behind it: LRU safety (a hot entry is never the
//! eviction victim), hit-rate monotonicity in capacity (the LRU stack
//! property the bounded mode was chosen for), the counting-Bloom
//! false-positive bound, 8-thread submit/dispatch with exact
//! served-plus-shed accounting, typed load-shedding under overload,
//! and the all-shards-poisoned meltdown path degrading to the
//! reference kernel with zero drops.

use autokernel::core::cache::{BoundedCacheConfig, CountingBloom, ShardedCache};
use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::sched::{
    DeviceShard, GemmRequest, RoutingPolicy, SchedConfig, ShardedScheduler,
};
use autokernel::core::{
    Ingress, IngressConfig, IngressRequest, PerformanceDataset, PipelineConfig, Priority,
    ShedReason, SubmitOutcome, TenantQuota, TuningPipeline,
};
use autokernel::gemm::GemmShape;
use autokernel::sim::{DeviceSpec, FaultPlan, Queue};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Bounded cache: LRU safety, monotonicity, Bloom bound
// ---------------------------------------------------------------------------

/// A deterministic pool of distinct shapes for cache traces.
fn pool_shape(i: usize) -> GemmShape {
    GemmShape::new(
        8 + (i % 97) * 3,
        8 + (i / 97 % 89) * 5,
        8 + (i / 8633 % 83) * 7,
    )
}

fn bounded(capacity: usize, shards: usize) -> ShardedCache {
    ShardedCache::bounded(
        shards,
        BoundedCacheConfig {
            capacity,
            bloom_counters: 1 << 14,
            bloom_hashes: 4,
            admit_threshold: 1,
        },
    )
}

/// An entry that is read on every round is never the LRU victim: each
/// read refreshes its stamp, so churn evicts the stalest entry, not
/// the one in active use.
#[test]
fn hot_entry_survives_cache_churn() {
    let cache = bounded(8, 1);
    let hot = GemmShape::new(512, 512, 512);
    cache.insert(hot, 7);
    for i in 0..1000 {
        assert_eq!(
            cache.get(&hot),
            Some(7),
            "round {i}: the entry being read must never be evicted"
        );
        cache.insert(pool_shape(i), i % 640);
        assert!(cache.footprint() <= 8, "capacity bound violated");
    }
    assert!(cache.evictions() > 900, "churn must actually evict");
}

/// Replay one trace through a small and a double-size cache: LRU's
/// stack (inclusion) property makes hits monotone in capacity. This is
/// exactly why the bounded mode evicts LRU rather than CLOCK, which
/// has no such guarantee.
fn replay_hits(trace: &[usize], capacity: usize) -> u64 {
    let cache = bounded(capacity, 4);
    let mut hits = 0u64;
    for &i in trace {
        let shape = pool_shape(i);
        if cache.get(&shape).is_some() {
            hits += 1;
        } else {
            cache.insert(shape, i % 640);
        }
        let bound = cache.capacity().unwrap_or(usize::MAX);
        assert!(cache.footprint() <= bound);
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hit_rate_is_monotone_in_capacity(
        trace in proptest::collection::vec(0usize..48, 64..512),
        capacity in 8usize..32,
    ) {
        let small = replay_hits(&trace, capacity);
        let large = replay_hits(&trace, capacity * 2);
        prop_assert!(
            large >= small,
            "doubling capacity lost hits: {large} < {small} (LRU inclusion violated)"
        );
    }
}

/// Querying shapes the filter has never seen reads a non-zero counter
/// with at most (a small multiple of) the classic Bloom bound.
#[test]
fn bloom_false_positive_rate_stays_under_bound() {
    let bloom = CountingBloom::new(1 << 14, 4);
    let inserted = 2000usize;
    for i in 0..inserted {
        bloom.observe(&pool_shape(i));
    }
    let probes = 4000usize;
    let mut false_positives = 0usize;
    for i in 0..probes {
        // Disjoint from the inserted range by construction.
        if bloom.estimate(&pool_shape(1_000_000 + i)) > 0 {
            false_positives += 1;
        }
    }
    let measured = false_positives as f64 / probes as f64;
    let bound = bloom.false_positive_bound(inserted as u64);
    assert!(
        measured <= bound * 2.0 + 0.01,
        "measured FPR {measured:.4} exceeds 2x theoretical bound {bound:.4}"
    );
}

/// 8 threads hammer one bounded cache: every hit must return the value
/// inserted for that exact shape (no torn or cross-shape reads), the
/// footprint must respect the bound throughout, and a shape read by
/// every thread on every iteration must stay resident virtually
/// always.
#[test]
fn bounded_cache_is_consistent_under_8_threads() {
    let cache = Arc::new(bounded(64, 8));
    let hot = GemmShape::new(512, 512, 512);
    cache.insert(hot, (hot.stable_hash() % 640) as usize);
    let threads = 8usize;
    let iterations = 10_000usize;
    let mut hot_hits = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let mut local_hot_hits = 0u64;
                    for i in 0..iterations {
                        if let Some(v) = cache.get(&hot) {
                            assert_eq!(v, (hot.stable_hash() % 640) as usize);
                            local_hot_hits += 1;
                        } else {
                            cache.insert(hot, (hot.stable_hash() % 640) as usize);
                        }
                        let shape = pool_shape(t * iterations + i);
                        let expected = (shape.stable_hash() % 640) as usize;
                        match cache.get(&shape) {
                            Some(v) => assert_eq!(v, expected, "hit returned a foreign value"),
                            None => {
                                cache.insert(shape, expected);
                            }
                        }
                        assert!(cache.footprint() <= 64);
                    }
                    local_hot_hits
                })
            })
            .collect();
        for handle in handles {
            hot_hits += handle.join().expect("cache thread panicked");
        }
    });
    let hot_reads = (threads * iterations) as u64;
    assert!(
        hot_hits as f64 / hot_reads as f64 > 0.95,
        "constantly-read entry was evicted too often: {hot_hits}/{hot_reads}"
    );
}

// ---------------------------------------------------------------------------
// Ingress end-to-end over a real fleet
// ---------------------------------------------------------------------------

const POOL: [(usize, usize, usize); 8] = [
    (64, 64, 64),
    (512, 512, 512),
    (196, 2304, 256),
    (49, 960, 160),
    (784, 1152, 128),
    (2, 2048, 1000),
    (1024, 1024, 1024),
    (32, 4096, 4096),
];

fn pipeline() -> &'static TuningPipeline {
    static PIPELINE: OnceLock<TuningPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let shapes: Vec<(GemmShape, String)> = POOL
            .iter()
            .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
            .collect();
        let ds = PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap();
        TuningPipeline::from_dataset(ds, PipelineConfig::default()).unwrap()
    })
}

fn request(i: usize) -> GemmRequest {
    let (m, k, n) = POOL[i % POOL.len()];
    GemmRequest::zeroed(GemmShape::new(m, k, n))
}

/// A fleet whose decision caches are capacity-bounded — the executor
/// mode the ingress layer is designed to sit in front of.
fn bounded_fleet(cache_capacity: usize) -> Vec<DeviceShard> {
    [
        (DeviceSpec::amd_r9_nano(), "nano"),
        (DeviceSpec::desktop_gpu(), "desktop-0"),
        (DeviceSpec::desktop_gpu(), "desktop-1"),
    ]
    .into_iter()
    .map(|(device, label)| {
        let queue = Queue::timing_only(Arc::new(device));
        let executor = pipeline()
            .device_bounded_executor(
                queue,
                ResilientPolicy::default(),
                BoundedCacheConfig {
                    capacity: cache_capacity,
                    admit_threshold: 1,
                    ..BoundedCacheConfig::default()
                },
            )
            .unwrap();
        DeviceShard::new(label, executor)
    })
    .collect()
}

fn scheduler(shards: Vec<DeviceShard>) -> ShardedScheduler {
    ShardedScheduler::new(
        shards,
        SchedConfig {
            policy: RoutingPolicy::LeastLoaded,
            queue_capacity: 64,
            batch_window: 8,
            seed: 11,
            parallel: true,
            ..SchedConfig::default()
        },
    )
    .unwrap()
}

/// 8 producer threads, three priorities, five tenants: everything is
/// served (the queue is large enough that nothing sheds), the
/// accounting identity holds exactly, per-class latency histograms
/// fill, and every shard's decision cache stays under its bound.
#[test]
fn eight_thread_ingress_serves_everything_with_exact_accounting() {
    let cache_capacity = 128usize;
    let ingress = Ingress::start(
        scheduler(bounded_fleet(cache_capacity)),
        IngressConfig {
            queue_capacity: 8192,
            dispatch_chunk: 256,
            tenant_quota: TenantQuota { max_queued: 8192 },
            ..IngressConfig::default()
        },
    );
    let threads = 8usize;
    let per_thread = 400usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let handle = ingress.handle();
            scope.spawn(move || {
                for i in 0..per_thread {
                    let index = t * per_thread + i;
                    let priority = match index % 3 {
                        0 => Priority::Interactive,
                        1 => Priority::Standard,
                        _ => Priority::Batch,
                    };
                    let outcome = handle
                        .submit(
                            IngressRequest::new(request(index))
                                .with_tenant((index % 5) as u32)
                                .with_priority(priority),
                        )
                        .expect("ingress is open");
                    assert!(
                        outcome.is_enqueued(),
                        "nothing sheds under a roomy queue: {outcome:?}"
                    );
                }
            });
        }
    });
    let (report, scheduler) = ingress.finish().expect("dispatcher drains cleanly");

    let total = (threads * per_thread) as u64;
    assert_eq!(report.submitted, total);
    assert_eq!(report.served, total);
    assert_eq!(report.shed_total(), 0);
    assert!(report.accounted(), "submitted == served + shed must hold");
    assert!(!report.fleet_degraded);
    assert!(report.waves > 0);
    for class in &report.classes {
        assert!(class.served > 0, "class {} starved", class.class);
        assert_eq!(class.submitted, class.served + class.shed);
        assert!(class.p99_ns >= class.p50_ns);
        assert!(class.p50_ns > 0.0);
    }
    assert_eq!(scheduler.telemetry().served, total);
    for i in 0..3 {
        let shard = scheduler.shard(i).expect("three shards");
        let cache = shard.executor().selector().cache();
        assert!(
            cache.footprint() <= cache_capacity,
            "shard {i} cache grew past its bound"
        );
    }
}

/// One tenant with a quota of 1 flooding from 8 threads: overflow is
/// shed with the typed `TenantQuota` reason, and the accounting
/// identity still holds exactly — load is never silently dropped.
#[test]
fn noisy_tenant_is_shed_with_typed_reason() {
    let ingress = Ingress::start(
        scheduler(bounded_fleet(128)),
        IngressConfig {
            queue_capacity: 4096,
            dispatch_chunk: 64,
            tenant_quota: TenantQuota { max_queued: 1 },
            ..IngressConfig::default()
        },
    );
    let threads = 8usize;
    let per_thread = 250usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let handle = ingress.handle();
            scope.spawn(move || {
                for i in 0..per_thread {
                    let outcome = handle
                        .submit(IngressRequest::new(request(t * per_thread + i)))
                        .expect("ingress is open");
                    if let SubmitOutcome::Shed(reason) = outcome {
                        assert_eq!(reason, ShedReason::TenantQuota);
                    }
                }
            });
        }
    });
    let (report, _) = ingress.finish().expect("dispatcher drains");
    assert!(report.accounted());
    assert!(
        report.shed_tenant_quota > 0,
        "8 concurrent producers against a quota of 1 must shed"
    );
    assert_eq!(report.shed_queue_full, 0, "quota sheds before the queue");
    assert!(report.served > 0, "the tenant still gets its quota served");
}

/// Batch-priority flood against a 4-slot queue: overload sheds batch
/// work early (headroom), everything shed is typed `QueueFull`, and
/// the identity holds.
#[test]
fn overload_sheds_batch_work_before_the_queue_fills() {
    let ingress = Ingress::start(
        scheduler(bounded_fleet(128)),
        IngressConfig {
            queue_capacity: 4,
            dispatch_chunk: 4,
            tenant_quota: TenantQuota {
                max_queued: 100_000,
            },
            batch_headroom: 0.5,
        },
    );
    let threads = 8usize;
    let per_thread = 250usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let handle = ingress.handle();
            scope.spawn(move || {
                for i in 0..per_thread {
                    let outcome = handle
                        .submit(
                            IngressRequest::new(request(t * per_thread + i))
                                .with_tenant(t as u32)
                                .with_priority(Priority::Batch),
                        )
                        .expect("ingress is open");
                    if let SubmitOutcome::Shed(reason) = outcome {
                        assert_eq!(reason, ShedReason::QueueFull);
                    }
                }
            });
        }
    });
    let (report, _) = ingress.finish().expect("dispatcher drains");
    assert!(report.accounted());
    assert!(
        report.shed_queue_full > 0,
        "a 4-slot queue under an 8-thread flood must shed batch work"
    );
    assert!(report.served > 0);
}

/// A deadline that is already expired at submit is shed immediately
/// and deterministically, with the typed reason.
#[test]
fn expired_deadline_sheds_at_submit() {
    let ingress = Ingress::start(scheduler(bounded_fleet(128)), IngressConfig::default());
    let mut doomed = IngressRequest::new(request(0));
    doomed = doomed.with_deadline_in(Duration::from_secs(0));
    let outcome = ingress.submit(doomed).expect("ingress is open");
    assert_eq!(outcome, SubmitOutcome::Shed(ShedReason::DeadlineExpired));
    let ok = ingress
        .submit(IngressRequest::new(request(1)))
        .expect("ingress is open");
    assert!(ok.is_enqueued());
    let (report, _) = ingress.finish().expect("dispatcher drains");
    assert_eq!(report.shed_deadline, 1);
    assert_eq!(report.served, 1);
    assert!(report.accounted());
}

// ---------------------------------------------------------------------------
// All-shards-poisoned meltdown: degrade, never drop
// ---------------------------------------------------------------------------

fn poisoned_fleet() -> Vec<DeviceShard> {
    (0..2)
        .map(|i| {
            let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano())).with_fault_plan(
                Arc::new(FaultPlan::new(17 + i).doom_kernels_matching("gemm")),
            );
            let executor = pipeline()
                .device_executor(queue, ResilientPolicy::default())
                .unwrap();
            DeviceShard::new(format!("poisoned-{i}"), executor)
        })
        .collect()
}

/// Every shard melts down: the scheduler revives the most recently
/// condemned shard, degrades the stream onto its reference-kernel
/// rung, serves everything, and reports the degradation typed — no
/// panic, no spin, no drops.
#[test]
fn all_shards_poisoned_degrades_to_reference_with_zero_drops() {
    let mut sched = ShardedScheduler::new(
        poisoned_fleet(),
        SchedConfig {
            policy: RoutingPolicy::RoundRobin,
            meltdown_threshold: 2,
            batch_window: 1,
            ..SchedConfig::default()
        },
    )
    .unwrap();
    let stream: Vec<GemmRequest> = (0..40).map(request).collect();
    let report = sched.serve(&stream).unwrap();

    assert_eq!(report.served, 40, "degradation, not loss");
    assert_eq!(report.dropped, 0);
    assert!(
        report.fleet_degraded,
        "the typed degradation signal must be raised"
    );
    let reference: u64 = report.devices.iter().map(|d| d.reference_fallbacks).sum();
    assert!(reference > 0, "the work went through the reference rung");
    let per_device: u64 = report.devices.iter().map(|d| d.served).sum();
    assert_eq!(per_device, 40, "every request accounted for per device");
    assert!(
        sched.is_healthy(0) || sched.is_healthy(1),
        "exactly the revived shard stays live"
    );
}

/// The same meltdown through the full ingress path: the dispatcher's
/// report carries the degradation flag and the accounting identity
/// still closes at zero silent drops.
#[test]
fn ingress_over_poisoned_fleet_completes_and_reports_degradation() {
    let sched = ShardedScheduler::new(
        poisoned_fleet(),
        SchedConfig {
            policy: RoutingPolicy::RoundRobin,
            meltdown_threshold: 2,
            batch_window: 1,
            ..SchedConfig::default()
        },
    )
    .unwrap();
    let ingress = Ingress::start(sched, IngressConfig::default());
    for i in 0..30 {
        let outcome = ingress
            .submit(IngressRequest::new(request(i)))
            .expect("ingress is open");
        assert!(outcome.is_enqueued());
    }
    let (report, _) = ingress.finish().expect("dispatcher survives the meltdown");
    assert_eq!(report.submitted, 30);
    assert_eq!(report.served, 30);
    assert!(report.accounted());
    assert!(report.fleet_degraded, "degradation must be surfaced");
}
