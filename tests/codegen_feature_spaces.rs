//! Deployment codegen must be faithful in *both* feature spaces: the
//! compiled nested-`if` tree and the emitted source embed either the raw
//! sizes or the standardisation constants, and each must agree with its
//! estimator everywhere.

use autokernel::core::codegen::{emit_rust_source, CompiledTree};
use autokernel::core::select::{FeatureSpace, Selector};
use autokernel::core::{PerformanceDataset, PruneMethod};
use autokernel::gemm::GemmShape;
use autokernel::sim::DeviceSpec;

fn dataset() -> PerformanceDataset {
    let shapes: Vec<(GemmShape, String)> = [
        (64, 64, 64),
        (512, 512, 512),
        (1, 4096, 1000),
        (12544, 27, 64),
        (196, 2304, 256),
        (3136, 144, 24),
        (49, 960, 160),
        (784, 1152, 128),
        (32, 4096, 4096),
        (2, 2048, 1000),
        (6272, 576, 128),
        (1024, 1024, 1024),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
    .collect();
    PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
}

fn probe_grid() -> Vec<GemmShape> {
    let mut shapes = Vec::new();
    for m in [1usize, 5, 100, 3000, 80000] {
        for k in [1usize, 27, 1000, 9216] {
            for n in [1usize, 64, 1000] {
                shapes.push(GemmShape::new(m, k, n));
            }
        }
    }
    shapes
}

#[test]
fn compiled_tree_faithful_in_both_feature_spaces() {
    let ds = dataset();
    let train: Vec<usize> = (0..ds.n_shapes()).collect();
    let configs = PruneMethod::DecisionTree.select(&ds, &train, 5, 3).unwrap();
    for space in [FeatureSpace::RawSizes, FeatureSpace::ScaledLog] {
        let sel = Selector::train_in_space(
            autokernel::core::SelectorKind::DecisionTree,
            &ds,
            &train,
            &configs,
            3,
            space,
        )
        .unwrap();
        let compiled = CompiledTree::from_selector(&sel).unwrap();
        for shape in probe_grid() {
            assert_eq!(
                compiled.select(&shape),
                sel.select_shape(&shape).unwrap(),
                "{space:?} divergence on {shape}"
            );
        }
        // The emitted source reflects the space: log2 appears only for
        // the scaled variant.
        let src = emit_rust_source(&compiled, &configs);
        match space {
            FeatureSpace::RawSizes => assert!(!src.contains("log2")),
            FeatureSpace::ScaledLog => assert!(src.contains("log2")),
        }
    }
}

#[test]
fn persisted_tree_stays_faithful_after_reload() {
    let ds = dataset();
    let train: Vec<usize> = (0..ds.n_shapes()).collect();
    let configs = PruneMethod::KMeans.select(&ds, &train, 4, 9).unwrap();
    let sel = Selector::train(
        autokernel::core::SelectorKind::DecisionTree,
        &ds,
        &train,
        &configs,
        9,
    )
    .unwrap();
    let compiled = CompiledTree::from_selector(&sel).unwrap();
    let reloaded = CompiledTree::from_json(&compiled.to_json()).unwrap();
    for shape in probe_grid() {
        assert_eq!(reloaded.select(&shape), sel.select_shape(&shape).unwrap());
    }
}
