//! Objective functions for the search strategies: map a configuration
//! to a runtime, counting evaluations (the budget currency of
//! auto-tuning).

use crate::TunerError;
use autokernel_gemm::{model, GemmShape, KernelConfig};
use autokernel_sycl_sim::{DeviceSpec, Queue};
use std::cell::RefCell;
use std::sync::Arc;

/// An evaluation-counting oracle over the configuration space.
///
/// Lower is better (runtimes). Implementations must be deterministic:
/// re-evaluating a configuration returns the same value (real tuners
/// cache for this reason; so do we).
pub trait Objective {
    /// Evaluate one configuration (counted).
    fn evaluate(&self, config: &KernelConfig) -> f64;
    /// Evaluations performed so far.
    fn evaluations(&self) -> usize;
}

/// Simulated-runtime objective for one GEMM shape on one device, with
/// memoisation (repeat evaluations are free, as in a caching tuner).
pub struct GemmObjective {
    queue: Queue,
    device: Arc<DeviceSpec>,
    shape: GemmShape,
    cache: RefCell<Vec<Option<f64>>>,
    evals: RefCell<usize>,
}

impl GemmObjective {
    /// Create an objective for `shape` on `device`.
    pub fn new(device: &DeviceSpec, shape: GemmShape) -> Self {
        let device = Arc::new(device.clone());
        GemmObjective {
            queue: Queue::timing_only(device.clone()),
            device,
            shape,
            cache: RefCell::new(vec![None; KernelConfig::count()]),
            evals: RefCell::new(0),
        }
    }

    /// The true optimum (for scoring searches), found by brute force
    /// *without* touching the evaluation counter.
    pub fn brute_force_best(&self) -> Result<(KernelConfig, f64), TunerError> {
        self.best_among(&KernelConfig::all())
    }

    /// The cheapest configuration among `candidates`, priced without
    /// touching the evaluation counter. NaN prices sort last under
    /// `total_cmp`, so a poisoned candidate can never win the minimum;
    /// an empty candidate set is a typed error, not a panic.
    pub fn best_among(
        &self,
        candidates: &[KernelConfig],
    ) -> Result<(KernelConfig, f64), TunerError> {
        candidates
            .iter()
            .map(|c| (*c, self.price(c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or(TunerError::EmptySpace)
    }

    fn price(&self, config: &KernelConfig) -> f64 {
        let range = model::launch_range(config, &self.shape).expect("launchable");
        let profile = model::profile(config, &self.shape, &self.device);
        self.queue
            .price(&profile, &range, model::noise_seed(config, &self.shape))
            .map(|(_, duration)| duration)
            // Unlaunchable on this device: infinitely bad, so no search
            // strategy can prefer it.
            .unwrap_or(f64::INFINITY)
    }

    /// The shape being tuned.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }
}

impl Objective for GemmObjective {
    fn evaluate(&self, config: &KernelConfig) -> f64 {
        let idx = config.index();
        if let Some(t) = self.cache.borrow()[idx] {
            return t;
        }
        *self.evals.borrow_mut() += 1;
        let t = self.price(config);
        self.cache.borrow_mut()[idx] = Some(t);
        t
    }

    fn evaluations(&self) -> usize {
        *self.evals.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluations_are_counted_and_cached() {
        let obj = GemmObjective::new(&DeviceSpec::amd_r9_nano(), GemmShape::new(64, 64, 64));
        let c = KernelConfig::from_index(42).unwrap();
        let t1 = obj.evaluate(&c);
        let t2 = obj.evaluate(&c);
        assert_eq!(t1, t2);
        assert_eq!(obj.evaluations(), 1, "cache hit must not count");
        obj.evaluate(&KernelConfig::from_index(43).unwrap());
        assert_eq!(obj.evaluations(), 2);
    }

    #[test]
    fn brute_force_matches_exhaustive_min() {
        let obj = GemmObjective::new(&DeviceSpec::amd_r9_nano(), GemmShape::new(196, 256, 128));
        let (best_cfg, best_t) = obj.brute_force_best().unwrap();
        for c in KernelConfig::all() {
            assert!(
                obj.evaluate(&c) >= best_t - 1e-18,
                "config {c} beats 'best' {best_cfg}"
            );
        }
        assert_eq!(obj.evaluate(&best_cfg), best_t);
    }

    #[test]
    fn brute_force_does_not_consume_budget() {
        let obj = GemmObjective::new(&DeviceSpec::amd_r9_nano(), GemmShape::new(32, 32, 32));
        let _ = obj.brute_force_best().unwrap();
        assert_eq!(obj.evaluations(), 0);
    }

    #[test]
    fn empty_candidate_set_is_a_typed_error_not_a_panic() {
        let obj = GemmObjective::new(&DeviceSpec::amd_r9_nano(), GemmShape::new(32, 32, 32));
        assert_eq!(obj.best_among(&[]), Err(crate::TunerError::EmptySpace));
    }
}
