//! The search strategies: random search, hill climbing, basin hopping
//! and a (μ+λ) evolutionary algorithm.

use crate::objective::Objective;
use crate::space;
use autokernel_gemm::config::{TILE_SIZES, WORK_GROUPS};
use autokernel_gemm::KernelConfig;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Best configuration found.
    pub best: KernelConfig,
    /// Its objective value (simulated seconds).
    pub best_value: f64,
    /// Objective evaluations consumed.
    pub evaluations: usize,
    /// `(evaluations, best_so_far)` checkpoints for convergence plots.
    pub trajectory: Vec<(usize, f64)>,
}

/// A tuning strategy: spend at most `budget` objective evaluations.
///
/// ```
/// use autokernel_tuner::{GemmObjective, HillClimbing, SearchStrategy, Objective};
/// use autokernel_gemm::GemmShape;
/// use autokernel_sycl_sim::DeviceSpec;
///
/// let obj = GemmObjective::new(&DeviceSpec::amd_r9_nano(), GemmShape::new(784, 1152, 128));
/// let result = HillClimbing.tune(&obj, 100, 7);
/// assert!(result.evaluations <= 100);
/// // The search gets close to the brute-force optimum at a sixth of its cost.
/// let (_, optimum) = obj.brute_force_best().expect("non-empty space");
/// assert!(result.best_value <= optimum * 1.5);
/// ```
pub trait SearchStrategy {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Run the search.
    fn tune(&self, objective: &dyn Objective, budget: usize, seed: u64) -> TuningResult;
}

/// Track the incumbent and trajectory while evaluating.
struct Tracker<'a> {
    objective: &'a dyn Objective,
    budget: usize,
    /// Total eval() calls including cache hits. Caps the search at
    /// 50x the budget so a strategy that keeps revisiting cached
    /// configurations (e.g. a converged population) still terminates.
    calls: usize,
    best: Option<(KernelConfig, f64)>,
    trajectory: Vec<(usize, f64)>,
}

impl<'a> Tracker<'a> {
    fn new(objective: &'a dyn Objective, budget: usize) -> Self {
        Tracker {
            objective,
            budget,
            calls: 0,
            best: None,
            trajectory: Vec::new(),
        }
    }

    fn exhausted(&self) -> bool {
        self.objective.evaluations() >= self.budget || self.calls >= self.budget.saturating_mul(50)
    }

    /// Evaluate (if budget remains) and update the incumbent.
    /// Returns the value, or `None` when the budget is exhausted.
    fn eval(&mut self, config: &KernelConfig) -> Option<f64> {
        if self.exhausted() {
            return None;
        }
        self.calls += 1;
        let v = self.objective.evaluate(config);
        let improved = self.best.as_ref().is_none_or(|(_, b)| v < *b);
        if improved {
            self.best = Some((*config, v));
            self.trajectory.push((self.objective.evaluations(), v));
        }
        Some(v)
    }

    fn finish(self) -> TuningResult {
        let (best, best_value) = self.best.expect("at least one evaluation");
        TuningResult {
            best,
            best_value,
            evaluations: self.objective.evaluations(),
            trajectory: self.trajectory,
        }
    }
}

/// Uniform random sampling — the baseline every smarter method must beat.
pub struct RandomSearch;

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random search"
    }

    fn tune(&self, objective: &dyn Objective, budget: usize, seed: u64) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tracker::new(objective, budget);
        while t.eval(&space::random_config(&mut rng)).is_some() {}
        t.finish()
    }
}

/// Greedy first-improvement hill climbing with random restarts.
pub struct HillClimbing;

impl SearchStrategy for HillClimbing {
    fn name(&self) -> &'static str {
        "hill climbing"
    }

    fn tune(&self, objective: &dyn Objective, budget: usize, seed: u64) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tracker::new(objective, budget);
        'restarts: while !t.exhausted() {
            let mut current = space::random_config(&mut rng);
            let Some(mut current_v) = t.eval(&current) else {
                break;
            };
            loop {
                let mut improved = false;
                for n in space::neighbours(&current) {
                    match t.eval(&n) {
                        None => break 'restarts,
                        Some(v) if v < current_v => {
                            current = n;
                            current_v = v;
                            improved = true;
                            break; // First improvement: move immediately.
                        }
                        Some(_) => {}
                    }
                }
                if !improved {
                    continue 'restarts; // Local optimum: restart.
                }
            }
        }
        t.finish()
    }
}

/// Basin hopping: descend to a local optimum, jump by a strong
/// perturbation, accept the new basin by a Metropolis rule.
pub struct BasinHopping {
    /// Genes resampled per jump.
    pub jump_strength: usize,
    /// Metropolis temperature relative to the current value.
    pub temperature: f64,
}

impl Default for BasinHopping {
    fn default() -> Self {
        BasinHopping {
            jump_strength: 2,
            temperature: 0.15,
        }
    }
}

impl SearchStrategy for BasinHopping {
    fn name(&self) -> &'static str {
        "basin hopping"
    }

    fn tune(&self, objective: &dyn Objective, budget: usize, seed: u64) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tracker::new(objective, budget);

        // Descend from `start` to a local optimum; None when budget dies.
        fn descend(
            t: &mut Tracker<'_>,
            start: KernelConfig,
            start_v: f64,
        ) -> Option<(KernelConfig, f64)> {
            let (mut cur, mut cur_v) = (start, start_v);
            loop {
                let mut improved = false;
                for n in space::neighbours(&cur) {
                    match t.eval(&n) {
                        None => return None,
                        Some(v) if v < cur_v => {
                            cur = n;
                            cur_v = v;
                            improved = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if !improved {
                    return Some((cur, cur_v));
                }
            }
        }

        let start = space::random_config(&mut rng);
        let Some(start_v) = t.eval(&start) else {
            return t.finish();
        };
        let Some((mut basin, mut basin_v)) = descend(&mut t, start, start_v) else {
            return t.finish();
        };

        while !t.exhausted() {
            let jump = space::perturb(&basin, self.jump_strength, &mut rng);
            let Some(jump_v) = t.eval(&jump) else { break };
            let Some((cand, cand_v)) = descend(&mut t, jump, jump_v) else {
                break;
            };
            // Metropolis acceptance between basin minima.
            let accept = cand_v < basin_v || {
                let delta = (cand_v - basin_v) / (self.temperature * basin_v).max(1e-30);
                rng.random::<f64>() < (-delta).exp()
            };
            if accept {
                basin = cand;
                basin_v = cand_v;
            }
        }
        t.finish()
    }
}

/// (μ+λ) evolutionary algorithm with tournament selection, uniform
/// crossover and per-gene mutation.
pub struct Evolutionary {
    /// Parent population size (μ).
    pub population: usize,
    /// Offspring per generation (λ).
    pub offspring: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
}

impl Default for Evolutionary {
    fn default() -> Self {
        Evolutionary {
            population: 10,
            offspring: 10,
            mutation_rate: 0.2,
        }
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn tune(&self, objective: &dyn Objective, budget: usize, seed: u64) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tracker::new(objective, budget);

        // Initial population.
        let mut pop: Vec<(KernelConfig, f64)> = Vec::new();
        for _ in 0..self.population.max(2) {
            let c = space::random_config(&mut rng);
            match t.eval(&c) {
                Some(v) => pop.push((c, v)),
                None => break,
            }
        }
        if pop.is_empty() {
            // Budget was zero-ish; evaluate one config regardless of
            // budget so a result exists.
            let c = space::random_config(&mut rng);
            let v = objective.evaluate(&c);
            return TuningResult {
                best: c,
                best_value: v,
                evaluations: objective.evaluations(),
                trajectory: vec![(objective.evaluations(), v)],
            };
        }

        while !t.exhausted() {
            let mut children = Vec::with_capacity(self.offspring);
            for _ in 0..self.offspring.max(1) {
                // Tournament selection of two parents.
                let pick = |rng: &mut StdRng| {
                    let a = rng.random_range(0..pop.len());
                    let b = rng.random_range(0..pop.len());
                    if pop[a].1 <= pop[b].1 {
                        pop[a].0
                    } else {
                        pop[b].0
                    }
                };
                let pa = space::encode(&pick(&mut rng));
                let pb = space::encode(&pick(&mut rng));
                let mut child = space::crossover(&pa, &pb, &mut rng);
                // Mutation.
                let ranges = [
                    TILE_SIZES.len(),
                    TILE_SIZES.len(),
                    TILE_SIZES.len(),
                    WORK_GROUPS.len(),
                ];
                for (gene, range) in child.iter_mut().zip(ranges) {
                    if rng.random::<f64>() < self.mutation_rate {
                        *gene = rng.random_range(0..range);
                    }
                }
                let c = space::decode(&child);
                match t.eval(&c) {
                    Some(v) => children.push((c, v)),
                    None => break,
                }
            }
            if children.is_empty() {
                break;
            }
            // (μ+λ): keep the best μ of parents + offspring.
            pop.extend(children);
            pop.sort_by(|a, b| a.1.total_cmp(&b.1));
            pop.truncate(self.population.max(2));
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::GemmObjective;
    use autokernel_gemm::GemmShape;
    use autokernel_sycl_sim::DeviceSpec;

    fn objective() -> GemmObjective {
        GemmObjective::new(&DeviceSpec::amd_r9_nano(), GemmShape::new(784, 1152, 128))
    }

    fn all_strategies() -> Vec<Box<dyn SearchStrategy>> {
        vec![
            Box::new(RandomSearch),
            Box::new(HillClimbing),
            Box::new(BasinHopping::default()),
            Box::new(Evolutionary::default()),
        ]
    }

    #[test]
    fn strategies_respect_the_budget() {
        for s in all_strategies() {
            let obj = objective();
            let r = s.tune(&obj, 50, 3);
            assert!(r.evaluations <= 50, "{} used {}", s.name(), r.evaluations);
            assert!(r.best_value > 0.0);
        }
    }

    #[test]
    fn strategies_are_deterministic() {
        for s in all_strategies() {
            let a = s.tune(&objective(), 80, 7);
            let b = s.tune(&objective(), 80, 7);
            assert_eq!(a.best, b.best, "{} nondeterministic", s.name());
            assert_eq!(a.best_value, b.best_value);
        }
    }

    #[test]
    fn trajectories_are_monotone_improvements() {
        for s in all_strategies() {
            let r = s.tune(&objective(), 120, 1);
            assert!(!r.trajectory.is_empty());
            for w in r.trajectory.windows(2) {
                assert!(w[1].1 < w[0].1, "{} trajectory not improving", s.name());
                assert!(w[1].0 > w[0].0);
            }
            // Last trajectory point is the final best.
            assert_eq!(r.trajectory.last().unwrap().1, r.best_value);
        }
    }

    #[test]
    fn smart_strategies_find_near_optimum_within_a_quarter_of_the_space() {
        let obj = objective();
        let (_, optimum) = obj.brute_force_best().unwrap();
        for s in all_strategies() {
            let obj = objective();
            let r = s.tune(&obj, 160, 5);
            let gap = r.best_value / optimum;
            assert!(
                gap < 1.30,
                "{} only reached {:.3}x the optimum in 160 evals",
                s.name(),
                gap
            );
        }
    }

    #[test]
    fn hill_climbing_beats_random_at_small_budgets_on_average() {
        // Averaged over seeds to avoid flakiness from lucky samples.
        let mut hc_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..10 {
            let obj = objective();
            hc_total += HillClimbing.tune(&obj, 60, seed).best_value;
            let obj = objective();
            rs_total += RandomSearch.tune(&obj, 60, seed).best_value;
        }
        assert!(
            hc_total < rs_total * 1.05,
            "hill climbing ({hc_total}) should be competitive with random ({rs_total})"
        );
    }
}
