//! Neighbourhood structure of the configuration space: which
//! configurations count as "one step away" for local search, and how
//! configurations are encoded as genomes for the evolutionary strategy.

use autokernel_gemm::config::{KernelConfig, TILE_SIZES, WORK_GROUPS};
use rand::{rngs::StdRng, RngExt};

/// A configuration as a 4-gene genome:
/// `(tile_rows idx, tile_cols idx, acc idx, work-group idx)`.
pub type Genome = [usize; 4];

/// Encode a configuration.
pub fn encode(config: &KernelConfig) -> Genome {
    let pos = |v: usize| TILE_SIZES.iter().position(|&t| t == v).expect("valid tile");
    let wg = WORK_GROUPS
        .iter()
        .position(|&w| w == config.work_group)
        .expect("valid wg");
    [
        pos(config.tile_rows),
        pos(config.tile_cols),
        pos(config.acc_depth),
        wg,
    ]
}

/// Decode a genome (indices are taken modulo their range, so any
/// 4-tuple decodes to a valid configuration).
pub fn decode(genome: &Genome) -> KernelConfig {
    KernelConfig {
        tile_rows: TILE_SIZES[genome[0] % TILE_SIZES.len()],
        tile_cols: TILE_SIZES[genome[1] % TILE_SIZES.len()],
        acc_depth: TILE_SIZES[genome[2] % TILE_SIZES.len()],
        work_group: WORK_GROUPS[genome[3] % WORK_GROUPS.len()],
    }
}

/// All configurations that differ from `config` in exactly one
/// parameter by one ordinal step (±1 in the sorted value list), the
/// standard Kernel Tuner neighbourhood.
pub fn neighbours(config: &KernelConfig) -> Vec<KernelConfig> {
    let g = encode(config);
    let ranges = [
        TILE_SIZES.len(),
        TILE_SIZES.len(),
        TILE_SIZES.len(),
        WORK_GROUPS.len(),
    ];
    let mut out = Vec::new();
    for gene in 0..4 {
        for delta in [-1isize, 1] {
            let v = g[gene] as isize + delta;
            if v >= 0 && (v as usize) < ranges[gene] {
                let mut n = g;
                n[gene] = v as usize;
                out.push(decode(&n));
            }
        }
    }
    out
}

/// A uniformly random configuration.
pub fn random_config(rng: &mut StdRng) -> KernelConfig {
    KernelConfig::from_index(rng.random_range(0..KernelConfig::count())).expect("in range")
}

/// Perturb `config` by resampling `strength` genes uniformly — the
/// basin-hopping jump move.
pub fn perturb(config: &KernelConfig, strength: usize, rng: &mut StdRng) -> KernelConfig {
    let mut g = encode(config);
    let ranges = [
        TILE_SIZES.len(),
        TILE_SIZES.len(),
        TILE_SIZES.len(),
        WORK_GROUPS.len(),
    ];
    for _ in 0..strength.max(1) {
        let gene = rng.random_range(0..4usize);
        g[gene] = rng.random_range(0..ranges[gene]);
    }
    decode(&g)
}

/// Uniform crossover of two genomes.
pub fn crossover(a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
    let mut child = *a;
    for (c, &bv) in child.iter_mut().zip(b) {
        if rng.random::<bool>() {
            *c = bv;
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encode_decode_roundtrip_for_all_configs() {
        for c in KernelConfig::all() {
            assert_eq!(decode(&encode(&c)), c);
        }
    }

    #[test]
    fn neighbours_differ_in_one_parameter() {
        let c = KernelConfig::from_index(316).unwrap();
        let ns = neighbours(&c);
        assert!(!ns.is_empty());
        for n in &ns {
            let g1 = encode(&c);
            let g2 = encode(n);
            let diffs = g1.iter().zip(&g2).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1, "{c} -> {n}");
        }
    }

    #[test]
    fn corner_configs_have_fewer_neighbours() {
        // First config: all genes at 0 => only +1 moves, 4 neighbours.
        let first = KernelConfig::from_index(0).unwrap();
        assert_eq!(neighbours(&first).len(), 4);
        // An interior config has the full 8.
        let interior =
            KernelConfig::new(2, 2, 2, autokernel_gemm::WorkGroup { rows: 8, cols: 16 }).unwrap();
        assert_eq!(neighbours(&interior).len(), 8);
    }

    #[test]
    fn perturb_and_random_stay_in_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = KernelConfig::from_index(0).unwrap();
        for _ in 0..200 {
            c = perturb(&c, 2, &mut rng);
            assert!(c.index() < KernelConfig::count());
        }
        for _ in 0..50 {
            assert!(random_config(&mut rng).index() < KernelConfig::count());
        }
    }

    #[test]
    fn crossover_takes_genes_from_parents() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = [0usize, 0, 0, 0];
        let b = [3usize, 3, 3, 9];
        for _ in 0..20 {
            let child = crossover(&a, &b, &mut rng);
            for (i, &g) in child.iter().enumerate() {
                assert!(g == a[i] || g == b[i]);
            }
        }
    }
}
