//! # autokernel-tuner
//!
//! Search strategies over the kernel-configuration space.
//!
//! The paper brute-forces its 640-point space but notes that "this is
//! not feasible for more general kernels that have significantly more
//! parameters ... more complex tuning algorithms have been proposed,
//! such as basin hopping and evolutionary algorithms" (citing Kernel
//! Tuner). This crate implements those optimisers against the same
//! simulated device, so their sample-efficiency can be measured against
//! the brute-force ground truth:
//!
//! - [`strategies::RandomSearch`] — uniform sampling baseline,
//! - [`strategies::HillClimbing`] — greedy neighbourhood descent with
//!   random restarts,
//! - [`strategies::BasinHopping`] — perturb-then-descend (Metropolis
//!   acceptance between basins),
//! - [`strategies::Evolutionary`] — a (μ+λ) genetic algorithm with
//!   uniform crossover and per-gene mutation.
//!
//! All strategies share the [`objective::Objective`] abstraction (an
//! evaluation-counting oracle) and the [`space`] neighbourhood
//! structure, and are deterministic given a seed.

#![warn(missing_docs)]

pub mod objective;
pub mod space;
pub mod strategies;

/// Typed errors from the tuning layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunerError {
    /// A best-of search was asked to rank an empty candidate set.
    EmptySpace,
}

impl std::fmt::Display for TunerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerError::EmptySpace => write!(f, "candidate set is empty: nothing to rank"),
        }
    }
}

impl std::error::Error for TunerError {}

pub use objective::{GemmObjective, Objective};
pub use strategies::{
    BasinHopping, Evolutionary, HillClimbing, RandomSearch, SearchStrategy, TuningResult,
};
