//! Criterion micro-benchmarks of the real (host-executed) GEMM kernels:
//! the tiled kernel family vs. the reference, across tile shapes.
//!
//! These wall-clock numbers are about the *implementation* (the CPU
//! kernels backing the simulator), not the paper's GPU results — they
//! confirm the kernel family is a real, runnable GEMM, and show the
//! same tiling trade-offs in miniature.

use autokernel_gemm::config::{KernelConfig, WorkGroup};
use autokernel_gemm::reference::{parallel_reference_gemm, test_matrices};
use autokernel_gemm::{GemmShape, TiledGemmKernel};
use autokernel_sycl_sim::{Buffer, DeviceType, Platform, Queue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let shape = GemmShape::new(256, 256, 256);
    let (a, b) = test_matrices(shape, 99);
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();

    let mut group = c.benchmark_group("gemm_256");
    group.throughput(Throughput::Elements(shape.flops() as u64));

    group.bench_function("reference_parallel", |bench| {
        let mut out = vec![0.0f32; shape.m * shape.n];
        bench.iter(|| {
            parallel_reference_gemm(shape, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        });
    });

    for (tr, tc, ad) in [
        (1usize, 1usize, 1usize),
        (2, 2, 2),
        (4, 4, 4),
        (8, 8, 8),
        (4, 8, 2),
    ] {
        let cfg = KernelConfig::new(tr, tc, ad, WorkGroup { rows: 16, cols: 16 }).unwrap();
        let ka = Buffer::from_vec(a.clone());
        let kb = Buffer::from_vec(b.clone());
        let kc = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel = TiledGemmKernel::new(cfg, shape, ka, kb, kc).unwrap();
        let queue = Queue::new(device.clone());
        let range = kernel.preferred_range().unwrap();
        group.bench_with_input(
            BenchmarkId::new("tiled", format!("T{tr}x{tc}A{ad}")),
            &cfg,
            |bench, _| {
                bench.iter(|| {
                    black_box(queue.submit(&kernel, range).unwrap());
                });
            },
        );
    }
    group.finish();
}

fn bench_pricing(c: &mut Criterion) {
    // How fast the timing-only path prices a launch — this is what the
    // 170x640 dataset collection is made of.
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    let queue = Queue::timing_only(device);
    let shape = GemmShape::new(784, 1152, 128);
    let configs = KernelConfig::all();

    c.bench_function("price_full_config_space_one_shape", |bench| {
        bench.iter(|| {
            let mut total = 0.0f64;
            for cfg in &configs {
                let range = autokernel_gemm::model::launch_range(cfg, &shape).unwrap();
                let profile = autokernel_gemm::model::profile(cfg, &shape, queue.device());
                let (_, d) = queue
                    .price(
                        &profile,
                        &range,
                        autokernel_gemm::model::noise_seed(cfg, &shape),
                    )
                    .expect("every config is launchable on the desktop GPU");
                total += d;
            }
            black_box(total)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels, bench_pricing
);
criterion_main!(benches);
