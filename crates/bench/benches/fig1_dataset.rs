//! Figure 1: relative performance of every configuration on every
//! matrix size, configurations sorted by increasing mean performance.
//!
//! Paper observations reproduced here: the far-left configurations never
//! reach 30 % of optimal on *any* size; the far-right perform well on
//! average but still poorly on some sizes; some mid-pack configurations
//! are near-optimal on a few specific sizes.

use autokernel_bench::{banner, paper_dataset, print_table, save_result};
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Row {
    rank: usize,
    config: String,
    mean: f64,
    min: f64,
    max: f64,
    p90: f64,
}

fn main() {
    banner(
        "Figure 1 — dataset overview (170 shapes x 640 configurations)",
        "left tail never above 30% of optimal; best-mean configs still poor on some sizes",
    );
    let ds = paper_dataset();
    let norm = ds.normalized_matrix();
    let means = ds.mean_performance();

    let mut order: Vec<usize> = (0..ds.n_configs()).collect();
    order.sort_by(|&a, &b| means[a].partial_cmp(&means[b]).unwrap());

    let stats = |j: usize| -> (f64, f64, f64) {
        let mut col: Vec<f64> = (0..ds.n_shapes()).map(|i| norm[(i, j)]).collect();
        col.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (col[0], col[col.len() - 1], col[(col.len() * 9) / 10])
    };

    // Print every 32nd configuration of the mean-sorted axis (the figure's
    // x-axis sampled), plus the extremes.
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (rank, &j) in order.iter().enumerate() {
        let (min, max, p90) = stats(j);
        json.push(Fig1Row {
            rank,
            config: autokernel_gemm::KernelConfig::from_index(j)
                .unwrap()
                .to_string(),
            mean: means[j],
            min,
            max,
            p90,
        });
        if rank % 32 == 0 || rank == ds.n_configs() - 1 {
            rows.push(vec![
                rank.to_string(),
                autokernel_gemm::KernelConfig::from_index(j)
                    .unwrap()
                    .to_string(),
                format!("{:.3}", means[j]),
                format!("{min:.3}"),
                format!("{max:.3}"),
            ]);
        }
    }
    print_table(
        &[
            "rank".into(),
            "config".into(),
            "mean".into(),
            "min".into(),
            "max".into(),
        ],
        &rows,
    );

    // The paper's headline structural observations.
    let left_tail_max: f64 = order[..64].iter().map(|&j| stats(j).1).fold(0.0, f64::max);
    let never30 = (0..ds.n_configs()).filter(|&j| stats(j).1 < 0.30).count();
    let best_mean_cfg = *order.last().unwrap();
    let (best_min, _, _) = stats(best_mean_cfg);
    println!("\nleft-tail (64 worst-mean configs) best-ever relative perf: {left_tail_max:.3}");
    println!("configurations never reaching 30% on any size:             {never30}");
    println!("best-mean config's worst-case relative perf:               {best_min:.3}");
    println!(
        "  -> even the best-on-average configuration is poor on some sizes: {}",
        best_min < 0.7
    );

    save_result("fig1_dataset", &json);
}
