//! Ablation: sensitivity of Figure 4 to the train/test split.
//!
//! The paper flags its own weakness — a 170-sample dataset makes the
//! models "fail to generalise". This ablation quantifies that: the
//! Figure 4 protocol is repeated over ten split seeds and the spread of
//! the achievable score is reported per method and budget.

use autokernel_bench::{banner, paper_dataset, print_table, save_result, MODEL_SEED};
use autokernel_core::evaluate::achievable_score;
use autokernel_core::PruneMethod;
use autokernel_mlkit::model_selection::train_test_split;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct SplitAblation {
    budgets: Vec<usize>,
    seeds: Vec<u64>,
    /// method -> budget -> (mean, std, min, max) over seeds.
    stats: BTreeMap<String, Vec<(f64, f64, f64, f64)>>,
}

fn main() {
    banner(
        "Ablation — train/test split sensitivity of Figure 4",
        "small dataset => visible variance across splits (the paper's stated weakness)",
    );
    let ds = paper_dataset();
    let budgets = vec![4usize, 6, 8, 15];
    let seeds: Vec<u64> = (0..10).collect();

    let mut stats: BTreeMap<String, Vec<(f64, f64, f64, f64)>> = BTreeMap::new();
    for method in PruneMethod::all() {
        let mut per_budget = Vec::new();
        for &budget in &budgets {
            let scores: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let split = train_test_split(ds.n_shapes(), 0.2, seed);
                    let configs = method
                        .select(&ds, &split.train, budget, MODEL_SEED)
                        .expect("pruning succeeds");
                    achievable_score(&ds, &split.test, &configs)
                })
                .collect();
            let mean = scores.iter().sum::<f64>() / scores.len() as f64;
            let var =
                scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / scores.len() as f64;
            let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = scores.iter().cloned().fold(0.0f64, f64::max);
            per_budget.push((mean, var.sqrt(), min, max));
        }
        stats.insert(method.name().to_string(), per_budget);
    }

    for (bi, b) in budgets.iter().enumerate() {
        println!("\nbudget {b}:");
        let rows: Vec<Vec<String>> = stats
            .iter()
            .map(|(name, s)| {
                let (mean, std, min, max) = s[bi];
                vec![
                    name.clone(),
                    format!("{mean:.4}"),
                    format!("{std:.4}"),
                    format!("{min:.4}"),
                    format!("{max:.4}"),
                ]
            })
            .collect();
        print_table(
            &[
                "method".into(),
                "mean".into(),
                "std".into(),
                "min".into(),
                "max".into(),
            ],
            &rows,
        );
    }

    // Ordering stability: how often the decision tree lands within one
    // point of the best method at budget >= 6 across splits.
    let mut tree_near_best = 0;
    let mut cases = 0;
    for &seed in &seeds {
        let split = train_test_split(ds.n_shapes(), 0.2, seed);
        for &budget in &[6usize, 8, 15] {
            let mut best = 0.0f64;
            let mut tree = 0.0f64;
            for method in PruneMethod::all() {
                let configs = method
                    .select(&ds, &split.train, budget, MODEL_SEED)
                    .unwrap();
                let s = achievable_score(&ds, &split.test, &configs);
                best = best.max(s);
                if method == PruneMethod::DecisionTree {
                    tree = s;
                }
            }
            cases += 1;
            if tree >= best - 0.01 {
                tree_near_best += 1;
            }
        }
    }
    println!(
        "\ndecision tree within 1 point of the best method (budget>=6): {tree_near_best}/{cases} cases"
    );

    save_result(
        "ablation_split",
        &SplitAblation {
            budgets,
            seeds,
            stats,
        },
    );
}
