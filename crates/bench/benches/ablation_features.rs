//! Ablation: feature representation for the runtime classifiers.
//!
//! The paper feeds raw matrix sizes to scikit-learn with no scaling
//! (Table I). This ablation re-runs the Table I protocol with
//! standardised log₂ features, quantifying how much of the SVM/kNN
//! deficit is a preprocessing artefact rather than a modelling limit —
//! the engineering take-away for anyone deploying this pipeline.

use autokernel_bench::{
    banner, paper_dataset, print_table, save_result, standard_split, MODEL_SEED,
};
use autokernel_core::evaluate::selection_score;
use autokernel_core::select::{FeatureSpace, Selector};
use autokernel_core::{PruneMethod, SelectorKind};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Ablation {
    budget: usize,
    raw: BTreeMap<String, f64>,
    scaled_log: BTreeMap<String, f64>,
}

fn main() {
    banner(
        "Ablation — raw sizes (paper setup) vs standardised log features",
        "scale-sensitive classifiers (SVMs, kNN) should recover; trees stay unchanged",
    );
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let budget = 8usize;
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, budget, MODEL_SEED)
        .expect("pruning succeeds");

    let mut result = Ablation {
        budget,
        raw: BTreeMap::new(),
        scaled_log: BTreeMap::new(),
    };
    let mut rows = Vec::new();
    for kind in SelectorKind::all() {
        let mut scores = Vec::new();
        for space in [FeatureSpace::RawSizes, FeatureSpace::ScaledLog] {
            let sel =
                Selector::train_in_space(kind, &ds, &split.train, &configs, MODEL_SEED, space)
                    .expect("training succeeds");
            let chosen = sel
                .select_rows(&ds, &split.test)
                .expect("selection succeeds");
            scores.push(selection_score(&ds, &split.test, &chosen));
        }
        result.raw.insert(kind.name().into(), scores[0]);
        result.scaled_log.insert(kind.name().into(), scores[1]);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}", scores[0] * 100.0),
            format!("{:.2}", scores[1] * 100.0),
            format!("{:+.2}", (scores[1] - scores[0]) * 100.0),
        ]);
    }
    print_table(
        &[
            "classifier".into(),
            "raw (paper)".into(),
            "scaled log".into(),
            "delta".into(),
        ],
        &rows,
    );

    let rbf_gain = result.scaled_log["RadialSVM"] - result.raw["RadialSVM"];
    let tree_gain = (result.scaled_log["DecisionTree"] - result.raw["DecisionTree"]).abs();
    println!(
        "\nRBF SVM recovery from scaling: {:+.1} points",
        rbf_gain * 100.0
    );
    println!(
        "decision-tree change (should be ~0, trees are monotone-invariant): {:.1} points",
        tree_gain * 100.0
    );

    save_result("ablation_features", &result);
}
