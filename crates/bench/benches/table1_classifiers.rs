//! Table I: geometric-mean performance of six runtime classifiers,
//! selecting among decision-tree-pruned configuration sets of size
//! 5, 6, 8 and 15, as a percentage of the absolute optimum.
//!
//! Paper observations reproduced: ceilings of 92.99/94.98/95.37/96.61 %
//! for the four budgets; no classifier reaches its ceiling (the paper's
//! models stay below 89 %); the decision tree matches or beats the other
//! classifiers except at 15 configurations; the radial SVM collapses to
//! ~55 %.

use autokernel_bench::{
    banner, paper_dataset, print_table, save_result, standard_split, MODEL_SEED,
};
use autokernel_core::evaluate::{achievable_score, selection_score};
use autokernel_core::select::Selector;
use autokernel_core::{PruneMethod, SelectorKind};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Table1 {
    budgets: Vec<usize>,
    ceilings: Vec<f64>,
    /// classifier -> score per budget (fraction of absolute optimum).
    rows: BTreeMap<String, Vec<f64>>,
}

fn main() {
    banner(
        "Table I — classifier performance on decision-tree-pruned config sets",
        "ceilings 92.99/94.98/95.37/96.61%; no model reaches its ceiling; radial SVM ~55%",
    );
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let budgets = vec![5usize, 6, 8, 15];

    let mut ceilings = Vec::new();
    let mut config_sets = Vec::new();
    for &b in &budgets {
        let configs = PruneMethod::DecisionTree
            .select(&ds, &split.train, b, MODEL_SEED)
            .expect("pruning succeeds");
        ceilings.push(achievable_score(&ds, &split.test, &configs));
        config_sets.push(configs);
    }

    let mut rows: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for kind in SelectorKind::all() {
        let mut scores = Vec::new();
        for configs in &config_sets {
            let sel = Selector::train(kind, &ds, &split.train, configs, MODEL_SEED)
                .expect("training succeeds");
            let chosen = sel
                .select_rows(&ds, &split.test)
                .expect("selection succeeds");
            scores.push(selection_score(&ds, &split.test, &chosen));
        }
        rows.insert(kind.name().to_string(), scores);
    }

    let mut headers = vec!["classifier".to_string()];
    headers.extend(budgets.iter().map(|b| b.to_string()));
    let mut printable = vec![{
        let mut r = vec!["(ceiling)".to_string()];
        r.extend(ceilings.iter().map(|c| format!("{:.2}", c * 100.0)));
        r
    }];
    for kind in SelectorKind::all() {
        let mut r = vec![kind.name().to_string()];
        r.extend(
            rows[kind.name()]
                .iter()
                .map(|s| format!("{:.2}", s * 100.0)),
        );
        printable.push(r);
    }
    print_table(&headers, &printable);

    println!();
    let dt_avg: f64 = rows["DecisionTree"].iter().sum::<f64>() / budgets.len() as f64;
    let rbf_avg: f64 = rows["RadialSVM"].iter().sum::<f64>() / budgets.len() as f64;
    let knn3_avg: f64 = rows["3NearestNeighbors"].iter().sum::<f64>() / budgets.len() as f64;
    println!("decision-tree average:  {:.2}% of optimum", dt_avg * 100.0);
    println!(
        "radial-SVM average:     {:.2}% (paper: collapses to ~55%)",
        rbf_avg * 100.0
    );
    println!(
        "3-NN average:           {:.2}% (paper: trails the tree)",
        knn3_avg * 100.0
    );
    println!(
        "radial SVM is the worst classifier: {}",
        rows.iter().all(|(k, v)| {
            k == "RadialSVM" || v.iter().sum::<f64>() >= rows["RadialSVM"].iter().sum::<f64>()
        })
    );

    save_result(
        "table1_classifiers",
        &Table1 {
            budgets,
            ceilings,
            rows,
        },
    );
}
