//! Micro-benchmark of the durable-state layer: snapshot capture +
//! atomic save, load + corruption-checked restore, and the recovery
//! value itself — how many launches a warm restart needs to reach
//! sustained oracle-level serving versus a cold start on the same
//! device.
//!
//! Reported and gated: the deterministic recovery economics
//! (`cold_recovery_launches`, `warm_recovery_launches` — baseline 0,
//! so a warm restart that has to relearn anything fails the gate —
//! and `restore_dropped_sections`, also 0: a clean snapshot must
//! restore whole) plus wall-clock smoke guardrails for the save and
//! restore paths (wide tolerance: they carry an fsync).

use autokernel_bench::save_result;
use autokernel_core::resilient::ResilientPolicy;
use autokernel_core::{
    OnlineConfig, PerformanceDataset, PipelineConfig, RestoreOutcome, Snapshot, TuningPipeline,
};
use autokernel_gemm::GemmShape;
use autokernel_sycl_sim::{Buffer, DeviceSpec, Queue};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Serving rounds per recovery measurement (12 shapes each).
const ROUNDS: usize = 16;

fn shapes() -> Vec<(GemmShape, String)> {
    [
        (64, 64, 64),
        (512, 512, 512),
        (1, 4096, 1000),
        (12544, 27, 64),
        (196, 2304, 256),
        (3136, 144, 24),
        (49, 960, 160),
        (784, 1152, 128),
        (32, 4096, 4096),
        (2, 2048, 1000),
        (6272, 576, 128),
        (1024, 1024, 1024),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "conv/fc".to_string()))
    .collect()
}

/// Evidence-decisive bandit config: once every arm is measured the
/// pick is the measured-best arm, so "launches until sustained
/// oracle-level serving" is deterministic and well-defined.
fn learn_config() -> OnlineConfig {
    OnlineConfig {
        exploration: 0.02,
        prior_weight: 0.0,
        ..OnlineConfig::default()
    }
}

fn zero_buffers(shape: GemmShape) -> (Buffer<f32>, Buffer<f32>, Buffer<f32>) {
    (
        Buffer::new_filled(shape.m * shape.k, 0.0f32),
        Buffer::new_filled(shape.k * shape.n, 0.0f32),
        Buffer::new_filled(shape.m * shape.n, 0.0f32),
    )
}

/// Per-shape best shipped-config duration on `device`.
fn shipped_oracle(pipeline: &TuningPipeline, device: &Arc<DeviceSpec>) -> Vec<f64> {
    use autokernel_gemm::{model, KernelConfig};
    let queue = Queue::timing_only(Arc::clone(device));
    pipeline
        .dataset()
        .shapes
        .iter()
        .map(|shape| {
            pipeline
                .shipped_configs()
                .iter()
                .filter_map(|&c| {
                    let cfg = KernelConfig::from_index(c)?;
                    let range = model::launch_range(&cfg, shape).ok()?;
                    let profile = model::profile(&cfg, shape, queue.device());
                    queue
                        .price(&profile, &range, model::noise_seed(&cfg, shape))
                        .ok()
                        .map(|(_, d)| d)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Launches until every later launch serves at >= 99% of the oracle.
fn launches_until_stable(ratios: &[f64]) -> usize {
    let mut first = ratios.len();
    while first > 0 && ratios[first - 1] >= 0.99 {
        first -= 1;
    }
    first
}

#[derive(serde::Serialize)]
struct MicroPersistResult {
    /// Launches a cold (post-drift, empty bandit) stack needs before
    /// sustained oracle-level serving.
    cold_recovery_launches: u64,
    /// Same measurement for a stack warm-restarted from the snapshot.
    /// Gated at 0: restored evidence must make relearning unnecessary.
    warm_recovery_launches: u64,
    /// Sections the restore of a clean snapshot had to drop. Gated at
    /// 0: any positive value is corruption tolerance firing on healthy
    /// data.
    restore_dropped_sections: u64,
    /// Snapshot file size for the 12-shape learned stack.
    snapshot_bytes: u64,
    /// Capture + encode + atomic write (tmp, fsync, rename).
    snapshot_save_ns: f64,
    /// Read + per-section CRC verification + apply into a live stack.
    snapshot_restore_ns: f64,
}

fn bench_persist(c: &mut Criterion) {
    let nano = DeviceSpec::amd_r9_nano();
    let gpu = Arc::new(DeviceSpec::desktop_gpu());
    let dataset = PerformanceDataset::collect(&nano, &shapes()).expect("dataset collects");
    let pool: Vec<GemmShape> = dataset.shapes.clone();
    let buffers: Vec<_> = pool.iter().map(|&s| zero_buffers(s)).collect();
    let dir = std::env::temp_dir().join(format!("autokernel-micro-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("serving.snap");

    let serve = |exec: &autokernel_core::ResilientExecutor, oracle: &[f64]| -> Vec<f64> {
        let mut ratios = Vec::with_capacity(ROUNDS * pool.len());
        for _ in 0..ROUNDS {
            for ((shape, (a, b, c)), &best) in pool.iter().zip(&buffers).zip(oracle) {
                let report = exec.launch(*shape, a, b, c).expect("launch completes");
                assert!(!report.event.is_failed());
                ratios.push(best / report.event.duration_s());
            }
        }
        ratios
    };

    // Cold: a fresh post-drift stack pays the full adaptation price.
    let pipeline = TuningPipeline::from_dataset(dataset.clone(), PipelineConfig::default())
        .expect("pipeline trains");
    let oracle = shipped_oracle(&pipeline, &gpu);
    let (exec, online) = pipeline
        .adaptive_executor(
            Queue::timing_only(Arc::clone(&gpu)),
            ResilientPolicy::default(),
            learn_config(),
        )
        .expect("adaptive executor builds");
    online.force_drift();
    let cold = launches_until_stable(&serve(&exec, &oracle));

    // Snapshot the converged stack, crash it, warm-restart a fresh one.
    Snapshot::new(&gpu)
        .capture_stack(&online)
        .save(&path)
        .expect("snapshot saves");
    drop((exec, online, pipeline));

    let restored = Snapshot::load(&path).expect("snapshot loads");
    let fresh = TuningPipeline::from_dataset(dataset.clone(), PipelineConfig::default())
        .expect("pipeline trains");
    let (exec, online, outcome) = fresh
        .warm_adaptive_executor(
            Queue::timing_only(Arc::clone(&gpu)),
            ResilientPolicy::default(),
            learn_config(),
            &restored,
        )
        .expect("warm executor builds");
    let dropped = match &outcome {
        RestoreOutcome::Full => 0,
        RestoreOutcome::Partial { dropped } => dropped.len() as u64,
        RestoreOutcome::ColdStart { error } => panic!("clean snapshot cold-started: {error}"),
    };
    let warm = launches_until_stable(&serve(&exec, &oracle));
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot stat").len();

    // Wall-clock of the two durable-state primitives, on the live
    // (post-recovery) stack.
    let time_ns = |f: &mut dyn FnMut(), reps: u32| {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / reps as f64
    };
    let snapshot_save_ns = time_ns(
        &mut || {
            Snapshot::new(&gpu)
                .capture_stack(&online)
                .save(&path)
                .expect("snapshot saves");
        },
        200,
    );
    let snapshot_restore_ns = time_ns(
        &mut || {
            let snapshot = Snapshot::load(&path).expect("snapshot loads");
            black_box(snapshot.restore_stack(&online, &gpu));
        },
        200,
    );

    let mut group = c.benchmark_group("persist");
    group.bench_function("capture_encode", |bench| {
        bench.iter(|| {
            black_box(Snapshot::new(&gpu).capture_stack(&online).to_json()).expect("encodes")
        });
    });
    group.bench_function("decode_verify", |bench| {
        let json = Snapshot::new(&gpu)
            .capture_stack(&online)
            .to_json()
            .expect("encodes");
        bench.iter(|| black_box(Snapshot::from_json(black_box(&json))).expect("decodes"));
    });
    group.finish();

    let result = MicroPersistResult {
        cold_recovery_launches: cold as u64,
        warm_recovery_launches: warm as u64,
        restore_dropped_sections: dropped,
        snapshot_bytes,
        snapshot_save_ns,
        snapshot_restore_ns,
    };
    println!(
        "persist: cold {} launches to oracle, warm {}, {} dropped section(s), \
         snapshot {} bytes, save {:.1} us, load+restore {:.1} us",
        result.cold_recovery_launches,
        result.warm_recovery_launches,
        result.restore_dropped_sections,
        result.snapshot_bytes,
        result.snapshot_save_ns / 1e3,
        result.snapshot_restore_ns / 1e3,
    );
    save_result("micro_persist", &result);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_persist
);
criterion_main!(benches);
