//! Figure 2: how many times each configuration achieves optimal
//! performance across the dataset.
//!
//! Paper observations reproduced: one configuration is best in 32 cases
//! (more than 3× the runner-up), yet 58 distinct configurations are best
//! for at least one size — the long tail that makes pruning hard.

use autokernel_bench::{banner, paper_dataset, print_table, save_result};
use autokernel_gemm::KernelConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2 {
    distinct_optima: usize,
    counts: Vec<(String, usize)>,
}

fn main() {
    banner(
        "Figure 2 — optimal-configuration counts",
        "best config wins 32/170 (>3x runner-up); 58 distinct configs optimal at least once",
    );
    let ds = paper_dataset();
    let counts = ds.optimal_counts();

    let mut nonzero: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(j, &c)| (j, c))
        .collect();
    nonzero.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    let rows: Vec<Vec<String>> = nonzero
        .iter()
        .take(20)
        .map(|&(j, c)| {
            vec![
                KernelConfig::from_index(j).unwrap().to_string(),
                c.to_string(),
            ]
        })
        .collect();
    print_table(&["config".into(), "times optimal".into()], &rows);

    let top = nonzero[0].1;
    let runner = nonzero.get(1).map(|&(_, c)| c).unwrap_or(0);
    println!(
        "\ndistinct configurations optimal at least once: {} (paper: 58)",
        nonzero.len()
    );
    println!("dominant configuration wins:                   {top}/170 (paper: 32)");
    println!(
        "dominance ratio over runner-up:                {:.2}x (paper: >3x)",
        top as f64 / runner.max(1) as f64
    );

    save_result(
        "fig2_optimal_counts",
        &Fig2 {
            distinct_optima: nonzero.len(),
            counts: nonzero
                .iter()
                .map(|&(j, c)| (KernelConfig::from_index(j).unwrap().to_string(), c))
                .collect(),
        },
    );
}
