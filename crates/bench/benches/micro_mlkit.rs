//! Criterion micro-benchmarks of the mlkit estimators on the actual
//! study workload: the 170×640 normalised performance matrix and the
//! 136-sample training split.

use autokernel_bench::{paper_dataset, standard_split, MODEL_SEED};
use autokernel_core::PruneMethod;
use autokernel_mlkit::tree::{DecisionTreeRegressor, TreeParams};
use autokernel_mlkit::{Hdbscan, KMeans, Pca};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let x = ds.normalized_matrix();
    let xtrain = ds.normalized_matrix_of(&split.train);
    let features = ds.features_of(&split.train);

    c.bench_function("pca_fit_170x640", |b| {
        b.iter(|| {
            let mut pca = Pca::new(15);
            pca.fit(black_box(&x)).unwrap();
            black_box(pca.explained_variance_ratio().unwrap().len())
        });
    });

    c.bench_function("kmeans_k8_136x640", |b| {
        b.iter(|| {
            let mut km = KMeans::new(8, MODEL_SEED).with_n_init(3);
            km.fit(black_box(&xtrain)).unwrap();
            black_box(km.inertia().unwrap())
        });
    });

    c.bench_function("hdbscan_mcs5_136x640", |b| {
        b.iter(|| {
            let mut h = Hdbscan::new(5);
            h.fit(black_box(&xtrain)).unwrap();
            black_box(h.n_clusters().unwrap())
        });
    });

    c.bench_function("tree_regressor_8leaves_136x640", |b| {
        b.iter(|| {
            let mut reg = DecisionTreeRegressor::new(TreeParams {
                max_leaf_nodes: Some(8),
                min_samples_leaf: 2,
                ..TreeParams::default()
            });
            reg.fit(black_box(&features), black_box(&xtrain)).unwrap();
            black_box(reg.tree().unwrap().n_leaves())
        });
    });

    c.bench_function("full_prune_decision_tree_budget8", |b| {
        b.iter(|| {
            black_box(
                PruneMethod::DecisionTree
                    .select(&ds, &split.train, 8, MODEL_SEED)
                    .unwrap()
                    .len(),
            )
        });
    });

    c.bench_function("dataset_collection_170x640", |b| {
        b.iter(|| {
            let ds = autokernel_bench::paper_dataset();
            black_box(ds.n_shapes())
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimators
);
criterion_main!(benches);
