//! Figure 3: fraction of dataset variance explained by each PCA
//! component, used to pick the 4..15 kernel-budget range.
//!
//! Paper observations: 4 components account for over 80 % of the
//! variance, 8 for 90 %, 15 for 95 %.

use autokernel_bench::{banner, paper_dataset, print_table, save_result};
use autokernel_mlkit::Pca;
use serde::Serialize;

#[derive(Serialize)]
struct Fig3 {
    ratios: Vec<f64>,
    cumulative: Vec<f64>,
    components_for_80: usize,
    components_for_90: usize,
    components_for_95: usize,
}

fn main() {
    banner(
        "Figure 3 — PCA explained variance of the performance matrix",
        ">80% in 4 components, 90% in 8, 95% in 15",
    );
    let ds = paper_dataset();
    let norm = ds.normalized_matrix();

    let mut pca = Pca::new(30);
    pca.fit(&norm).expect("pca fits");
    let ratios = pca.explained_variance_ratio().expect("fitted").to_vec();
    let cumulative: Vec<f64> = ratios
        .iter()
        .scan(0.0, |acc, &r| {
            *acc += r;
            Some(*acc)
        })
        .collect();

    let rows: Vec<Vec<String>> = (0..20.min(ratios.len()))
        .map(|i| {
            vec![
                (i + 1).to_string(),
                format!("{:.4}", ratios[i]),
                format!("{:.4}", cumulative[i]),
            ]
        })
        .collect();
    print_table(
        &["component".into(), "ratio".into(), "cumulative".into()],
        &rows,
    );

    let need = |threshold: f64| {
        cumulative
            .iter()
            .position(|&c| c >= threshold)
            .map(|p| p + 1)
            .unwrap_or(usize::MAX)
    };
    let (n80, n90, n95) = (need(0.80), need(0.90), need(0.95));
    println!("\ncomponents for 80% variance: {n80} (paper: 4)");
    println!("components for 90% variance: {n90} (paper: 8)");
    println!("components for 95% variance: {n95} (paper: 15)");
    println!("=> kernel-budget sweep range used downstream: 4..=15 (as in the paper)");

    save_result(
        "fig3_pca_variance",
        &Fig3 {
            ratios,
            cumulative,
            components_for_80: n80,
            components_for_90: n90,
            components_for_95: n95,
        },
    );
}
