//! Extension experiment: classification vs regression-based selection.
//!
//! The paper classifies shapes into shipped kernels; its related work
//! (Bergstra et al. 2012) instead *predicts performance* with boosted
//! regression trees and selects the argmax. This bench runs both under
//! the Table I protocol.

use autokernel_bench::{
    banner, paper_dataset, print_table, save_result, standard_split, MODEL_SEED,
};
use autokernel_core::evaluate::{achievable_score, selection_score};
use autokernel_core::regression::{RegressionParams, RegressionSelector};
use autokernel_core::select::Selector;
use autokernel_core::{PruneMethod, SelectorKind};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct ExtRegression {
    budgets: Vec<usize>,
    ceilings: Vec<f64>,
    classifier: Vec<f64>,
    regression: Vec<f64>,
}

fn main() {
    banner(
        "Extension — decision-tree classification vs boosted-tree regression selection",
        "related work (Bergstra 2012): regress performance, select the argmax",
    );
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let budgets = vec![5usize, 6, 8, 15];

    let mut ceilings = Vec::new();
    let mut clf_scores = Vec::new();
    let mut reg_scores = Vec::new();
    for &b in &budgets {
        let configs = PruneMethod::DecisionTree
            .select(&ds, &split.train, b, MODEL_SEED)
            .unwrap();
        ceilings.push(achievable_score(&ds, &split.test, &configs));

        let clf = Selector::train(
            SelectorKind::DecisionTree,
            &ds,
            &split.train,
            &configs,
            MODEL_SEED,
        )
        .unwrap();
        let chosen = clf.select_rows(&ds, &split.test).unwrap();
        clf_scores.push(selection_score(&ds, &split.test, &chosen));

        let reg =
            RegressionSelector::train(&ds, &split.train, &configs, RegressionParams::default())
                .unwrap();
        let chosen = reg.select_rows(&ds, &split.test).unwrap();
        reg_scores.push(selection_score(&ds, &split.test, &chosen));
    }

    let rows: Vec<Vec<String>> = budgets
        .iter()
        .enumerate()
        .map(|(i, b)| {
            vec![
                b.to_string(),
                format!("{:.2}", ceilings[i] * 100.0),
                format!("{:.2}", clf_scores[i] * 100.0),
                format!("{:.2}", reg_scores[i] * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "budget".into(),
            "ceiling".into(),
            "classifier".into(),
            "regression".into(),
        ],
        &rows,
    );

    let mut summary = BTreeMap::new();
    summary.insert(
        "classifier_mean",
        clf_scores.iter().sum::<f64>() / budgets.len() as f64,
    );
    summary.insert(
        "regression_mean",
        reg_scores.iter().sum::<f64>() / budgets.len() as f64,
    );
    println!(
        "\nmeans: classifier {:.2}%, regression {:.2}%",
        summary["classifier_mean"] * 100.0,
        summary["regression_mean"] * 100.0
    );
    println!("(regression needs one model per kernel and ~100x the selection latency;\n the paper's single-tree classifier remains the deployment choice)");

    save_result(
        "ext_regression",
        &ExtRegression {
            budgets,
            ceilings,
            classifier: clf_scores,
            regression: reg_scores,
        },
    );
}
