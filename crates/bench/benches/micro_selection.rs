//! Criterion micro-benchmarks of runtime selection latency — the
//! paper's Section IV argument: "there is little to be gained by
//! choosing a complex process to achieve slightly better performance if
//! this leads to significantly more time being spent in that selection
//! process."
//!
//! Compares the cost of one selection decision across classifier
//! families, plus the compiled (nested-`if`) decision tree a library
//! would actually ship.

use autokernel_bench::{paper_dataset, standard_split, MODEL_SEED};
use autokernel_core::codegen::CompiledTree;
use autokernel_core::select::Selector;
use autokernel_core::{PruneMethod, SelectorKind};
use autokernel_gemm::GemmShape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_selection_latency(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();

    let probe = GemmShape::new(3136, 576, 192);
    let mut group = c.benchmark_group("selection_latency");

    for kind in SelectorKind::all() {
        let sel = Selector::train(kind, &ds, &split.train, &configs, MODEL_SEED).unwrap();
        group.bench_with_input(
            BenchmarkId::new("estimator", kind.name()),
            &kind,
            |bench, _| {
                bench.iter(|| black_box(sel.select_shape(black_box(&probe)).unwrap()));
            },
        );
    }

    // The deployed artefact: the flattened nested-if tree.
    let tree = Selector::train(
        SelectorKind::DecisionTree,
        &ds,
        &split.train,
        &configs,
        MODEL_SEED,
    )
    .unwrap();
    let compiled = CompiledTree::from_selector(&tree).unwrap();
    group.bench_function("compiled_nested_ifs", |bench| {
        bench.iter(|| black_box(compiled.select(black_box(&probe))));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_selection_latency
);
criterion_main!(benches);
