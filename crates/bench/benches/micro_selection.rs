//! Criterion micro-benchmarks of runtime selection latency — the
//! paper's Section IV argument: "there is little to be gained by
//! choosing a complex process to achieve slightly better performance if
//! this leads to significantly more time being spent in that selection
//! process."
//!
//! Compares the cost of one selection decision across classifier
//! families, plus the compiled (nested-`if`) decision tree a library
//! would actually ship, and the serving layer on top: the sharded
//! decision cache (`selection_cache` group, warm-hit vs model
//! inference — the headline is the cached/uncached ratio printed after
//! the group) and parallel batch throughput (`selection_throughput`
//! group, decisions/second via `Throughput::Elements`).

use autokernel_bench::{paper_dataset, save_result, standard_split, MODEL_SEED};
use autokernel_core::cache::CachedSelector;
use autokernel_core::codegen::CompiledTree;
use autokernel_core::resilient::{BreakerState, ResilientExecutor, ResilientPolicy};
use autokernel_core::select::Selector;
use autokernel_core::{PipelineConfig, PruneMethod, SelectorKind, TuningPipeline};
use autokernel_gemm::{GemmShape, TiledGemmKernel};
use autokernel_sycl_sim::fault::FaultPlan;
use autokernel_sycl_sim::{Buffer, DeviceSpec, Queue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn bench_selection_latency(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();

    let probe = GemmShape::new(3136, 576, 192);
    let mut group = c.benchmark_group("selection_latency");

    for kind in SelectorKind::all() {
        let sel = Selector::train(kind, &ds, &split.train, &configs, MODEL_SEED).unwrap();
        group.bench_with_input(
            BenchmarkId::new("estimator", kind.name()),
            &kind,
            |bench, _| {
                bench.iter(|| black_box(sel.select_shape(black_box(&probe)).unwrap()));
            },
        );
    }

    // The deployed artefact: the flattened nested-if tree.
    let tree = Selector::train(
        SelectorKind::DecisionTree,
        &ds,
        &split.train,
        &configs,
        MODEL_SEED,
    )
    .unwrap();
    let compiled = CompiledTree::from_selector(&tree).unwrap();
    group.bench_function("compiled_nested_ifs", |bench| {
        bench.iter(|| black_box(compiled.select(black_box(&probe))));
    });
    group.finish();
}

fn bench_selection_cache(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();
    // The forest is the most expensive model to consult — the regime
    // where caching pays the most.
    let sel = Arc::new(
        Selector::train(
            SelectorKind::RandomForest,
            &ds,
            &split.train,
            &configs,
            MODEL_SEED,
        )
        .unwrap(),
    );
    let probe = GemmShape::new(3136, 576, 192);

    let mut group = c.benchmark_group("selection_cache");
    group.bench_function("uncached_forest", |bench| {
        bench.iter(|| black_box(sel.select_shape(black_box(&probe)).unwrap()));
    });
    let cached = CachedSelector::new(Arc::clone(&sel));
    cached.select(&probe).unwrap(); // warm the one probe shape
    group.bench_function("cached_forest_warm", |bench| {
        bench.iter(|| black_box(cached.select(black_box(&probe)).unwrap()));
    });
    group.finish();

    // Headline number for the serving layer: how much a warm hit saves.
    let reps = 3000u32;
    let start = Instant::now();
    for _ in 0..reps {
        black_box(sel.select_shape(black_box(&probe)).unwrap());
    }
    let uncached_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        black_box(cached.select(black_box(&probe)).unwrap());
    }
    let cached_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    println!(
        "selection_cache/speedup: warm hit {cached_ns:.0} ns vs model {uncached_ns:.0} ns -> {:.0}x",
        uncached_ns / cached_ns.max(1.0)
    );
}

fn bench_selection_throughput(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();
    // Forest again: batch parallelism only pays when one decision costs
    // microseconds — for the ~100 ns tree, thread fan-out loses.
    let sel = Arc::new(
        Selector::train(
            SelectorKind::RandomForest,
            &ds,
            &split.train,
            &configs,
            MODEL_SEED,
        )
        .unwrap(),
    );
    // A serving batch: 256 decisions over a 16-shape working set.
    let working_set: Vec<GemmShape> = (0..16)
        .map(|i| GemmShape::new(64 + i * 31, 128 + i * 7, 32 + i * 13))
        .collect();
    let batch: Vec<GemmShape> = (0..256)
        .map(|i| working_set[i % working_set.len()])
        .collect();

    let mut group = c.benchmark_group("selection_throughput");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("sequential_uncached", |bench| {
        bench.iter(|| {
            for shape in &batch {
                black_box(sel.select_shape(black_box(shape)).unwrap());
            }
        });
    });
    group.bench_function("parallel_uncached_select_batch", |bench| {
        bench.iter(|| black_box(sel.select_batch(black_box(&batch)).unwrap()));
    });
    let cached = CachedSelector::new(Arc::clone(&sel));
    cached.warm(&working_set).unwrap();
    group.bench_function("parallel_cached_select_batch", |bench| {
        bench.iter(|| black_box(cached.select_batch(black_box(&batch)).unwrap()));
    });
    group.finish();
}

/// Host-side latency of serving one launch down each level of the
/// resilient fallback chain, against plain (unguarded) submission. All
/// queues are timing-only so kernel bodies never run: the numbers are
/// pure serving overhead — selection, breaker checks, kernel assembly,
/// launch pricing.
#[derive(serde::Serialize)]
struct MicroResilienceResult {
    probe_shape: String,
    plain_submit_ns: f64,
    resilient_primary_ns: f64,
    breaker_open_fallback_ns: f64,
    reference_degrade_ns: f64,
}

fn bench_resilience(c: &mut Criterion) {
    let pipeline = TuningPipeline::from_dataset(paper_dataset(), PipelineConfig::default())
        .expect("pipeline trains");
    let device = Arc::new(DeviceSpec::amd_r9_nano());
    let probe = GemmShape::new(3136, 576, 192);
    let a = Buffer::new_filled(probe.m * probe.k, 1.0f32);
    let b = Buffer::new_filled(probe.k * probe.n, 1.0f32);
    let cbuf = Buffer::new_filled(probe.m * probe.n, 0.0f32);
    let doomed = pipeline.select(&probe).expect("selection succeeds");
    // Breakers must stay open once tripped for a steady-state
    // measurement, so cooldowns are effectively infinite.
    let policy = ResilientPolicy {
        breaker_cooldown_s: 1e12,
        ..ResilientPolicy::default()
    };

    // Plain submission, as an unguarded caller would do it.
    let plain_queue = Queue::timing_only(device.clone());
    let run_plain = || {
        let cfg = pipeline.select_cached(&probe).expect("selection succeeds");
        let kernel = TiledGemmKernel::new(cfg, probe, a.clone(), b.clone(), cbuf.clone())
            .expect("kernel assembles");
        plain_queue
            .submit(&kernel, kernel.preferred_range().expect("valid range"))
            .expect("launch completes")
    };

    // Level 0: healthy device, primary pick runs first try.
    let healthy = pipeline.resilient_executor(Queue::timing_only(device.clone()), policy.clone());

    // Level 1: the primary pick's breaker is open, traffic is served by
    // the next-best shipped config after a quarantine skip.
    let open_plan = Arc::new(FaultPlan::new(3).doom_kernels_matching(format!("gemm_{doomed}_")));
    let open_queue = Queue::timing_only(device.clone()).with_fault_plan(open_plan);
    let breaker_open = pipeline.resilient_executor(open_queue, policy.clone());

    // Level 2: every tiled config is quarantined; only the reference
    // GEMM on the fault-free path can serve.
    let melt_plan = Arc::new(FaultPlan::new(3).doom_kernels_matching("gemm_T"));
    let melt_queue = Queue::timing_only(device).with_fault_plan(melt_plan);
    let degraded = pipeline.resilient_executor(melt_queue, policy);

    // Trip the breakers (threshold failures per doomed config), then
    // confirm the steady state each executor is meant to measure.
    let trip = |executor: &ResilientExecutor| {
        for _ in 0..8 {
            executor
                .launch(probe, &a, &b, &cbuf)
                .expect("resilient launch always completes");
        }
    };
    trip(&breaker_open);
    trip(&degraded);
    assert_eq!(
        breaker_open.breaker_state(doomed.index()),
        Some(BreakerState::Open)
    );
    assert!(!degraded.quarantined().is_empty());

    let mut group = c.benchmark_group("resilience");
    group.bench_function("plain_submit", |bench| {
        bench.iter(|| black_box(run_plain()));
    });
    group.bench_function("resilient_primary", |bench| {
        bench.iter(|| black_box(healthy.launch(probe, &a, &b, &cbuf).unwrap()));
    });
    group.bench_function("breaker_open_fallback", |bench| {
        bench.iter(|| black_box(breaker_open.launch(probe, &a, &b, &cbuf).unwrap()));
    });
    group.bench_function("reference_degrade", |bench| {
        bench.iter(|| black_box(degraded.launch(probe, &a, &b, &cbuf).unwrap()));
    });
    group.finish();

    // Headline + persisted numbers for EXPERIMENTS.md.
    let time_ns = |f: &dyn Fn()| {
        let reps = 2000u32;
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / reps as f64
    };
    let result = MicroResilienceResult {
        probe_shape: probe.to_string(),
        plain_submit_ns: time_ns(&|| {
            black_box(run_plain());
        }),
        resilient_primary_ns: time_ns(&|| {
            black_box(healthy.launch(probe, &a, &b, &cbuf).unwrap());
        }),
        breaker_open_fallback_ns: time_ns(&|| {
            black_box(breaker_open.launch(probe, &a, &b, &cbuf).unwrap());
        }),
        reference_degrade_ns: time_ns(&|| {
            black_box(degraded.launch(probe, &a, &b, &cbuf).unwrap());
        }),
    };
    println!(
        "resilience/launch overhead: plain {:.0} ns, resilient primary {:.0} ns, \
         breaker-open fallback {:.0} ns, reference degrade {:.0} ns",
        result.plain_submit_ns,
        result.resilient_primary_ns,
        result.breaker_open_fallback_ns,
        result.reference_degrade_ns
    );
    save_result("micro_resilience", &result);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_selection_latency, bench_selection_cache, bench_selection_throughput,
        bench_resilience
);
criterion_main!(benches);
