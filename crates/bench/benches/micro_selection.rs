//! Criterion micro-benchmarks of runtime selection latency — the
//! paper's Section IV argument: "there is little to be gained by
//! choosing a complex process to achieve slightly better performance if
//! this leads to significantly more time being spent in that selection
//! process."
//!
//! Compares the cost of one selection decision across classifier
//! families, plus the compiled (nested-`if`) decision tree a library
//! would actually ship, and the serving layer on top: the sharded
//! decision cache (`selection_cache` group, warm-hit vs model
//! inference — the headline is the cached/uncached ratio printed after
//! the group) and parallel batch throughput (`selection_throughput`
//! group, decisions/second via `Throughput::Elements`).

use autokernel_bench::{paper_dataset, standard_split, MODEL_SEED};
use autokernel_core::cache::CachedSelector;
use autokernel_core::codegen::CompiledTree;
use autokernel_core::select::Selector;
use autokernel_core::{PruneMethod, SelectorKind};
use autokernel_gemm::GemmShape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn bench_selection_latency(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();

    let probe = GemmShape::new(3136, 576, 192);
    let mut group = c.benchmark_group("selection_latency");

    for kind in SelectorKind::all() {
        let sel = Selector::train(kind, &ds, &split.train, &configs, MODEL_SEED).unwrap();
        group.bench_with_input(
            BenchmarkId::new("estimator", kind.name()),
            &kind,
            |bench, _| {
                bench.iter(|| black_box(sel.select_shape(black_box(&probe)).unwrap()));
            },
        );
    }

    // The deployed artefact: the flattened nested-if tree.
    let tree = Selector::train(
        SelectorKind::DecisionTree,
        &ds,
        &split.train,
        &configs,
        MODEL_SEED,
    )
    .unwrap();
    let compiled = CompiledTree::from_selector(&tree).unwrap();
    group.bench_function("compiled_nested_ifs", |bench| {
        bench.iter(|| black_box(compiled.select(black_box(&probe))));
    });
    group.finish();
}

fn bench_selection_cache(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();
    // The forest is the most expensive model to consult — the regime
    // where caching pays the most.
    let sel = Arc::new(
        Selector::train(
            SelectorKind::RandomForest,
            &ds,
            &split.train,
            &configs,
            MODEL_SEED,
        )
        .unwrap(),
    );
    let probe = GemmShape::new(3136, 576, 192);

    let mut group = c.benchmark_group("selection_cache");
    group.bench_function("uncached_forest", |bench| {
        bench.iter(|| black_box(sel.select_shape(black_box(&probe)).unwrap()));
    });
    let cached = CachedSelector::new(Arc::clone(&sel));
    cached.select(&probe).unwrap(); // warm the one probe shape
    group.bench_function("cached_forest_warm", |bench| {
        bench.iter(|| black_box(cached.select(black_box(&probe)).unwrap()));
    });
    group.finish();

    // Headline number for the serving layer: how much a warm hit saves.
    let reps = 3000u32;
    let start = Instant::now();
    for _ in 0..reps {
        black_box(sel.select_shape(black_box(&probe)).unwrap());
    }
    let uncached_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        black_box(cached.select(black_box(&probe)).unwrap());
    }
    let cached_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    println!(
        "selection_cache/speedup: warm hit {cached_ns:.0} ns vs model {uncached_ns:.0} ns -> {:.0}x",
        uncached_ns / cached_ns.max(1.0)
    );
}

fn bench_selection_throughput(c: &mut Criterion) {
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let configs = PruneMethod::DecisionTree
        .select(&ds, &split.train, 8, MODEL_SEED)
        .unwrap();
    // Forest again: batch parallelism only pays when one decision costs
    // microseconds — for the ~100 ns tree, thread fan-out loses.
    let sel = Arc::new(
        Selector::train(
            SelectorKind::RandomForest,
            &ds,
            &split.train,
            &configs,
            MODEL_SEED,
        )
        .unwrap(),
    );
    // A serving batch: 256 decisions over a 16-shape working set.
    let working_set: Vec<GemmShape> = (0..16)
        .map(|i| GemmShape::new(64 + i * 31, 128 + i * 7, 32 + i * 13))
        .collect();
    let batch: Vec<GemmShape> = (0..256)
        .map(|i| working_set[i % working_set.len()])
        .collect();

    let mut group = c.benchmark_group("selection_throughput");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("sequential_uncached", |bench| {
        bench.iter(|| {
            for shape in &batch {
                black_box(sel.select_shape(black_box(shape)).unwrap());
            }
        });
    });
    group.bench_function("parallel_uncached_select_batch", |bench| {
        bench.iter(|| black_box(sel.select_batch(black_box(&batch)).unwrap()));
    });
    let cached = CachedSelector::new(Arc::clone(&sel));
    cached.warm(&working_set).unwrap();
    group.bench_function("parallel_cached_select_batch", |bench| {
        bench.iter(|| black_box(cached.select_batch(black_box(&batch)).unwrap()));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_selection_latency, bench_selection_cache, bench_selection_throughput
);
criterion_main!(benches);
