//! Extension experiment: Kernel Tuner-style search strategies vs the
//! paper's brute force.
//!
//! The paper: "The brute-force techniques used are infeasible for
//! larger problems, where more intelligent parameter search methods
//! must be used" — citing basin hopping and evolutionary algorithms.
//! This bench measures, on the 640-point space, how close each strategy
//! gets to the brute-force optimum as a function of the evaluation
//! budget, aggregated over a spread of shapes.

use autokernel_bench::{banner, print_table, save_result};
use autokernel_gemm::GemmShape;
use autokernel_sycl_sim::DeviceSpec;
use autokernel_tuner::{
    BasinHopping, Evolutionary, GemmObjective, HillClimbing, RandomSearch, SearchStrategy,
};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct ExtSearch {
    budgets: Vec<usize>,
    /// strategy -> geometric-mean (best_found / optimum) per budget.
    gaps: BTreeMap<String, Vec<f64>>,
}

fn main() {
    banner(
        "Extension — search strategies vs brute force (640-point space)",
        "\"more intelligent parameter search methods must be used\" for larger spaces",
    );
    let shapes = [
        GemmShape::new(12544, 27, 64),
        GemmShape::new(784, 1152, 128),
        GemmShape::new(49, 960, 160),
        GemmShape::new(1, 4096, 1000),
        GemmShape::new(3136, 576, 192),
        GemmShape::new(32, 4096, 4096),
    ];
    let device = DeviceSpec::amd_r9_nano();
    let budgets = vec![20usize, 40, 80, 160, 320, 640];
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch),
        Box::new(HillClimbing),
        Box::new(BasinHopping::default()),
        Box::new(Evolutionary::default()),
    ];

    let mut gaps: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for strategy in &strategies {
        let mut per_budget = Vec::new();
        for &budget in &budgets {
            // Geometric mean over shapes and 5 seeds of found/optimum.
            let mut log_sum = 0.0f64;
            let mut count = 0usize;
            for shape in shapes {
                let optimum = GemmObjective::new(&device, shape)
                    .brute_force_best()
                    .expect("non-empty space")
                    .1;
                for seed in 0..5u64 {
                    let obj = GemmObjective::new(&device, shape);
                    let r = strategy.tune(&obj, budget, seed);
                    log_sum += (r.best_value / optimum).ln();
                    count += 1;
                }
            }
            per_budget.push((log_sum / count as f64).exp());
        }
        gaps.insert(strategy.name().to_string(), per_budget);
    }

    let mut headers = vec!["budget (evals)".to_string()];
    headers.extend(gaps.keys().cloned());
    let rows: Vec<Vec<String>> = budgets
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let mut row = vec![b.to_string()];
            row.extend(gaps.values().map(|g| format!("{:.3}x", g[bi])));
            row
        })
        .collect();
    print_table(&headers, &rows);

    println!("\n(values are the geomean slowdown of the found config vs the true optimum;");
    println!(" 1.000x = optimum found; budget 640 = the brute-force cost)");

    // Headline: the structured searches should dominate random at small
    // budgets.
    let rs_small = gaps["random search"][1];
    let best_small = ["hill climbing", "basin hopping", "evolutionary"]
        .iter()
        .map(|s| gaps[*s][1])
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nat 40 evaluations: best structured search {best_small:.3}x vs random {rs_small:.3}x ({})",
        if best_small <= rs_small { "structured wins, as the literature reports" } else { "UNEXPECTED" }
    );

    save_result("ext_search", &ExtSearch { budgets, gaps });
}
