//! Criterion micro-benchmarks of the analytical zero-benchmark
//! selector: how much does a roofline ranking cost per decision, and
//! how close does it get to the shipped-set oracle without pricing a
//! single launch?
//!
//! The serving claim is the same as the paper's Section IV argument for
//! trees — a selection process is only useful if its cost disappears
//! next to the kernel it selects — so the gate tracks the per-shape
//! pick among the shipped set (must stay under a microsecond) and the
//! full 640-config ranking, plus the deterministic quality metrics the
//! head-to-head (`analytical_eval`) reports.

use autokernel_bench::{paper_dataset, save_result, standard_split, SPLIT_SEED};
use autokernel_core::evaluate::{achievable_score, selection_score};
use autokernel_core::{AnalyticalSelector, PruneMethod};
use autokernel_gemm::GemmShape;
use autokernel_sycl_sim::DeviceSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Deterministic quality + wall-clock cost of the analytical selector,
/// persisted for the bench gate and EXPERIMENTS.md.
#[derive(serde::Serialize)]
struct MicroAnalyticalResult {
    /// ns per pick among the shipped set (the serving decision).
    select_among_shipped_ns: f64,
    /// ns to rank the full 640-config space for one shape.
    rank_all_640_ns: f64,
    /// Held-out geomean of the analytical picks (Table I metric).
    analytical_test_geomean: f64,
    /// Fraction of the shipped-set oracle ceiling the geomean reaches.
    analytical_oracle_fraction: f64,
}

fn bench_analytical(c: &mut Criterion) {
    let device = DeviceSpec::amd_r9_nano();
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let shipped = PruneMethod::DecisionTree
        .select(&ds, &split.train, 6, SPLIT_SEED)
        .unwrap();
    let selector = AnalyticalSelector::with_candidates(&device, &shipped).unwrap();
    let probe = GemmShape::new(3136, 576, 192);

    let mut group = c.benchmark_group("analytical");
    group.bench_function("select_among_shipped", |bench| {
        bench.iter(|| black_box(selector.select_shape(black_box(&probe)).unwrap()));
    });
    let scorer = selector.scorer();
    group.bench_function("rank_all_640", |bench| {
        bench.iter(|| black_box(scorer.rank_all(black_box(&probe))));
    });
    group.finish();

    // Quality on the held-out rows: zero launches spent deciding.
    let chosen: Vec<usize> = split
        .test
        .iter()
        .map(|&row| selector.select_shape(&ds.shapes[row]).unwrap())
        .collect();
    let geomean = selection_score(&ds, &split.test, &chosen);
    let ceiling = achievable_score(&ds, &split.test, &shipped);

    let time_ns = |f: &dyn Fn()| {
        let reps = 3000u32;
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / reps as f64
    };
    let result = MicroAnalyticalResult {
        select_among_shipped_ns: time_ns(&|| {
            black_box(selector.select_shape(black_box(&probe)).unwrap());
        }),
        rank_all_640_ns: time_ns(&|| {
            black_box(scorer.rank_all(black_box(&probe)));
        }),
        analytical_test_geomean: geomean,
        analytical_oracle_fraction: if ceiling > 0.0 {
            geomean / ceiling
        } else {
            0.0
        },
    };
    println!(
        "analytical: pick among shipped {:.0} ns, rank all 640 {:.0} ns, \
         held-out geomean {:.4} ({:.1}% of oracle ceiling)",
        result.select_among_shipped_ns,
        result.rank_all_640_ns,
        result.analytical_test_geomean,
        result.analytical_oracle_fraction * 100.0
    );
    // The serving-cost claim is absolute, not just regression-gated:
    // one analytical pick must stay well under a microsecond.
    assert!(
        result.select_among_shipped_ns < 1000.0,
        "analytical pick took {:.0} ns — the zero-benchmark selector lost its \
         cheap-decision argument",
        result.select_among_shipped_ns
    );
    save_result("micro_analytical", &result);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_analytical
);
criterion_main!(benches);
