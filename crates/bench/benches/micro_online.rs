//! Micro-benchmarks of the online adaptation layer: host-side decision
//! latency of the two policy stages (Mirror delegation vs the
//! per-cluster UCB scan), and the acceptance scenario in numbers — a
//! nano → edge_dsp device swap mid-stream, reporting drift-detection
//! latency, adaptation latency (launches until the rolling geomean
//! recovers to 95 % of the post-swap shipped-set oracle), cumulative
//! regret against that oracle, and per-epoch recovery curves for the
//! adaptive and static stacks.

use autokernel_bench::{paper_dataset, save_result};
use autokernel_core::resilient::ResilientPolicy;
use autokernel_core::{OnlineConfig, PipelineConfig, TuningPipeline};
use autokernel_gemm::{model, GemmShape, KernelConfig};
use autokernel_sycl_sim::{Buffer, DeviceSpec, Queue};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Simulated duration of `config_index` on `shape` for `queue`'s
/// device, or `None` when the device rejects the launch.
fn priced(queue: &Queue, shape: &GemmShape, config_index: usize) -> Option<f64> {
    let cfg = KernelConfig::from_index(config_index)?;
    let range = model::launch_range(&cfg, shape).ok()?;
    let profile = model::profile(&cfg, shape, queue.device());
    queue
        .price(&profile, &range, model::noise_seed(&cfg, shape))
        .ok()
        .map(|(_, duration)| duration)
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The acceptance scenario's numbers, persisted for EXPERIMENTS.md.
#[derive(serde::Serialize)]
struct MicroOnlineResult {
    /// Host-side cost of one Mirror-stage decision (cached delegation).
    mirror_pick_ns: f64,
    /// Host-side cost of one adaptive-stage decision (UCB scan under
    /// the cluster mutex).
    adaptive_pick_ns: f64,
    /// Launches after the swap until Page–Hinkley declared drift.
    drift_trip_after_launches: usize,
    /// Launches after the swap until the rolling geomean (one full
    /// 170-shape window) first reached 95 % of the shipped-set oracle.
    adaptation_latency_launches: Option<usize>,
    nano_epochs: usize,
    edge_epochs: usize,
    /// Post-swap per-epoch geomean of oracle/achieved for the adaptive
    /// stack (the recovery curve).
    adaptive_epoch_geomeans: Vec<f64>,
    /// Same stream served by the static pipeline.
    static_epoch_geomeans: Vec<f64>,
    adaptive_final_geomean: f64,
    static_final_geomean: f64,
    /// Post-swap simulated seconds spent above the oracle, cumulative
    /// over the whole edge stream (the adaptive number includes the
    /// bandit's forced-exploration cost).
    adaptive_cumulative_regret_s: f64,
    static_cumulative_regret_s: f64,
    /// Same regret over the final epoch only — the steady state after
    /// exploration is exhausted.
    adaptive_final_epoch_regret_s: f64,
    static_final_epoch_regret_s: f64,
    oracle_definition: String,
}

fn bench_online(c: &mut Criterion) {
    const NANO_EPOCHS: usize = 2;
    const EDGE_EPOCHS: usize = 8;
    const RECOVERY_TARGET: f64 = 0.95;

    let ds = paper_dataset();
    let shapes: Vec<GemmShape> = ds.shapes.clone();
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let edge = Arc::new(DeviceSpec::edge_dsp());

    // Decision-latency group: one pick through each policy stage.
    let probe = GemmShape::new(3136, 576, 192);
    let latency_pipeline = TuningPipeline::from_dataset(ds.clone(), PipelineConfig::default())
        .expect("pipeline trains");
    let mirror = latency_pipeline
        .online_selector(OnlineConfig::default())
        .expect("online selector builds");
    mirror.select(&probe).expect("warms the cache");
    let adaptive = latency_pipeline
        .online_selector(OnlineConfig::default())
        .expect("online selector builds");
    adaptive.force_drift();
    adaptive.select(&probe).expect("warms the cluster");

    let mut group = c.benchmark_group("online_pick");
    group.bench_function("mirror_cached", |bench| {
        bench.iter(|| black_box(mirror.select(black_box(&probe)).unwrap()));
    });
    group.bench_function("adaptive_ucb", |bench| {
        bench.iter(|| black_box(adaptive.select(black_box(&probe)).unwrap()));
    });
    group.finish();

    let time_ns = |f: &dyn Fn()| {
        let reps = 3000u32;
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / reps as f64
    };
    let mirror_pick_ns = time_ns(&|| {
        black_box(mirror.select(black_box(&probe)).unwrap());
    });
    let adaptive_pick_ns = time_ns(&|| {
        black_box(adaptive.select(black_box(&probe)).unwrap());
    });

    // The swap scenario. Timing-only queues: every number below is
    // simulated device time, the host never runs kernel bodies.
    let pipeline = TuningPipeline::from_dataset(ds.clone(), PipelineConfig::default())
        .expect("pipeline trains");
    let policy = ResilientPolicy::default();
    let (nano_exec, online) = pipeline
        .adaptive_executor(
            Queue::timing_only(Arc::clone(&nano)),
            policy.clone(),
            OnlineConfig::default(),
        )
        .expect("adaptive executor builds");
    let edge_exec = pipeline
        .resilient_executor(Queue::timing_only(Arc::clone(&edge)), policy.clone())
        .with_online(Arc::clone(&online));
    let static_pipeline =
        TuningPipeline::from_dataset(ds, PipelineConfig::default()).expect("pipeline trains");
    let static_exec =
        static_pipeline.resilient_executor(Queue::timing_only(Arc::clone(&edge)), policy);

    let buffers: Vec<_> = shapes
        .iter()
        .map(|&s| {
            (
                Buffer::new_filled(s.m * s.k, 0.0f32),
                Buffer::new_filled(s.k * s.n, 0.0f32),
                Buffer::new_filled(s.m * s.n, 0.0f32),
            )
        })
        .collect();

    for _ in 0..NANO_EPOCHS {
        for (shape, (a, b, cbuf)) in shapes.iter().zip(&buffers) {
            nano_exec.launch(*shape, a, b, cbuf).expect("nano launch");
        }
    }

    // Post-swap shipped-set oracle per shape: best launchable shipped
    // configuration on the edge device.
    let oracle_queue = Queue::timing_only(Arc::clone(&edge));
    let oracle: Vec<f64> = shapes
        .iter()
        .map(|shape| {
            pipeline
                .shipped_configs()
                .iter()
                .filter_map(|&cfg| priced(&oracle_queue, shape, cfg))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut drift_trip_after_launches = None;
    let mut adaptation_latency_launches = None;
    let mut ratios: Vec<f64> = Vec::new();
    let mut adaptive_epoch_geomeans = Vec::new();
    let mut adaptive_cumulative_regret_s = 0.0;
    let mut adaptive_final_epoch_regret_s = 0.0;
    for epoch in 0..EDGE_EPOCHS {
        let epoch_start = ratios.len();
        for (i, (shape, (a, b, cbuf))) in shapes.iter().zip(&buffers).enumerate() {
            let report = edge_exec.launch(*shape, a, b, cbuf).expect("edge launch");
            let duration = report.event.duration_s();
            ratios.push(oracle[i] / duration);
            adaptive_cumulative_regret_s += duration - oracle[i];
            if epoch + 1 == EDGE_EPOCHS {
                adaptive_final_epoch_regret_s += duration - oracle[i];
            }
            if drift_trip_after_launches.is_none() && online.is_adaptive() {
                drift_trip_after_launches = Some(ratios.len());
            }
            if adaptation_latency_launches.is_none() && ratios.len() >= shapes.len() {
                let window = &ratios[ratios.len() - shapes.len()..];
                if geomean(window) >= RECOVERY_TARGET {
                    adaptation_latency_launches = Some(ratios.len());
                }
            }
        }
        adaptive_epoch_geomeans.push(geomean(&ratios[epoch_start..]));
    }

    let mut static_epoch_geomeans = Vec::new();
    let mut static_cumulative_regret_s = 0.0;
    let mut static_final_epoch_regret_s = 0.0;
    for epoch in 0..EDGE_EPOCHS {
        let mut epoch_ratios = Vec::new();
        for (i, (shape, (a, b, cbuf))) in shapes.iter().zip(&buffers).enumerate() {
            let report = static_exec
                .launch(*shape, a, b, cbuf)
                .expect("static launch");
            let duration = report.event.duration_s();
            epoch_ratios.push(oracle[i] / duration);
            static_cumulative_regret_s += duration - oracle[i];
            if epoch + 1 == EDGE_EPOCHS {
                static_final_epoch_regret_s += duration - oracle[i];
            }
        }
        static_epoch_geomeans.push(geomean(&epoch_ratios));
    }

    let result = MicroOnlineResult {
        mirror_pick_ns,
        adaptive_pick_ns,
        drift_trip_after_launches: drift_trip_after_launches.unwrap_or(usize::MAX),
        adaptation_latency_launches,
        nano_epochs: NANO_EPOCHS,
        edge_epochs: EDGE_EPOCHS,
        adaptive_final_geomean: *adaptive_epoch_geomeans.last().expect("epochs ran"),
        static_final_geomean: *static_epoch_geomeans.last().expect("epochs ran"),
        adaptive_epoch_geomeans,
        static_epoch_geomeans,
        adaptive_cumulative_regret_s,
        static_cumulative_regret_s,
        adaptive_final_epoch_regret_s,
        static_final_epoch_regret_s,
        oracle_definition: "per-shape minimum simulated duration over the shipped \
            configurations the edge device accepts"
            .to_string(),
    };
    println!(
        "online/swap: drift tripped after {} launches, recovered to {:.0}% of oracle \
         after {:?} launches; final geomean adaptive {:.4} vs static {:.4}; \
         cumulative regret {:.3}s vs {:.3}s (final epoch {:.3}s vs {:.3}s)",
        result.drift_trip_after_launches,
        RECOVERY_TARGET * 100.0,
        result.adaptation_latency_launches,
        result.adaptive_final_geomean,
        result.static_final_geomean,
        result.adaptive_cumulative_regret_s,
        result.static_cumulative_regret_s,
        result.adaptive_final_epoch_regret_s,
        result.static_final_epoch_regret_s,
    );
    save_result("micro_online", &result);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_online
);
criterion_main!(benches);
