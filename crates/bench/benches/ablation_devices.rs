//! Ablation: the pipeline on other simulated devices.
//!
//! The paper's pitch is that auto-tuned selection deploys "with little
//! developer effort to achieve high performance on new hardware". This
//! target re-runs the Figure 2 structure analysis and the Figure 4
//! decision-tree pruning curve on the desktop-GPU and embedded
//! accelerator device models, with zero pipeline changes.

use autokernel_bench::{
    banner, paper_dataset_on, print_table, save_result, MODEL_SEED, SPLIT_SEED,
};
use autokernel_core::evaluate::achievable_score;
use autokernel_core::PruneMethod;
use autokernel_mlkit::model_selection::train_test_split;
use autokernel_sycl_sim::DeviceSpec;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct DeviceAblation {
    /// device -> (distinct optima, dominant count, tree scores at 4/6/8/15)
    devices: BTreeMap<String, (usize, usize, Vec<f64>)>,
}

fn main() {
    banner(
        "Ablation — retuning for other devices (zero pipeline changes)",
        "\"achieve high performance on new hardware with little developer effort\"",
    );
    let budgets = [4usize, 6, 8, 15];
    let mut out = DeviceAblation {
        devices: BTreeMap::new(),
    };

    let mut rows = Vec::new();
    for device in [
        DeviceSpec::amd_r9_nano(),
        DeviceSpec::desktop_gpu(),
        DeviceSpec::embedded_accelerator(),
    ] {
        let ds = paper_dataset_on(&device);
        let counts = ds.optimal_counts();
        let distinct = counts.iter().filter(|&&c| c > 0).count();
        let dominant = counts.iter().max().copied().unwrap_or(0);

        let split = train_test_split(ds.n_shapes(), 0.2, SPLIT_SEED);
        let scores: Vec<f64> = budgets
            .iter()
            .map(|&b| {
                let configs = PruneMethod::DecisionTree
                    .select(&ds, &split.train, b, MODEL_SEED)
                    .expect("pruning succeeds");
                achievable_score(&ds, &split.test, &configs)
            })
            .collect();

        rows.push(vec![
            device.name.clone(),
            distinct.to_string(),
            dominant.to_string(),
            format!("{:.3}", scores[0]),
            format!("{:.3}", scores[1]),
            format!("{:.3}", scores[2]),
            format!("{:.3}", scores[3]),
        ]);
        out.devices
            .insert(device.name.clone(), (distinct, dominant, scores));
    }
    print_table(
        &[
            "device".into(),
            "distinct optima".into(),
            "dominant wins".into(),
            "tree@4".into(),
            "tree@6".into(),
            "tree@8".into(),
            "tree@15".into(),
        ],
        &rows,
    );

    println!("\nEach device has its own optimal-config structure, yet the same");
    println!("pipeline reaches >90% of each device's optimum within the budget range.");

    save_result("ablation_devices", &out);
}
