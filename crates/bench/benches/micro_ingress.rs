//! Micro-benchmark of the SLO-aware ingress layer: one million
//! requests streamed through the MPMC ingress queue into the
//! three-device fleet (one R9 Nano plus two desktop GPUs), every
//! shard's decision cache capacity-bounded. The stream is a hot head
//! (eight paper shapes carrying 90 % of traffic) over a 2000-shape
//! long tail, so the bounded caches churn while the coalescer keeps
//! amortising hot-shape decisions.
//!
//! Reported and gated: silent drops (must stay zero — the accounting
//! identity `submitted == served + shed` is the whole point), the
//! final bounded-cache footprint (must sit at its configured ceiling,
//! proving the bound engaged), end-to-end p50/p99 from the lock-free
//! log2-bucket histograms, and host-side cost per request.

use autokernel_bench::{paper_dataset, save_result};
use autokernel_core::resilient::ResilientPolicy;
use autokernel_core::{
    BoundedCacheConfig, DeviceShard, GemmRequest, Ingress, IngressConfig, IngressRequest,
    LatencyHistogram, PipelineConfig, Priority, RoutingPolicy, SchedConfig, ShardedCache,
    ShardedScheduler, TenantQuota, TuningPipeline,
};
use autokernel_gemm::GemmShape;
use autokernel_sycl_sim::{DeviceSpec, Queue};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Total requests streamed through the ingress (the issue's floor).
const REQUESTS: usize = 1_000_000;
/// Hot-head shapes (90 % of traffic).
const HOT_SHAPES: usize = 8;
/// Long-tail distinct shapes (10 % of traffic, uniformly).
const TAIL_SHAPES: usize = 2000;
/// Per-shard decision-cache capacity — far below the distinct-shape
/// count, so the bound must actually evict.
const CACHE_CAPACITY: usize = 512;

#[derive(serde::Serialize)]
struct MicroIngressResult {
    requests: u64,
    served: u64,
    shed: u64,
    /// `submitted - served - shed`: any non-zero value is a silently
    /// lost request. Gated at zero.
    silent_drops: u64,
    waves: u64,
    hot_shapes: usize,
    tail_shapes: usize,
    cache_capacity: usize,
    /// Final decision-cache footprint summed over the three shards;
    /// deterministic once every cache has saturated its ceiling.
    cache_entries: u64,
    /// End-to-end (submit → completion) latency quantiles, from the
    /// per-class lock-free histograms.
    p50_latency_ns: f64,
    p99_latency_ns: f64,
    /// Host wall-clock per request over the whole run (submission,
    /// queueing, dispatch, selection, simulated pricing).
    per_request_ns: f64,
    /// Host-side cost of the two ingress hot-path primitives.
    histogram_record_ns: f64,
    cache_hit_ns: f64,
}

/// Deterministic splitmix64 for the stream order.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn tail_shape(i: usize) -> GemmShape {
    GemmShape::new(
        8 + (i % 41) * 3,
        8 + (i / 41 % 43) * 3,
        8 + (i / 1763 % 47) * 3,
    )
}

fn fleet(pipeline: &TuningPipeline) -> Vec<DeviceShard> {
    [
        ("nano-0", DeviceSpec::amd_r9_nano()),
        ("desktop-0", DeviceSpec::desktop_gpu()),
        ("desktop-1", DeviceSpec::desktop_gpu()),
    ]
    .into_iter()
    .map(|(label, device)| {
        let executor = pipeline
            .device_bounded_executor(
                Queue::timing_only(Arc::new(device)),
                ResilientPolicy::default(),
                BoundedCacheConfig {
                    capacity: CACHE_CAPACITY,
                    admit_threshold: 1,
                    ..BoundedCacheConfig::default()
                },
            )
            .expect("bounded executor builds");
        DeviceShard::new(label, executor)
    })
    .collect()
}

fn bench_ingress(c: &mut Criterion) {
    // Hot-path primitives first: these run once per request on the
    // serving path, so their host cost is worth tracking on its own.
    let histogram = LatencyHistogram::new();
    let cache = ShardedCache::bounded(
        8,
        BoundedCacheConfig {
            capacity: CACHE_CAPACITY,
            admit_threshold: 1,
            ..BoundedCacheConfig::default()
        },
    );
    let probe = GemmShape::new(512, 512, 512);
    cache.insert(probe, 123);

    let mut group = c.benchmark_group("ingress_hotpath");
    group.bench_function("histogram_record", |bench| {
        let mut nanos = 1u64;
        bench.iter(|| {
            nanos = nanos.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(black_box(nanos >> 20));
        });
    });
    group.bench_function("bounded_cache_hit", |bench| {
        bench.iter(|| black_box(cache.get(black_box(&probe))));
    });
    group.finish();

    let time_ns = |f: &dyn Fn()| {
        let reps = 100_000u32;
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / reps as f64
    };
    let histogram_record_ns = time_ns(&|| {
        histogram.record(black_box(4096));
    });
    let cache_hit_ns = time_ns(&|| {
        black_box(cache.get(black_box(&probe)));
    });

    // The million-request run. Templates are built once; cloning a
    // GemmRequest only bumps the SYCL-style shared-buffer refcounts, so
    // the stream itself is memory-bounded by construction and the only
    // per-shape state that can grow is the decision caches — which are
    // capacity-bounded and asserted below.
    let ds = paper_dataset();
    let pipeline =
        TuningPipeline::from_dataset(ds.clone(), PipelineConfig::default()).expect("pipeline");
    let hot: Vec<GemmRequest> = ds
        .shapes
        .iter()
        .take(HOT_SHAPES)
        .map(|&s| GemmRequest::zeroed(s))
        .collect();
    let tail: Vec<GemmRequest> = (0..TAIL_SHAPES)
        .map(|i| GemmRequest::zeroed(tail_shape(i)))
        .collect();

    let scheduler = ShardedScheduler::new(
        fleet(&pipeline),
        SchedConfig {
            policy: RoutingPolicy::LeastLoaded,
            queue_capacity: 64,
            batch_window: 32,
            seed: 11,
            parallel: true,
            ..SchedConfig::default()
        },
    )
    .expect("scheduler builds");
    let ingress = Ingress::start(
        scheduler,
        IngressConfig {
            queue_capacity: 8192,
            dispatch_chunk: 2048,
            tenant_quota: TenantQuota {
                max_queued: REQUESTS,
            },
            ..IngressConfig::default()
        },
    );

    let start = Instant::now();
    let handle = ingress.handle();
    for i in 0..REQUESTS {
        let r = mix(i as u64);
        let template = if r % 10 < 9 {
            &hot[(r / 16) as usize % HOT_SHAPES]
        } else {
            &tail[(r / 16) as usize % TAIL_SHAPES]
        };
        // Interactive priority blocks instead of shedding: the gated
        // run must account for every single request as served.
        let outcome = handle
            .submit(
                IngressRequest::new(template.clone())
                    .with_tenant((r % 16) as u32)
                    .with_priority(Priority::Interactive),
            )
            .expect("ingress is open");
        assert!(
            outcome.is_enqueued(),
            "nothing sheds at Interactive priority"
        );
    }
    // The cloned handle must drop before finish(): the dispatcher only
    // drains to completion once every sender has disconnected.
    drop(handle);
    let (report, scheduler) = ingress.finish().expect("dispatcher drains");
    let elapsed = start.elapsed();

    assert!(report.accounted(), "submitted == served + shed must hold");
    assert_eq!(report.served, REQUESTS as u64);
    let mut cache_entries = 0u64;
    for i in 0..3 {
        let shard = scheduler.shard(i).expect("three shards");
        let footprint = shard.executor().selector().cache().footprint();
        assert!(
            footprint <= CACHE_CAPACITY,
            "shard {i} decision cache exceeded its ceiling"
        );
        cache_entries += footprint as u64;
    }

    let interactive = &report.classes[0];
    let result = MicroIngressResult {
        requests: REQUESTS as u64,
        served: report.served,
        shed: report.shed_total(),
        silent_drops: report.submitted - report.served - report.shed_total(),
        waves: report.waves,
        hot_shapes: HOT_SHAPES,
        tail_shapes: TAIL_SHAPES,
        cache_capacity: CACHE_CAPACITY,
        cache_entries,
        p50_latency_ns: interactive.p50_ns,
        p99_latency_ns: interactive.p99_ns,
        per_request_ns: elapsed.as_nanos() as f64 / REQUESTS as f64,
        histogram_record_ns,
        cache_hit_ns,
    };
    println!(
        "ingress/1M: {} served + {} shed in {:.2}s ({:.0} ns/request, {} waves), \
         e2e p50 {:.1} us / p99 {:.1} us, caches {}/{} entries, \
         histogram record {:.1} ns, cache hit {:.1} ns",
        result.served,
        result.shed,
        elapsed.as_secs_f64(),
        result.per_request_ns,
        result.waves,
        result.p50_latency_ns / 1e3,
        result.p99_latency_ns / 1e3,
        result.cache_entries,
        3 * CACHE_CAPACITY,
        result.histogram_record_ns,
        result.cache_hit_ns,
    );
    save_result("micro_ingress", &result);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_ingress
);
criterion_main!(benches);
