//! Figure 4: achievable geometric-mean performance of each pruning
//! technique as the kernel budget sweeps 4..=15, scored on the held-out
//! test set.
//!
//! Paper observations reproduced: at very small budgets the clustering
//! methods clearly beat the naive top-N count baseline; all techniques
//! approach ~95 % as the budget grows; the decision tree is consistently
//! the best (or tied) from 6 configurations upward, peaking at 96.6 %.

use autokernel_bench::{
    banner, paper_dataset, print_table, save_result, standard_split, MODEL_SEED,
};
use autokernel_core::evaluate::achievable_score;
use autokernel_core::PruneMethod;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Fig4 {
    budgets: Vec<usize>,
    /// method name -> achievable score per budget.
    series: BTreeMap<String, Vec<f64>>,
}

fn main() {
    banner(
        "Figure 4 — pruning techniques vs kernel budget (test-set achievable geomean)",
        "clustering >> top-N at small budgets; decision tree best from 6 up (96.6% peak)",
    );
    let ds = paper_dataset();
    let split = standard_split(&ds);
    let budgets: Vec<usize> = (4..=15).collect();

    let mut series: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for method in PruneMethod::all() {
        let mut scores = Vec::new();
        for &budget in &budgets {
            let configs = method
                .select(&ds, &split.train, budget, MODEL_SEED)
                .expect("pruning succeeds");
            scores.push(achievable_score(&ds, &split.test, &configs));
        }
        series.insert(method.name().to_string(), scores);
    }

    let mut headers = vec!["budget".to_string()];
    headers.extend(series.keys().cloned());
    let rows: Vec<Vec<String>> = budgets
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let mut row = vec![b.to_string()];
            row.extend(series.values().map(|s| format!("{:.4}", s[bi])));
            row
        })
        .collect();
    print_table(&headers, &rows);

    // Headline checks.
    let at = |name: &str, budget: usize| series[name][budget - 4];
    println!();
    for b in [4usize, 5] {
        let naive = at("top-N by optimal count", b);
        let best_cluster = ["k-means", "PCA + k-means", "HDBSCAN", "decision tree"]
            .iter()
            .map(|m| at(m, b))
            .fold(0.0f64, f64::max);
        println!(
            "budget {b}: best clustering {best_cluster:.4} vs naive top-N {naive:.4}  ({})",
            if best_cluster > naive {
                "clustering wins, as in the paper"
            } else {
                "UNEXPECTED"
            }
        );
    }
    let tree_peak = series["decision tree"]
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    println!("decision-tree peak achievable: {tree_peak:.4} (paper: 0.966)");

    save_result("fig4_pruning", &Fig4 { budgets, series });
}
