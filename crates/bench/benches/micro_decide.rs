//! Micro-benchmarks of the sub-20 ns decision hot path and the
//! work-stealing shard deque.
//!
//! Three families of numbers land in `bench_results/micro_decide.json`:
//!
//! * **Wall-clock picks** — one warm `decide` through the open-addressed
//!   L1 shape table (hard-asserted `< 20 ns`), the amortised per-pick
//!   cost of `decide_batch` (hard-asserted `< 10 ns`), and the legacy
//!   map-backed `select` path for the before/after table in DESIGN.md
//!   §17. Wide-tolerance gated: shared runners swing.
//! * **Deterministic op proxies** — table probes and atomic RMWs per
//!   pick, counted from the table's actual probe length and the decide
//!   path's published cost model. These are pure functions of the code,
//!   so the gate holds them at the tight 15 % band; a "small" wall-clock
//!   regression that hides inside the 300 % timing band still moves
//!   these counters and fails the gate.
//! * **Steal throughput** — items per second claimed off a
//!   [`StealDeque`] by an owner and three thieves draining it together.

use autokernel_bench::{paper_dataset, save_result};
use autokernel_core::{OnlineConfig, PipelineConfig, StealDeque, TuningPipeline};
use autokernel_gemm::GemmShape;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Hard ceiling on one warm decide, nanoseconds.
const SINGLE_PICK_BUDGET_NS: f64 = 20.0;
/// Hard ceiling on the amortised per-pick cost of a warm batch.
const BATCH_PICK_BUDGET_NS: f64 = 10.0;
/// Requests per `decide_batch` call.
const BATCH_LEN: usize = 256;

#[derive(serde::Serialize)]
struct MicroDecideResult {
    /// One warm `OnlineSelector::decide` (L1 hit), best-of-rounds ns.
    single_pick_ns: f64,
    /// Amortised per-pick ns of a warm `decide_batch` over `batch_len`.
    batch_pick_ns: f64,
    /// The pre-L1 `select` path (sharded map + full telemetry), for the
    /// before/after table.
    legacy_select_ns: f64,
    /// Deterministic proxy: key probes + fixed loads + atomic RMWs for
    /// one warm single pick.
    single_pick_ops: f64,
    /// Deterministic proxy: total probes/loads/RMWs per 1000 batched
    /// picks (batch flush RMWs amortise; stack-local counting adds no
    /// atomics per pick).
    batch_pick_ops_per_kilopick: f64,
    /// Key words examined by the L1 probe for the probe shape.
    probe_length: u64,
    /// Million deque items claimed per second by 1 owner + 3 thieves.
    steal_throughput_mops: f64,
    batch_len: usize,
    single_pick_budget_ns: f64,
    batch_pick_budget_ns: f64,
}

/// Best-of-`rounds` average ns over `reps` calls — the minimum is the
/// standard scheduler-noise filter for nanosecond-scale timings.
fn time_ns(rounds: usize, reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

fn bench_decide(c: &mut Criterion) {
    let ds = paper_dataset();
    let pool: Vec<GemmShape> = ds.shapes.clone();
    let pipeline =
        TuningPipeline::from_dataset(ds, PipelineConfig::default()).expect("pipeline trains");
    let online = pipeline
        .online_selector(OnlineConfig::default())
        .expect("online selector builds");
    let probe = GemmShape::new(3136, 576, 192);

    // Warm every pool shape through the L1 install path, and pin that
    // the u16 fast path agrees with the legacy usize path.
    for shape in pool.iter().chain(std::iter::once(&probe)) {
        let fast = online.decide(shape).expect("decide");
        let slow = online.select(shape).expect("select");
        assert_eq!(fast as usize, slow, "decide diverged from select");
    }

    let mut group = c.benchmark_group("decide_pick");
    group.bench_function("single_l1_hit", |bench| {
        bench.iter(|| black_box(online.decide(black_box(&probe)).unwrap()));
    });
    let batch: Vec<GemmShape> = (0..BATCH_LEN).map(|i| pool[i % pool.len()]).collect();
    let mut out = vec![0u16; BATCH_LEN];
    group.bench_function("batch_256", |bench| {
        bench.iter(|| {
            online.decide_batch(black_box(&batch), &mut out).unwrap();
            black_box(out[0])
        });
    });
    group.finish();

    let single_pick_ns = time_ns(7, 20_000, || {
        black_box(online.decide(black_box(&probe)).unwrap());
    });
    let batch_pick_ns = time_ns(7, 200, || {
        online.decide_batch(black_box(&batch), &mut out).unwrap();
        black_box(out[0]);
    }) / BATCH_LEN as f64;
    let legacy_select_ns = time_ns(7, 20_000, || {
        black_box(online.select(black_box(&probe)).unwrap());
    });

    // The ISSUE's acceptance bars, hard-asserted so the bench itself is
    // the gate even before the JSON comparison runs.
    assert!(
        single_pick_ns < SINGLE_PICK_BUDGET_NS,
        "single warm pick took {single_pick_ns:.1} ns (budget {SINGLE_PICK_BUDGET_NS} ns)"
    );
    assert!(
        batch_pick_ns < BATCH_PICK_BUDGET_NS,
        "amortised batch pick took {batch_pick_ns:.1} ns (budget {BATCH_PICK_BUDGET_NS} ns)"
    );

    // Deterministic op proxies, straight from the shipped cost model
    // and the table's measured probe chain.
    use autokernel_core::decide::cost;
    let table = online.cached().cache().fast_table();
    let probe_length = table
        .probe_length(probe.stable_hash())
        .expect("probe shape installed");
    let single_pick_ops = (probe_length + cost::HIT_EXTRA_LOADS + cost::SINGLE_HIT_RMWS) as f64;
    let batch_probe_ops: u64 = batch
        .iter()
        .map(|s| {
            table
                .probe_length(s.stable_hash())
                .expect("batch shape installed")
                + cost::HIT_EXTRA_LOADS
        })
        .sum();
    let batch_pick_ops_per_kilopick =
        (batch_probe_ops + cost::BATCH_FLUSH_RMWS) as f64 / BATCH_LEN as f64 * 1000.0;

    // Steal throughput: one owner popping, three thieves stealing, over
    // a deque sized like a large wave.
    const ITEMS: u64 = 1 << 16;
    let deque = StealDeque::with_capacity(ITEMS as usize);
    for i in 0..ITEMS {
        assert!(deque.push(i));
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| while deque.steal().is_some() {});
        }
        while deque.pop().is_some() {}
    });
    let steal_throughput_mops = ITEMS as f64 / start.elapsed().as_secs_f64() / 1e6;

    let result = MicroDecideResult {
        single_pick_ns,
        batch_pick_ns,
        legacy_select_ns,
        single_pick_ops,
        batch_pick_ops_per_kilopick,
        probe_length,
        steal_throughput_mops,
        batch_len: BATCH_LEN,
        single_pick_budget_ns: SINGLE_PICK_BUDGET_NS,
        batch_pick_budget_ns: BATCH_PICK_BUDGET_NS,
    };
    println!(
        "decide: single {single_pick_ns:.1} ns (budget {SINGLE_PICK_BUDGET_NS}), \
         batch {batch_pick_ns:.2} ns/pick (budget {BATCH_PICK_BUDGET_NS}), \
         legacy select {legacy_select_ns:.1} ns, probe length {probe_length}, \
         {single_pick_ops:.0} ops/pick, steal {steal_throughput_mops:.1} Mops/s"
    );
    save_result("micro_decide", &result);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_decide
);
criterion_main!(benches);
