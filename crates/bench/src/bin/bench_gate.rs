//! Bench-regression gate: compare candidate bench JSONs against the
//! blessed baselines in `bench_results/`.
//!
//! Usage: `bench_gate <baseline_dir> <candidate_dir>`
//!
//! The tracked metrics and their tolerances live in [`MANIFEST`].
//! Deterministic simulation metrics (drift trip point, oracle-relative
//! geomeans, regrets) get the tight default tolerance: they are pure
//! functions of seeded simulation, so any drift beyond rounding is a
//! real behaviour change. Wall-clock nanosecond metrics are tracked
//! with a deliberately wide tolerance — in smoke mode on shared CI
//! runners they swing with the machine, so the gate only catches
//! order-of-magnitude cliffs (an accidental `O(n^2)`, a lock on the
//! pick path), not percent-level noise. DESIGN.md §12 documents the
//! knobs; `scripts/bench_gate.sh` wires this into CI and re-blesses
//! baselines with `BLESS=1`.
//!
//! Exit status: 0 when every tracked metric is within tolerance,
//! 1 on any regression, 2 on a malformed or missing input.

use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;

/// Which way a metric is allowed to move.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Bigger is better (scores): fail when the candidate drops.
    HigherBetter,
    /// Smaller is better (latencies, regrets): fail when it grows.
    LowerBetter,
}

/// Relative regression allowed on deterministic simulation metrics.
const DEFAULT_TOLERANCE: f64 = 0.15;
/// Relative regression allowed on machine-dependent ns timings.
const TIMING_TOLERANCE: f64 = 3.0;

/// (file stem, metric key, direction, tolerance)
const MANIFEST: &[(&str, &str, Direction, f64)] = &[
    // micro_online: deterministic adaptation quality.
    (
        "micro_online",
        "drift_trip_after_launches",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_online",
        "adaptive_final_geomean",
        Direction::HigherBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_online",
        "static_final_geomean",
        Direction::HigherBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_online",
        "adaptive_final_epoch_regret_s",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    // micro_online: wall-clock pick latencies (smoke guardrails).
    (
        "micro_online",
        "mirror_pick_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_online",
        "adaptive_pick_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    // micro_resilience (saved by the micro_selection target):
    // wall-clock serving-path latencies (smoke guardrails).
    (
        "micro_resilience",
        "plain_submit_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_resilience",
        "resilient_primary_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_resilience",
        "breaker_open_fallback_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_resilience",
        "reference_degrade_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    // micro_ingress: deterministic accounting and memory-bound checks.
    // `silent_drops` has a baseline of exactly 0, so with the relative
    // tolerance computed against max(|baseline|, 1e-12) any candidate
    // that loses even one request fails the gate outright.
    (
        "micro_ingress",
        "silent_drops",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_ingress",
        "cache_entries",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    // micro_ingress: wall-clock end-to-end latency quantiles and host
    // cost per request (smoke guardrails).
    (
        "micro_ingress",
        "p50_latency_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_ingress",
        "p99_latency_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_ingress",
        "per_request_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    // micro_persist: deterministic recovery economics. Both
    // `warm_recovery_launches` and `restore_dropped_sections` have a
    // baseline of exactly 0, so (relative tolerance against
    // max(|baseline|, 1e-12)) any warm restart that relearns, or any
    // clean-snapshot section drop, fails the gate outright.
    (
        "micro_persist",
        "warm_recovery_launches",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_persist",
        "cold_recovery_launches",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_persist",
        "restore_dropped_sections",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    // micro_persist: wall-clock save/restore guardrails (these carry
    // an fsync, so only order-of-magnitude cliffs are interesting).
    (
        "micro_persist",
        "snapshot_save_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_persist",
        "snapshot_restore_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    // micro_analytical: deterministic zero-benchmark selection quality
    // (pure functions of the device model + seeded split), plus the
    // wall-clock cost of one analytical decision — the ISSUE's sub-µs
    // serving claim is additionally hard-asserted inside the bench.
    (
        "micro_analytical",
        "analytical_test_geomean",
        Direction::HigherBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_analytical",
        "analytical_oracle_fraction",
        Direction::HigherBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_analytical",
        "select_among_shipped_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_analytical",
        "rank_all_640_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    // micro_decide: the sub-20 ns decision hot path. Wall-clock numbers
    // sit in the wide timing band (shared runners swing), but the op
    // proxies — table probes + atomic RMWs per pick — are deterministic
    // functions of the code, so they get the tight band: a regression
    // that hides inside the 300 % wall-clock tolerance still moves the
    // counters and fails here.
    (
        "micro_decide",
        "single_pick_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_decide",
        "batch_pick_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_decide",
        "legacy_select_ns",
        Direction::LowerBetter,
        TIMING_TOLERANCE,
    ),
    (
        "micro_decide",
        "single_pick_ops",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_decide",
        "batch_pick_ops_per_kilopick",
        Direction::LowerBetter,
        DEFAULT_TOLERANCE,
    ),
    (
        "micro_decide",
        "steal_throughput_mops",
        Direction::HigherBetter,
        TIMING_TOLERANCE,
    ),
];

fn load(dir: &Path, stem: &str) -> Result<Value, String> {
    let path = dir.join(format!("{stem}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

fn metric(doc: &Value, stem: &str, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{stem}.json has no numeric metric `{key}`"))
}

/// Relative regression of `candidate` vs `baseline` in the bad
/// direction (0 when the candidate is equal or better).
fn regression(direction: Direction, baseline: f64, candidate: f64) -> f64 {
    let scale = baseline.abs().max(1e-12);
    match direction {
        Direction::LowerBetter => (candidate - baseline) / scale,
        Direction::HigherBetter => (baseline - candidate) / scale,
    }
    .max(0.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_dir, candidate_dir) = match (args.get(1), args.get(2)) {
        (Some(b), Some(c)) => (Path::new(b).to_path_buf(), Path::new(c).to_path_buf()),
        _ => {
            eprintln!("usage: bench_gate <baseline_dir> <candidate_dir>");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut errors = 0usize;
    println!(
        "{:<16} {:<30} {:>12} {:>12} {:>9} {:>7}  status",
        "file", "metric", "baseline", "candidate", "delta", "tol"
    );
    for &(stem, key, direction, tolerance) in MANIFEST {
        let row = (|| -> Result<(f64, f64), String> {
            let base = metric(&load(&baseline_dir, stem)?, stem, key)?;
            let cand = metric(&load(&candidate_dir, stem)?, stem, key)?;
            Ok((base, cand))
        })();
        match row {
            Ok((base, cand)) => {
                let delta = regression(direction, base, cand);
                let status = if delta > tolerance {
                    failures += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{:<16} {:<30} {:>12.4} {:>12.4} {:>8.1}% {:>6.0}%  {status}",
                    stem,
                    key,
                    base,
                    cand,
                    delta * 100.0,
                    tolerance * 100.0
                );
            }
            Err(e) => {
                errors += 1;
                println!("{stem:<16} {key:<30} ERROR: {e}");
            }
        }
    }

    if errors > 0 {
        eprintln!("\nbench_gate: {errors} metric(s) unreadable");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "\nbench_gate: {failures} metric(s) regressed beyond tolerance \
             (re-bless with BLESS=1 scripts/bench_gate.sh if intentional)"
        );
        return ExitCode::from(1);
    }
    println!(
        "\nbench_gate: all {} tracked metrics within tolerance",
        MANIFEST.len()
    );
    ExitCode::SUCCESS
}
