//! Shared plumbing for the benchmark harness: dataset assembly, the
//! paper's canonical split, table formatting and result persistence.
//!
//! Each `benches/*.rs` target regenerates one figure or table of the
//! paper (see DESIGN.md §4 for the index) and appends its numbers to
//! `bench_results/` so EXPERIMENTS.md can cite them.

use autokernel_core::PerformanceDataset;
use autokernel_mlkit::model_selection::{train_test_split, TrainTestSplit};
use autokernel_sycl_sim::DeviceSpec;
use std::path::PathBuf;

/// The split seed every figure/table target shares, so their numbers are
/// mutually consistent (136 train / 34 test, as in the paper).
pub const SPLIT_SEED: u64 = 42;

/// Master seed for clustering restarts / ensembles in the harness.
pub const MODEL_SEED: u64 = 7;

/// Collect the full 170-shape paper dataset on the R9 Nano model.
pub fn paper_dataset() -> PerformanceDataset {
    PerformanceDataset::collect_paper_dataset(&DeviceSpec::amd_r9_nano())
        .expect("paper dataset collects")
}

/// Collect the paper dataset on an arbitrary device.
pub fn paper_dataset_on(device: &DeviceSpec) -> PerformanceDataset {
    PerformanceDataset::collect_paper_dataset(device).expect("paper dataset collects")
}

/// The canonical 136/34 split of a 170-row dataset.
pub fn standard_split(ds: &PerformanceDataset) -> TrainTestSplit {
    train_test_split(ds.n_shapes(), 0.2, SPLIT_SEED)
}

/// Print a banner for a figure/table target.
pub fn banner(title: &str, paper_claim: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("paper: {paper_claim}");
    println!("{}", "=".repeat(72));
}

/// Directory where bench targets drop their JSON results.
///
/// Defaults to the committed `bench_results/` at the workspace root.
/// Setting `AUTOKERNEL_BENCH_DIR` redirects the output — the
/// regression gate (`scripts/bench_gate.sh`) uses this to collect
/// candidate numbers in a scratch directory without clobbering the
/// blessed baselines it compares against.
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var_os("AUTOKERNEL_BENCH_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results"),
    };
    std::fs::create_dir_all(&dir).expect("bench results dir creates");
    dir
}

/// Persist a serialisable result under `bench_results/<name>.json`.
pub fn save_result<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("result serialises");
    std::fs::write(&path, json).expect("result writes");
    println!("\n[saved {}]", path.display());
}

/// Render a simple aligned table: a header row and data rows.
pub fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        #[allow(clippy::needless_range_loop)]
        for c in 0..ncols {
            let cell = cells.get(c).map(String::as_str).unwrap_or("");
            s.push_str(&format!("{cell:>width$}  ", width = widths[c]));
        }
        println!("{}", s.trim_end());
    };
    line(headers);
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_split_is_136_34() {
        let ds = paper_dataset();
        let split = standard_split(&ds);
        assert_eq!(split.train.len(), 136);
        assert_eq!(split.test.len(), 34);
    }

    #[test]
    fn results_dir_exists_after_call() {
        assert!(results_dir().is_dir());
    }
}
