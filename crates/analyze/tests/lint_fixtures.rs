//! Fixture tests for the hot-path linter: the deliberately violating
//! file under `tests/fixtures/` (never compiled by Cargo) must produce
//! exactly the expected rule hits, `lint:allow` must suppress, and
//! `#[cfg(test)]` code must be exempt.

use autokernel_analyze::{lint_file, Rule};
use std::path::Path;

fn fixture() -> Vec<autokernel_analyze::Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations.rs");
    lint_file(&path).expect("fixture file is readable")
}

#[test]
fn fixture_violations_carry_the_right_rules_and_lines() {
    let violations = fixture();
    let got: Vec<(usize, &'static str)> =
        violations.iter().map(|v| (v.line, v.rule.id())).collect();
    assert_eq!(
        got,
        vec![
            (12, "no-unwrap"),
            (13, "no-expect"),
            (15, "no-panic"),
            (17, "no-index"),
            (18, "no-partial-cmp"),
            (18, "no-index"),
            (23, "no-todo"),
            (27, "no-unimplemented"),
        ],
        "full violation list: {violations:#?}"
    );
}

#[test]
fn lint_allow_suppresses_and_nothing_else_leaks() {
    let violations = fixture();
    // The `suppressed` function's two indexed accesses (lines 32-33)
    // carry allow comments — neither may appear.
    assert!(
        violations.iter().all(|v| !(30..=35).contains(&v.line)),
        "lint:allow must suppress the annotated lines: {violations:#?}"
    );
}

#[test]
fn cfg_test_code_is_exempt() {
    let violations = fixture();
    // The trailing #[cfg(test)] module unwraps on line 41 — exempt.
    assert!(
        violations.iter().all(|v| v.line < 37),
        "test-only code must not be linted: {violations:#?}"
    );
    assert!(
        violations.iter().any(|v| v.rule == Rule::NoUnwrap),
        "the same construct outside tests is still flagged"
    );
}

#[test]
fn snippets_point_at_the_offending_source() {
    let violations = fixture();
    let unwrap = violations
        .iter()
        .find(|v| v.rule == Rule::NoUnwrap)
        .expect("unwrap violation present");
    assert!(unwrap.snippet.contains("unwrap()"), "{}", unwrap.snippet);
    assert!(unwrap.file.ends_with("violations.rs"));
    // Display form is file:line: [rule] snippet — what the binary prints.
    let line = unwrap.to_string();
    assert!(line.contains(":12:"), "{line}");
    assert!(line.contains("[no-unwrap]"), "{line}");
}
