//! Fixture tests for the hot-path linter: the deliberately violating
//! files under `tests/fixtures/` (never compiled by Cargo) must produce
//! exactly the expected rule hits, `lint:allow` and `lint:allow-fn`
//! must suppress, `#[cfg(test)]` code must be exempt, and the
//! decide-path `no-alloc` rule must apply only to decide-path file
//! names.

use autokernel_analyze::{lint_file, rules_for, Rule, DECIDE_PATH_FILES, TOTAL_CMP_FILES};
use std::path::Path;

fn fixture() -> Vec<autokernel_analyze::Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations.rs");
    lint_file(&path).expect("fixture file is readable")
}

fn alloc_fixture() -> Vec<autokernel_analyze::Violation> {
    // Named `cache.rs` so `rules_for` turns the no-alloc rule on.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/alloc/cache.rs");
    lint_file(&path).expect("fixture file is readable")
}

#[test]
fn fixture_violations_carry_the_right_rules_and_lines() {
    let violations = fixture();
    let got: Vec<(usize, &'static str)> =
        violations.iter().map(|v| (v.line, v.rule.id())).collect();
    assert_eq!(
        got,
        vec![
            (12, "no-unwrap"),
            (13, "no-expect"),
            (15, "no-panic"),
            (17, "no-index"),
            (18, "no-partial-cmp"),
            (18, "no-index"),
            (23, "no-todo"),
            (27, "no-unimplemented"),
        ],
        "full violation list: {violations:#?}"
    );
}

#[test]
fn lint_allow_suppresses_and_nothing_else_leaks() {
    let violations = fixture();
    // The `suppressed` function's two indexed accesses (lines 32-33)
    // carry allow comments — neither may appear.
    assert!(
        violations.iter().all(|v| !(30..=35).contains(&v.line)),
        "lint:allow must suppress the annotated lines: {violations:#?}"
    );
}

#[test]
fn cfg_test_code_is_exempt() {
    let violations = fixture();
    // The trailing #[cfg(test)] module unwraps on line 41 — exempt.
    assert!(
        violations.iter().all(|v| v.line < 37),
        "test-only code must not be linted: {violations:#?}"
    );
    assert!(
        violations.iter().any(|v| v.rule == Rule::NoUnwrap),
        "the same construct outside tests is still flagged"
    );
}

#[test]
fn alloc_fixture_flags_every_allocation_idiom() {
    let violations = alloc_fixture();
    let got: Vec<(usize, &'static str)> = violations
        .iter()
        .filter(|v| v.rule == Rule::NoAlloc)
        .map(|v| (v.line, v.rule.id()))
        .collect();
    // One violation per allocating line in `decide`: Vec::new, push,
    // to_vec, clone, Box::new, String::from, format!.
    assert_eq!(
        got,
        vec![
            (6, "no-alloc"),
            (7, "no-alloc"),
            (8, "no-alloc"),
            (9, "no-alloc"),
            (10, "no-alloc"),
            (11, "no-alloc"),
            (12, "no-alloc"),
        ],
        "full violation list: {violations:#?}"
    );
}

#[test]
fn allow_fn_suppresses_the_whole_item_and_allow_the_line() {
    let violations = alloc_fixture();
    // `warm_up` (lines 16-21) carries lint:allow-fn(no-alloc); its
    // Vec::new/push/to_vec must all be suppressed.
    assert!(
        violations.iter().all(|v| !(16..=21).contains(&v.line)),
        "lint:allow-fn must cover the whole function body: {violations:#?}"
    );
    // The single line-level allow in `partially_allowed` (line 25).
    assert!(
        violations.iter().all(|v| v.line != 25),
        "lint:allow must suppress the annotated line: {violations:#?}"
    );
    // And test-only allocation (lines 29+) is exempt.
    assert!(
        violations.iter().all(|v| v.line < 29),
        "cfg(test) allocation must be exempt: {violations:#?}"
    );
}

#[test]
fn no_alloc_applies_only_to_decide_path_file_names() {
    for file in DECIDE_PATH_FILES {
        assert!(
            rules_for(file).contains(&Rule::NoAlloc),
            "{file} must carry the no-alloc rule"
        );
    }
    // The executor around the deque allocates legitimately (arenas,
    // leftover batches); only the deque itself is on the steal path.
    for file in ["ingress.rs", "sched.rs", "violations.rs"] {
        assert!(
            !rules_for(file).contains(&Rule::NoAlloc),
            "{file} must not carry the no-alloc rule"
        );
    }
    // The panic-safety fixture allocates freely and must stay exactly
    // as clean of no-alloc hits as before the rule existed.
    assert!(fixture().iter().all(|v| v.rule != Rule::NoAlloc));
}

#[test]
fn deque_fixture_flags_steal_path_allocations() {
    // Named `deque.rs`, so the decide-path `no-alloc` rule applies to
    // the steal path exactly as it does to the decide path.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/alloc/deque.rs");
    let violations = lint_file(&path).expect("fixture file is readable");
    let got: Vec<(usize, &'static str)> = violations
        .iter()
        .filter(|v| v.rule == Rule::NoAlloc)
        .map(|v| (v.line, v.rule.id()))
        .collect();
    // One per allocating line in `steal_all`: Vec::new, push, to_vec,
    // clone, Box::new.
    assert_eq!(
        got,
        vec![
            (6, "no-alloc"),
            (7, "no-alloc"),
            (8, "no-alloc"),
            (9, "no-alloc"),
            (10, "no-alloc"),
        ],
        "full violation list: {violations:#?}"
    );
    // The allow-fn'd cold constructor (lines 15-19) and test module
    // (lines 22+) stay clean.
    assert!(
        violations.iter().all(|v| (6..=10).contains(&v.line)),
        "only steal_all may be flagged: {violations:#?}"
    );
}

fn sweep_fixture() -> Vec<autokernel_analyze::Violation> {
    // Path suffix matches a TOTAL_CMP_FILES entry, so only the
    // no-partial-cmp rule applies.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/sweep/crates/mlkit/src/eigen.rs");
    lint_file(&path).expect("fixture file is readable")
}

#[test]
fn sweep_fixture_flags_sort_comparators_and_nothing_else() {
    let violations = sweep_fixture();
    let got: Vec<(usize, &'static str)> =
        violations.iter().map(|v| (v.line, v.rule.id())).collect();
    assert_eq!(
        got,
        vec![(7, "no-partial-cmp"), (12, "no-partial-cmp")],
        "full violation list: {violations:#?}"
    );
}

#[test]
fn total_cmp_files_carry_only_the_partial_cmp_rule() {
    for file in TOTAL_CMP_FILES {
        assert_eq!(
            rules_for(file),
            vec![Rule::NoPartialCmp],
            "{file} must carry exactly the no-partial-cmp rule"
        );
        // Absolute invocations (as from CI working dirs) must agree.
        let absolute = format!("/some/checkout/{file}");
        assert_eq!(rules_for(&absolute), vec![Rule::NoPartialCmp]);
    }
    // Hot-path files keep the full panic-safety set.
    assert!(rules_for("crates/core/src/online.rs").contains(&Rule::NoUnwrap));
}

#[test]
fn snippets_point_at_the_offending_source() {
    let violations = fixture();
    let unwrap = violations
        .iter()
        .find(|v| v.rule == Rule::NoUnwrap)
        .expect("unwrap violation present");
    assert!(unwrap.snippet.contains("unwrap()"), "{}", unwrap.snippet);
    assert!(unwrap.file.ends_with("violations.rs"));
    // Display form is file:line: [rule] snippet — what the binary prints.
    let line = unwrap.to_string();
    assert!(line.contains(":12:"), "{line}");
    assert!(line.contains("[no-unwrap]"), "{line}");
}
