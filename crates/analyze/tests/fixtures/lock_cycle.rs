//! Deliberate AB/BA lock-order inversion for the concurrency-audit
//! fixtures: `transfer` takes `ledger` before `journal`, `reconcile`
//! the reverse, so the lock graph has a two-node cycle. Never compiled
//! by Cargo.

pub fn transfer(a: &Account, b: &Account, amount: i64) {
    let mut from = a.ledger.lock();
    let mut to = b.journal.lock();
    *from -= amount;
    *to += amount;
}

pub fn reconcile(a: &Account, b: &Account) -> i64 {
    let to = b.journal.lock();
    let from = a.ledger.lock();
    *to - *from
}
