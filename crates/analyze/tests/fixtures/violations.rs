//! Deliberately violating fixture for the hot-path linter.
//!
//! This file lives under `tests/fixtures/` so Cargo never compiles it;
//! it exists to prove the linter (and the `hotpath_lint` binary) flag
//! each banned construct with the right rule id, honour the
//! `lint:allow` escape hatch, and skip `#[cfg(test)]` code. Line
//! numbers matter to `lint_fixtures.rs` — edit with care.

use std::collections::HashMap;

pub fn serve(xs: &[f64], i: usize, table: &HashMap<u32, f64>) -> f64 {
    let first = table.get(&0).unwrap(); // line 12: no-unwrap
    let second = table.get(&1).expect("missing key"); // line 13: no-expect
    if xs.is_empty() {
        panic!("empty input"); // line 15: no-panic
    }
    let head = xs[i]; // line 17: no-index
    let _ = xs[i + 1].partial_cmp(&head); // line 18: no-partial-cmp + no-index
    first + second + head
}

pub fn not_yet() {
    todo!() // line 23: no-todo
}

pub fn never() {
    unimplemented!() // line 27: no-unimplemented
}

pub fn suppressed(xs: &[f64], i: usize) -> f64 {
    // lint:allow(no-index) -- bounds proven by the caller's contract
    let a = xs[i];
    let b = xs[i + 1]; // lint:allow(no-index)
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // exempt: inside #[cfg(test)]
    }
}
