//! Deliberate steal-path allocation violations for the `no-alloc`
//! lint fixtures. Named `deque.rs` so `rules_for` applies the
//! decide-path rule set; never compiled by Cargo.

pub fn steal_all(items: &[u64]) -> usize {
    let mut claimed: Vec<u64> = Vec::new();
    claimed.push(items.len() as u64);
    let ring = items.to_vec();
    let spare = ring.clone();
    let boxed = Box::new(spare);
    boxed.len() + claimed.len()
}

// lint:allow-fn(no-alloc) cold path: ring built before workers spawn
pub fn build_ring(capacity: usize) -> Vec<u64> {
    let mut ring = Vec::new();
    ring.push(capacity as u64);
    ring
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_alloc_is_exempt() {
        let ring = [1u64, 2].to_vec();
        assert_eq!(ring.clone().len(), 2);
    }
}
