//! Deliberate decide-path allocation violations for the `no-alloc`
//! lint fixtures. Named `cache.rs` so `rules_for` applies the
//! decide-path rule set; never compiled by Cargo.

pub fn decide(xs: &[u32]) -> u32 {
    let mut v: Vec<u32> = Vec::new();
    v.push(1);
    let copy = xs.to_vec();
    let owned = copy.clone();
    let boxed = Box::new(owned);
    let label = String::from("decide");
    let msg = format!("{label}: {}", boxed.len());
    msg.len() as u32 + v[0]
}

// lint:allow-fn(no-alloc) cold path: runs once at startup
pub fn warm_up() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(0);
    v.to_vec()
}

pub fn partially_allowed() -> usize {
    // lint:allow(no-alloc) justified one-off
    let v = [1u32].to_vec();
    v.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_alloc_is_exempt() {
        let v = [1u32, 2].to_vec();
        assert_eq!(v.clone().len(), 2);
    }
}
