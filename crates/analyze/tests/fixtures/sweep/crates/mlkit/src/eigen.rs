//! Deliberately violating fixture for the NaN-ordering sweep set: the
//! path ends in `crates/mlkit/src/eigen.rs`, so `rules_for` applies
//! only `no-partial-cmp`. The unwrap and non-literal indexing below are
//! training-time idiom and must NOT be flagged; both comparators MUST.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 7: no-partial-cmp
}

pub fn pick_min(xs: &[(usize, f64)]) -> usize {
    xs.iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()) // line 12: no-partial-cmp
        .map(|p| p.0)
        .unwrap() // exempt: panic-safety rules do not apply to this set
}

pub fn first(xs: &[f64], i: usize) -> f64 {
    xs[i + 1] // exempt: panic-safety rules do not apply to this set
}
