//! Static analysis of the 640-point kernel configuration space.
//!
//! [`KernelSpaceAnalyzer`] classifies every [`KernelConfig`] against a
//! device *without running anything*: a config is `Invalid` when the
//! shared resource model ([`autokernel_sycl_sim::resources`]) proves the
//! runtime would reject its launch, `Degraded` when it launches but
//! cannot keep enough waves resident to hide memory latency, and
//! `Valid` otherwise. A second pass flags *dominated* configurations —
//! same compile-time tile, pointwise no better on any static resource
//! axis than a sibling work-group shape, strictly worse on at least one.
//!
//! Validity is **shape-independent** by construction: the three checks
//! in [`check_launch`] read only the work-group size and the per-group
//! LDS demand, both functions of the configuration alone. The analyzer
//! therefore evaluates a single canonical shape and its `Invalid`
//! verdicts hold for *every* shape — the agreement property test in
//! `tests/static_analysis.rs` pins this.

use autokernel_gemm::{model, GemmShape, KernelConfig};
use autokernel_sycl_sim::resources::{check_launch, footprint, ResourceFootprint};
use autokernel_sycl_sim::{DeviceSpec, ResourceKind, SimError};
use serde::{Deserialize, Serialize};

/// Occupancy below which a launchable configuration is flagged
/// [`Verdict::Degraded`]: under a quarter of the device's resident-wave
/// budget leaves too little latency hiding to be competitive.
pub const DEGRADED_OCCUPANCY: f64 = 0.25;

/// The analyzer's judgement of one configuration on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Launchable with healthy occupancy.
    Valid,
    /// The runtime would reject the launch: the configuration demands
    /// more of `resource` than the device has. Mirrors
    /// [`autokernel_sycl_sim::ResourceExhaustion`] exactly.
    Invalid {
        /// The over-subscribed resource.
        resource: ResourceKind,
        /// What the launch would request.
        requested: usize,
        /// What the device offers.
        limit: usize,
    },
    /// Launchable, but occupancy falls below [`DEGRADED_OCCUPANCY`].
    Degraded {
        /// The achieved fraction of the resident-wave budget.
        occupancy: f64,
    },
}

impl Verdict {
    /// Whether the runtime would reject this configuration at submit.
    pub fn is_invalid(&self) -> bool {
        matches!(self, Verdict::Invalid { .. })
    }

    /// Stable diagnostic rule id for reporting.
    pub fn rule_id(&self) -> &'static str {
        match self {
            Verdict::Valid => "valid",
            Verdict::Invalid {
                resource: ResourceKind::WorkGroupSize,
                ..
            } => "invalid-work-group",
            Verdict::Invalid {
                resource: ResourceKind::Lanes,
                ..
            } => "invalid-lanes",
            Verdict::Invalid {
                resource: ResourceKind::Lds,
                ..
            } => "invalid-lds",
            Verdict::Degraded { .. } => "degraded-occupancy",
        }
    }
}

/// Everything the analyzer knows about one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigAnalysis {
    /// Stable index into [`KernelConfig::all`].
    pub config_index: usize,
    /// Display name (`T4x8A2_WG16x16`).
    pub name: String,
    /// The validity/degradation verdict.
    pub verdict: Verdict,
    /// Static resource demands and modelled occupancy.
    pub footprint: ResourceFootprint,
    /// Modelled DRAM coalescing efficiency at the canonical shape.
    pub coalescing: f64,
    /// Modelled cache-reuse fraction at the canonical shape.
    pub cache_reuse: f64,
    /// Index of a sibling configuration that dominates this one
    /// (pointwise no worse on every axis, strictly better on one), if
    /// the dominance pass found one.
    pub dominated_by: Option<usize>,
}

impl ConfigAnalysis {
    /// Whether the dominance pass flagged this configuration.
    pub fn is_dominated(&self) -> bool {
        self.dominated_by.is_some()
    }
}

/// The full analysis of one device's view of the configuration space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceAnalysis {
    /// Display name of the analysed device.
    pub device: String,
    /// Canonical GEMM shape the shape-dependent axes were evaluated at.
    pub shape: GemmShape,
    /// Per-configuration results, ordered by [`KernelConfig::index`].
    pub configs: Vec<ConfigAnalysis>,
}

impl SpaceAnalysis {
    /// Count of configurations with the given predicate.
    fn count(&self, f: impl Fn(&ConfigAnalysis) -> bool) -> usize {
        self.configs.iter().filter(|c| f(c)).count()
    }

    /// Configurations the runtime would accept with healthy occupancy.
    pub fn valid_count(&self) -> usize {
        self.count(|c| matches!(c.verdict, Verdict::Valid))
    }

    /// Configurations the runtime would reject at submit.
    pub fn invalid_count(&self) -> usize {
        self.count(|c| c.verdict.is_invalid())
    }

    /// Launchable configurations with starved occupancy.
    pub fn degraded_count(&self) -> usize {
        self.count(|c| matches!(c.verdict, Verdict::Degraded { .. }))
    }

    /// Configurations flagged by the dominance pass.
    pub fn dominated_count(&self) -> usize {
        self.count(ConfigAnalysis::is_dominated)
    }

    /// `mask[i]` is true iff config `i` is statically invalid — the
    /// pre-prune mask the tuning pipeline consumes.
    pub fn invalid_mask(&self) -> Vec<bool> {
        self.configs
            .iter()
            .map(|c| c.verdict.is_invalid())
            .collect()
    }

    /// `mask[i]` is true iff config `i` is dominated by a sibling.
    pub fn dominated_mask(&self) -> Vec<bool> {
        self.configs
            .iter()
            .map(ConfigAnalysis::is_dominated)
            .collect()
    }

    /// Fitness of a shipped configuration set on this device, in
    /// `[0, 1]`: the mean per-config score over `shipped`, where a
    /// `Valid` config scores 1, a `Degraded` one scores below 0.5 in
    /// proportion to how far its occupancy falls under the
    /// [`DEGRADED_OCCUPANCY`] threshold, and an `Invalid` one scores 0.
    /// A fleet scheduler's perf-aware routing policy uses this to
    /// discount devices whose shipped set mostly cannot launch — their
    /// traffic would land on fallback rungs or the reference GEMM.
    pub fn shipped_fitness(&self, shipped: &[usize]) -> f64 {
        if shipped.is_empty() {
            return 0.0;
        }
        let total: f64 = shipped
            .iter()
            .map(|&i| match self.configs.get(i).map(|c| c.verdict) {
                Some(Verdict::Valid) => 1.0,
                Some(Verdict::Degraded { occupancy }) => {
                    0.5 * (occupancy / DEGRADED_OCCUPANCY).clamp(0.0, 1.0)
                }
                Some(Verdict::Invalid { .. }) | None => 0.0,
            })
            .sum();
        total / shipped.len() as f64
    }
}

/// Offline analyzer for the GEMM kernel configuration space.
///
/// ```
/// use autokernel_analyze::KernelSpaceAnalyzer;
/// use autokernel_sycl_sim::DeviceSpec;
///
/// let analysis = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
///     .analyze()
///     .unwrap();
/// assert_eq!(analysis.configs.len(), 640);
/// assert!(analysis.invalid_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct KernelSpaceAnalyzer {
    device: DeviceSpec,
    shape: GemmShape,
}

impl KernelSpaceAnalyzer {
    /// Analyzer for `device` at the canonical 1024³ shape.
    pub fn new(device: DeviceSpec) -> Self {
        KernelSpaceAnalyzer {
            device,
            shape: GemmShape::new(1024, 1024, 1024),
        }
    }

    /// Override the canonical shape (validity verdicts do not depend on
    /// it; the degradation and dominance axes do).
    pub fn with_shape(mut self, shape: GemmShape) -> Self {
        self.shape = shape;
        self
    }

    /// The device under analysis.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Classify every configuration and run the dominance pass.
    pub fn analyze(&self) -> Result<SpaceAnalysis, SimError> {
        let all = KernelConfig::all();
        let mut configs = Vec::with_capacity(all.len());
        for cfg in &all {
            let range = model::launch_range(cfg, &self.shape)?;
            let profile = model::profile(cfg, &self.shape, &self.device);
            let fp = footprint(&self.device, &profile, &range);
            let verdict = match check_launch(&self.device, &profile, &range) {
                Err(e) => Verdict::Invalid {
                    resource: e.resource,
                    requested: e.requested,
                    limit: e.limit,
                },
                Ok(()) if fp.occupancy < DEGRADED_OCCUPANCY => Verdict::Degraded {
                    occupancy: fp.occupancy,
                },
                Ok(()) => Verdict::Valid,
            };
            configs.push(ConfigAnalysis {
                config_index: cfg.index(),
                name: cfg.to_string(),
                verdict,
                footprint: fp,
                coalescing: model::coalescing(cfg, &self.device, &self.shape),
                cache_reuse: model::cache_reuse(cfg, &self.shape),
                dominated_by: None,
            });
        }
        mark_dominated(&all, &mut configs);
        Ok(SpaceAnalysis {
            device: self.device.name.clone(),
            shape: self.shape,
            configs,
        })
    }
}

/// Dominance pass: within each compile-time tile (same `tile_rows`,
/// `tile_cols`, `acc_depth` — so identical per-item work and register
/// demand), configuration `a` dominates `b` when `a` is pointwise no
/// worse on every static axis — LDS demand, modelled occupancy,
/// coalescing, cache reuse — and strictly better on at least one.
/// Invalid configurations neither dominate nor are marked dominated
/// (they are already pruned outright).
fn mark_dominated(all: &[KernelConfig], configs: &mut [ConfigAnalysis]) {
    for b in 0..configs.len() {
        if configs[b].verdict.is_invalid() {
            continue;
        }
        for a in 0..configs.len() {
            if a == b || configs[a].verdict.is_invalid() {
                continue;
            }
            let same_tile = all[a].tile_rows == all[b].tile_rows
                && all[a].tile_cols == all[b].tile_cols
                && all[a].acc_depth == all[b].acc_depth;
            if !same_tile {
                continue;
            }
            let (ca, cb) = (&configs[a], &configs[b]);
            let no_worse = ca.footprint.lds_bytes_per_group <= cb.footprint.lds_bytes_per_group
                && ca.footprint.occupancy >= cb.footprint.occupancy
                && ca.coalescing >= cb.coalescing
                && ca.cache_reuse >= cb.cache_reuse;
            let strictly_better = ca.footprint.lds_bytes_per_group
                < cb.footprint.lds_bytes_per_group
                || ca.footprint.occupancy > cb.footprint.occupancy
                || ca.coalescing > cb.coalescing
                || ca.cache_reuse > cb.cache_reuse;
            if no_worse && strictly_better {
                configs[b].dominated_by = Some(configs[a].config_index);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nano_space_is_fully_launchable() {
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::amd_r9_nano())
            .analyze()
            .unwrap();
        assert_eq!(analysis.configs.len(), KernelConfig::count());
        assert_eq!(analysis.invalid_count(), 0);
        // Register-hungry 8×8 tiles still degrade occupancy.
        assert!(analysis.degraded_count() > 0);
    }

    #[test]
    fn edge_dsp_rejects_large_groups_lanes_and_lds() {
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
            .analyze()
            .unwrap();
        let rule = |id: &str| {
            analysis
                .configs
                .iter()
                .filter(|c| c.verdict.rule_id() == id)
                .count()
        };
        assert!(rule("invalid-work-group") > 0, "256-item groups over limit");
        assert!(rule("invalid-lanes") > 0, "128-item groups over 64 lanes");
        assert!(rule("invalid-lds") > 0, "big staging tiles over 8 KiB");
        assert!(analysis.valid_count() > 0, "some configs must survive");
    }

    #[test]
    fn verdicts_agree_with_runtime_validation() {
        use autokernel_sycl_sim::validate_launch;
        let device = DeviceSpec::edge_dsp();
        let analysis = KernelSpaceAnalyzer::new(device.clone()).analyze().unwrap();
        let shape = GemmShape::new(1024, 1024, 1024);
        for (cfg, result) in KernelConfig::all().iter().zip(&analysis.configs) {
            let range = model::launch_range(cfg, &shape).unwrap();
            let profile = model::profile(cfg, &shape, &device);
            let runtime = validate_launch(&device, &profile, &range);
            match (&result.verdict, runtime) {
                (
                    Verdict::Invalid {
                        resource,
                        requested,
                        limit,
                    },
                    Err(SimError::Exhausted(e)),
                ) => {
                    assert_eq!(*resource, e.resource);
                    assert_eq!(*requested, e.requested);
                    assert_eq!(*limit, e.limit);
                }
                (Verdict::Valid | Verdict::Degraded { .. }, Ok(())) => {}
                (v, r) => panic!("{}: analyzer {v:?} vs runtime {r:?}", cfg),
            }
        }
    }

    #[test]
    fn dominance_flags_a_strictly_worse_sibling() {
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::amd_r9_nano())
            .analyze()
            .unwrap();
        assert!(analysis.dominated_count() > 0);
        // A dominator must share the compile-time tile and be at least
        // as good everywhere.
        for c in analysis.configs.iter().filter(|c| c.is_dominated()) {
            let d = &analysis.configs[c.dominated_by.unwrap()];
            let (ka, kb) = (
                KernelConfig::from_index(d.config_index).unwrap(),
                KernelConfig::from_index(c.config_index).unwrap(),
            );
            assert_eq!(
                (ka.tile_rows, ka.tile_cols, ka.acc_depth),
                (kb.tile_rows, kb.tile_cols, kb.acc_depth)
            );
            assert!(!d.verdict.is_invalid());
            assert!(d.footprint.lds_bytes_per_group <= c.footprint.lds_bytes_per_group);
            assert!(d.footprint.occupancy >= c.footprint.occupancy);
            assert!(d.coalescing >= c.coalescing);
            assert!(d.cache_reuse >= c.cache_reuse);
        }
    }

    #[test]
    fn shipped_fitness_ranks_devices_by_launchability() {
        let nano = KernelSpaceAnalyzer::new(DeviceSpec::amd_r9_nano())
            .analyze()
            .unwrap();
        let edge = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
            .analyze()
            .unwrap();
        // Configs valid on the nano but provably unlaunchable on the
        // edge DSP: max fitness on one device, zero on the other.
        let split_set: Vec<usize> = nano
            .configs
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Valid))
            .map(|c| c.config_index)
            .filter(|&i| edge.configs[i].verdict.is_invalid())
            .take(6)
            .collect();
        assert!(!split_set.is_empty());
        assert_eq!(nano.shipped_fitness(&split_set), 1.0);
        assert_eq!(edge.shipped_fitness(&split_set), 0.0);
        // Degenerate inputs stay in range.
        assert_eq!(nano.shipped_fitness(&[]), 0.0);
        assert_eq!(nano.shipped_fitness(&[usize::MAX]), 0.0);
        let f = edge.shipped_fitness(&(0..640).collect::<Vec<_>>());
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn invalid_configs_never_flagged_dominated() {
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
            .analyze()
            .unwrap();
        for c in &analysis.configs {
            if c.verdict.is_invalid() {
                assert!(c.dominated_by.is_none());
            }
        }
    }
}
