//! Loom-lite deterministic interleaving model checker.
//!
//! The static audit in [`crate::concurrency`] checks that every atomic
//! site *declares* an ordering contract; this module checks that the
//! *protocols built from those sites* are actually correct, by
//! exhaustively exploring thread interleavings of small-bound models of
//! the hand-rolled primitives:
//!
//! - the crossbeam channel shim (bounded queue, two condvars, sender
//!   disconnect with `notify_all`),
//! - the `ShardedCache` bounded-LRU insert path with CountingBloom
//!   admission,
//! - `LatencyHistogram::record`'s bucket-then-count publication,
//! - the `OnlineSelector` drift flip (generation bump published before
//!   the adaptive flag),
//! - the ingress `submitted == served + shed` accounting identity with
//!   tenant hold/release, and
//! - the `StealDeque` owner-pop vs thief-steal protocol (slot written
//!   Relaxed, published by a Release store on `bottom`; the SeqCst
//!   claim race on the last item).
//!
//! **How it explores.** CHESS-style stateless search: a model is a
//! deterministic function of a *decision tape*. Every nondeterministic
//! point — which runnable thread steps next, which visible write a load
//! observes, which waiter a `notify_one` wakes — calls
//! [`Trace::choose`], which replays a recorded decision or records a
//! new zero. After each complete execution the explorer backtracks by
//! incrementing the last decision that has alternatives left and
//! truncating the tape after it, re-running the model from scratch.
//! The search is seed-free, fully deterministic, and exhaustive at the
//! configured bounds; a violation's counterexample *is* the tape.
//!
//! **Memory model.** Mutex-protected state takes coarse atomic critical
//! sections (sound for data races — interleavings inside a region the
//! lock serialises are invisible — while still catching protocol bugs:
//! lost wakeups, missed notifies, check-then-act races). Atomics get an
//! operational release/acquire model ([`WeakMemory`]): each location
//! keeps an append-only write history; a `Release` write captures the
//! writer's view (per-location visibility floors); a load chooses *any*
//! write at or after the thread's floor, and an `Acquire` load of a
//! released write joins the writer's captured view. RMWs always read
//! the latest write (modification-order atomicity) and carry the read
//! write's view forward, modelling C++20 release sequences. `SeqCst`
//! is treated as `AcqRel`: the checker models coherence + RA
//! synchronisation, not the SC total order — none of the audited
//! protocols rely on it.
//!
//! **What the bounds prove.** Exhaustive at 2–3 threads and one or two
//! operations per thread: enough to exhibit every two-party ordering
//! bug seeded in the mutation suite (weakened `Release`, reordered
//! publication, torn read-modify-write, missing `notify_all`, leaked
//! tenant slot), and small enough to finish in well under a second.
//! They are *not* a proof for unbounded thread counts.
//!
//! [`self_check`] runs every faithful model (expecting a clean
//! exhaustive pass) and every seeded mutation (expecting the checker to
//! catch it); the `concurrency_audit` binary folds the rows into the
//! SARIF report, pinning the exact execution counts in the golden.

use crate::concurrency::ModelCheckRow;

/// One recorded nondeterministic decision.
#[derive(Debug, Clone)]
struct Decision {
    chosen: usize,
    limit: usize,
}

/// Replayable decision tape driving one execution of a model.
#[derive(Debug, Default)]
pub struct Trace {
    decisions: Vec<Decision>,
    cursor: usize,
}

impl Trace {
    /// Resolve a nondeterministic point with `n` alternatives,
    /// returning a value in `0..n`: the recorded decision during
    /// replay, `0` (and a new record) past the end of the tape.
    pub fn choose(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let idx = self.cursor;
        self.cursor += 1;
        match self.decisions.get(idx) {
            Some(d) => d.chosen.min(n - 1),
            None => {
                self.decisions.push(Decision {
                    chosen: 0,
                    limit: n,
                });
                0
            }
        }
    }

    fn tape(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }
}

/// A completed exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Complete executions explored.
    pub executions: usize,
    /// Whether every schedule at the bounds was visited (`false` when
    /// the execution budget truncated the search).
    pub complete: bool,
}

/// A violating execution: the invariant message plus the decision tape
/// that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// What went wrong.
    pub message: String,
    /// The decision tape reproducing the violation.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [schedule {:?}]", self.message, self.schedule)
    }
}

/// Exhaustive DFS over decision tapes.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Execution budget; exploration truncates (incomplete) beyond it.
    pub max_executions: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_executions: 2_000_000,
        }
    }
}

impl Explorer {
    /// Run `model` under every decision tape at the configured bounds.
    /// Returns the first violation found, or the exploration summary.
    pub fn explore(
        &self,
        mut model: impl FnMut(&mut Trace) -> Result<(), String>,
    ) -> Result<Exploration, CounterExample> {
        let mut prefix: Vec<Decision> = Vec::new();
        let mut executions = 0usize;
        loop {
            let mut trace = Trace {
                decisions: std::mem::take(&mut prefix),
                cursor: 0,
            };
            let outcome = model(&mut trace);
            executions += 1;
            if let Err(message) = outcome {
                return Err(CounterExample {
                    message,
                    schedule: trace.tape(),
                });
            }
            if executions >= self.max_executions {
                return Ok(Exploration {
                    executions,
                    complete: false,
                });
            }
            prefix = trace.decisions;
            loop {
                match prefix.last_mut() {
                    None => {
                        return Ok(Exploration {
                            executions,
                            complete: true,
                        })
                    }
                    Some(d) if d.chosen + 1 < d.limit => {
                        d.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        prefix.pop();
                    }
                }
            }
        }
    }
}

/// Step bound per execution — a backstop against modelling bugs, far
/// above what any of the bundled models can reach.
const MAX_STEPS: usize = 512;

/// Drive a model's threads to completion under `trace`: at every step
/// one runnable (unfinished, enabled) thread is chosen and stepped.
/// All threads blocked but unfinished is a deadlock.
fn drive<S>(
    trace: &mut Trace,
    state: &mut S,
    threads: usize,
    finished: impl Fn(&S, usize) -> bool,
    enabled: impl Fn(&S, usize) -> bool,
    mut step: impl FnMut(&mut S, usize, &mut Trace) -> Result<(), String>,
) -> Result<(), String> {
    let mut steps = 0usize;
    loop {
        let mut runnable = Vec::with_capacity(threads);
        for t in 0..threads {
            if !finished(state, t) && enabled(state, t) {
                runnable.push(t);
            }
        }
        if runnable.is_empty() {
            if (0..threads).all(|t| finished(state, t)) {
                return Ok(());
            }
            let blocked: Vec<usize> = (0..threads).filter(|&t| !finished(state, t)).collect();
            return Err(format!("deadlock: threads {blocked:?} blocked forever"));
        }
        let pick = runnable[trace.choose(runnable.len()).min(runnable.len() - 1)];
        step(state, pick, trace)?;
        steps += 1;
        if steps > MAX_STEPS {
            return Err("step bound exceeded (livelock?)".to_string());
        }
    }
}

// ---------------------------------------------------------------------
// Operational release/acquire memory
// ---------------------------------------------------------------------

/// Memory ordering strength for [`WeakMemory`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ord {
    /// No synchronisation.
    Relaxed,
    /// Load half of a synchronises-with edge.
    Acquire,
    /// Store half of a synchronises-with edge.
    Release,
    /// Both halves (RMW).
    AcqRel,
}

impl Ord {
    fn acquires(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel)
    }
    fn releases(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel)
    }
}

#[derive(Debug, Clone)]
struct WriteRec {
    value: u64,
    /// Writer's visibility floors captured at a release write; carried
    /// along RMW chains (release sequences).
    view: Option<Vec<usize>>,
}

/// Append-only per-location write histories plus per-thread visibility
/// floors — an operational release/acquire memory model.
#[derive(Debug, Clone)]
pub struct WeakMemory {
    locs: Vec<Vec<WriteRec>>,
    /// `views[tid][loc]`: earliest write index this thread may observe.
    views: Vec<Vec<usize>>,
}

impl WeakMemory {
    /// `n_locs` zero-initialised locations shared by `n_threads`.
    pub fn new(n_locs: usize, n_threads: usize) -> WeakMemory {
        WeakMemory {
            locs: (0..n_locs)
                .map(|_| {
                    vec![WriteRec {
                        value: 0,
                        view: None,
                    }]
                })
                .collect(),
            views: (0..n_threads).map(|_| vec![0; n_locs]).collect(),
        }
    }

    fn join(view: &mut [usize], other: &[usize]) {
        for (v, &o) in view.iter_mut().zip(other) {
            *v = (*v).max(o);
        }
    }

    /// Load: observe any write at or after this thread's floor (the
    /// choice comes from `trace`); an acquire load of a released write
    /// joins the writer's view.
    pub fn load(&mut self, trace: &mut Trace, tid: usize, loc: usize, ord: Ord) -> u64 {
        let floor = self.views[tid][loc];
        let latest = self.locs[loc].len() - 1;
        let idx = floor + trace.choose(latest - floor + 1);
        let rec = self.locs[loc][idx].clone();
        if ord.acquires() {
            if let Some(view) = &rec.view {
                Self::join(&mut self.views[tid], view);
            }
        }
        self.views[tid][loc] = self.views[tid][loc].max(idx);
        rec.value
    }

    /// Store: append a new write; a release store captures this
    /// thread's view for later acquirers.
    pub fn store(&mut self, tid: usize, loc: usize, value: u64, ord: Ord) {
        let idx = self.locs[loc].len();
        self.views[tid][loc] = idx;
        let view = ord.releases().then(|| self.views[tid].clone());
        self.locs[loc].push(WriteRec { value, view });
    }

    /// Atomic read-modify-write: always reads the latest write
    /// (modification-order atomicity), acquires its view when `ord`
    /// acquires, and carries the read write's view into the new write
    /// regardless of `ord` (release sequences), additionally merging
    /// this thread's view when `ord` releases. Returns the old value.
    pub fn rmw(&mut self, tid: usize, loc: usize, f: impl Fn(u64) -> u64, ord: Ord) -> u64 {
        let latest = self.locs[loc].len() - 1;
        let rec = self.locs[loc][latest].clone();
        if ord.acquires() {
            if let Some(view) = &rec.view {
                Self::join(&mut self.views[tid], view);
            }
        }
        let idx = self.locs[loc].len();
        self.views[tid][loc] = idx;
        let own = ord.releases().then(|| self.views[tid].clone());
        let view = match (rec.view, own) {
            (None, None) => None,
            (Some(v), None) | (None, Some(v)) => Some(v),
            (Some(mut a), Some(b)) => {
                Self::join(&mut a, &b);
                Some(a)
            }
        };
        self.locs[loc].push(WriteRec {
            value: f(rec.value),
            view,
        });
        rec.value
    }

    /// The latest value in modification order (for final-state checks).
    pub fn latest(&self, loc: usize) -> u64 {
        self.locs[loc].last().map_or(0, |r| r.value)
    }

    /// A `SeqCst` load under the checker's SC-as-latest approximation:
    /// observe the latest write in modification order and acquire its
    /// view (the same read rule RMWs use). Deterministic — SC loads do
    /// not branch the schedule space — and strictly stronger than
    /// `Acquire`, which is the sound direction for the faithful models:
    /// it can only remove weak behaviours, never invent one.
    pub fn load_latest(&mut self, tid: usize, loc: usize) -> u64 {
        let latest = self.locs[loc].len() - 1;
        let rec = self.locs[loc][latest].clone();
        if let Some(view) = &rec.view {
            Self::join(&mut self.views[tid], view);
        }
        self.views[tid][loc] = latest;
        rec.value
    }
}

// ---------------------------------------------------------------------
// Models and mutations
// ---------------------------------------------------------------------

/// The modelled subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Crossbeam channel shim: bounded queue, two condvars, disconnect.
    Channel,
    /// ShardedCache bounded-LRU insert with CountingBloom admission.
    Cache,
    /// LatencyHistogram bucket-then-count publication.
    Histogram,
    /// OnlineSelector drift flip: generation bump before adaptive flag.
    Drift,
    /// Ingress `submitted == served + shed` with tenant hold/release.
    Ingress,
    /// StealDeque owner pop vs thief steal under weak memory.
    Deque,
}

impl Model {
    /// All models, in reporting order.
    pub const ALL: [Model; 6] = [
        Model::Channel,
        Model::Cache,
        Model::Histogram,
        Model::Drift,
        Model::Ingress,
        Model::Deque,
    ];

    /// Stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Channel => "channel-shim",
            Model::Cache => "cache-admission",
            Model::Histogram => "latency-histogram",
            Model::Drift => "drift-publication",
            Model::Ingress => "ingress-accounting",
            Model::Deque => "steal-deque",
        }
    }
}

/// Seeded bugs the checker must catch — each is a deliberately broken
/// variant of one model, mirroring a real class of concurrency bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Last sender drops without any notify: blocked receivers hang.
    ChannelDropNoNotify,
    /// Disconnect uses `notify_one` instead of `notify_all`: with two
    /// blocked receivers one never wakes.
    ChannelDropNotifyOne,
    /// Receiver waits on the `not_full` condvar (wrong condvar).
    ChannelRecvWaitsWrongCv,
    /// Bloom increment as separate load + store instead of one RMW:
    /// concurrent observes lose updates.
    CacheTornBloom,
    /// Capacity check outside the shard lock (check-then-act): two
    /// inserters both pass and overflow the shard.
    CacheCheckThenAct,
    /// `count` increment relaxed instead of release: a reader can
    /// observe the new count with a stale bucket.
    HistogramRelaxedCount,
    /// `count` increment as separate load + store: lost update.
    HistogramTornCount,
    /// Adaptive flag stored relaxed instead of release: readers see the
    /// flag without the generation bump it publishes.
    DriftRelaxedFlagStore,
    /// Adaptive flag flipped *before* the generation bump.
    DriftFlipBeforeBump,
    /// Queue-full shed path forgets to release the tenant slot.
    IngressLeakTenantOnShed,
    /// Shed path double-counts, breaking the accounting identity.
    IngressDoubleCountShed,
    /// `push` publishes `bottom` with a Relaxed store instead of
    /// Release: a thief can observe the new index without the slot
    /// write, steal an unwritten (zero) slot, and lose the item.
    DequeRelaxedBottom,
}

impl Mutation {
    /// All mutations, in reporting order.
    pub const ALL: [Mutation; 12] = [
        Mutation::ChannelDropNoNotify,
        Mutation::ChannelDropNotifyOne,
        Mutation::ChannelRecvWaitsWrongCv,
        Mutation::CacheTornBloom,
        Mutation::CacheCheckThenAct,
        Mutation::HistogramRelaxedCount,
        Mutation::HistogramTornCount,
        Mutation::DriftRelaxedFlagStore,
        Mutation::DriftFlipBeforeBump,
        Mutation::IngressLeakTenantOnShed,
        Mutation::IngressDoubleCountShed,
        Mutation::DequeRelaxedBottom,
    ];

    /// The model this mutation breaks.
    pub fn model(&self) -> Model {
        match self {
            Mutation::ChannelDropNoNotify
            | Mutation::ChannelDropNotifyOne
            | Mutation::ChannelRecvWaitsWrongCv => Model::Channel,
            Mutation::CacheTornBloom | Mutation::CacheCheckThenAct => Model::Cache,
            Mutation::HistogramRelaxedCount | Mutation::HistogramTornCount => Model::Histogram,
            Mutation::DriftRelaxedFlagStore | Mutation::DriftFlipBeforeBump => Model::Drift,
            Mutation::IngressLeakTenantOnShed | Mutation::IngressDoubleCountShed => Model::Ingress,
            Mutation::DequeRelaxedBottom => Model::Deque,
        }
    }

    /// Stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::ChannelDropNoNotify => "drop-no-notify",
            Mutation::ChannelDropNotifyOne => "drop-notify-one",
            Mutation::ChannelRecvWaitsWrongCv => "recv-waits-wrong-cv",
            Mutation::CacheTornBloom => "torn-bloom-increment",
            Mutation::CacheCheckThenAct => "capacity-check-then-act",
            Mutation::HistogramRelaxedCount => "relaxed-count-publish",
            Mutation::HistogramTornCount => "torn-count-increment",
            Mutation::DriftRelaxedFlagStore => "relaxed-flag-store",
            Mutation::DriftFlipBeforeBump => "flip-before-bump",
            Mutation::IngressLeakTenantOnShed => "leak-tenant-on-shed",
            Mutation::IngressDoubleCountShed => "double-count-shed",
            Mutation::DequeRelaxedBottom => "relaxed-bottom-publish",
        }
    }
}

/// Check one model, optionally with a seeded mutation.
pub fn check(model: Model, mutation: Option<Mutation>) -> Result<Exploration, CounterExample> {
    debug_assert!(mutation.is_none_or(|m| m.model() == model));
    let explorer = Explorer::default();
    match model {
        Model::Channel => explorer.explore(|t| run_channel(t, mutation)),
        Model::Cache => explorer.explore(|t| run_cache(t, mutation)),
        Model::Histogram => explorer.explore(|t| run_histogram(t, mutation)),
        Model::Drift => explorer.explore(|t| run_drift(t, mutation)),
        Model::Ingress => explorer.explore(|t| run_ingress(t, mutation)),
        Model::Deque => explorer.explore(|t| run_deque(t, mutation)),
    }
}

/// Run every faithful model and every seeded mutation. Each row's
/// `expected` records whether the outcome matched: faithful models must
/// pass a *complete* exploration, mutated models must be caught.
pub fn self_check() -> Vec<ModelCheckRow> {
    let mut rows = Vec::new();
    for model in Model::ALL {
        let row = match check(model, None) {
            Ok(exp) => ModelCheckRow {
                model: model.name().to_string(),
                mutation: "none".to_string(),
                executions: exp.executions,
                violation: None,
                expected: exp.complete,
            },
            Err(cex) => ModelCheckRow {
                model: model.name().to_string(),
                mutation: "none".to_string(),
                executions: 0,
                violation: Some(cex.to_string()),
                expected: false,
            },
        };
        rows.push(row);
    }
    for mutation in Mutation::ALL {
        let row = match check(mutation.model(), Some(mutation)) {
            Ok(exp) => ModelCheckRow {
                model: mutation.model().name().to_string(),
                mutation: mutation.name().to_string(),
                executions: exp.executions,
                violation: None,
                expected: false,
            },
            Err(cex) => ModelCheckRow {
                model: mutation.model().name().to_string(),
                mutation: mutation.name().to_string(),
                executions: 0,
                violation: Some(cex.to_string()),
                expected: true,
            },
        };
        rows.push(row);
    }
    rows
}

// --------------------------- channel model ---------------------------

/// Two producers (one message each, then drop), two consumers, capacity
/// one — the crossbeam shim's bounded queue with `not_empty`/`not_full`
/// condvars and last-sender-drop disconnect. Critical sections are
/// coarse (one step each), which the real mutex makes sound.
struct ChanState {
    queue: Vec<u64>,
    cap: usize,
    senders: usize,
    /// Producer/consumer program counters. Producers: 0 = sending,
    /// 1 = dropping, 2 = done. Consumers: 0 = receiving, 1 = done.
    pc: [usize; 4],
    parked: [bool; 4],
    /// Waiter lists per condvar (thread ids).
    not_empty: Vec<usize>,
    not_full: Vec<usize>,
    received: Vec<u64>,
}

const CHAN_PRODUCERS: usize = 2;
const CHAN_THREADS: usize = 4;

impl ChanState {
    fn notify_one(&mut self, trace: &mut Trace, cv: bool) {
        let set = if cv {
            &mut self.not_empty
        } else {
            &mut self.not_full
        };
        if set.is_empty() {
            return;
        }
        let idx = trace.choose(set.len());
        let tid = set.remove(idx.min(set.len() - 1));
        self.parked[tid] = false;
    }

    fn notify_all_not_empty(&mut self) {
        for tid in self.not_empty.drain(..) {
            self.parked[tid] = false;
        }
    }
}

fn run_channel(trace: &mut Trace, mutation: Option<Mutation>) -> Result<(), String> {
    let mut st = ChanState {
        queue: Vec::new(),
        cap: 1,
        senders: CHAN_PRODUCERS,
        pc: [0; CHAN_THREADS],
        parked: [false; CHAN_THREADS],
        not_empty: Vec::new(),
        not_full: Vec::new(),
        received: Vec::new(),
    };
    drive(
        trace,
        &mut st,
        CHAN_THREADS,
        |s, t| {
            if t < CHAN_PRODUCERS {
                s.pc[t] == 2
            } else {
                s.pc[t] == 1
            }
        },
        |s, t| !s.parked[t],
        |s, t, trace| {
            if t < CHAN_PRODUCERS {
                match s.pc[t] {
                    0 => {
                        // send(): whole critical section in one step.
                        if s.queue.len() < s.cap {
                            s.queue.push(t as u64 + 1);
                            s.notify_one(trace, true);
                            s.pc[t] = 1;
                        } else {
                            s.parked[t] = true;
                            s.not_full.push(t);
                        }
                    }
                    _ => {
                        // Drop the sender; last one announces disconnect.
                        s.senders -= 1;
                        if s.senders == 0 {
                            match mutation {
                                Some(Mutation::ChannelDropNoNotify) => {}
                                Some(Mutation::ChannelDropNotifyOne) => s.notify_one(trace, true),
                                _ => s.notify_all_not_empty(),
                            }
                        }
                        s.pc[t] = 2;
                    }
                }
            } else {
                // recv(): pop, or observe disconnect, or park.
                if let Some(v) = s.queue.first().copied() {
                    s.queue.remove(0);
                    s.received.push(v);
                    s.notify_one(trace, false);
                } else if s.senders == 0 {
                    s.pc[t] = 1;
                } else {
                    s.parked[t] = true;
                    if matches!(mutation, Some(Mutation::ChannelRecvWaitsWrongCv)) {
                        s.not_full.push(t);
                    } else {
                        s.not_empty.push(t);
                    }
                }
            }
            Ok(())
        },
    )?;
    let mut got = st.received.clone();
    got.sort_unstable();
    if got != vec![1, 2] {
        return Err(format!(
            "channel lost or duplicated messages: received {got:?}, sent [1, 2]"
        ));
    }
    Ok(())
}

// ---------------------------- cache model ----------------------------

/// Two inserters of distinct shapes into one capacity-1 shard, each
/// first observing the CountingBloom (admission threshold 1). The bloom
/// counter is a single RMW; the shard insert (contains check, LRU
/// evict, insert) is one coarse locked step.
struct CacheState {
    bloom: u64,
    /// Torn-increment staging: the loaded value per thread.
    staged: [Option<u64>; 2],
    entries: Vec<u64>,
    /// Unlocked capacity pre-check result (check-then-act mutation).
    precheck: [bool; 2],
    evictions: usize,
    pc: [usize; 2],
}

fn run_cache(trace: &mut Trace, mutation: Option<Mutation>) -> Result<(), String> {
    let torn = matches!(mutation, Some(Mutation::CacheTornBloom));
    let check_then_act = matches!(mutation, Some(Mutation::CacheCheckThenAct));
    let cap = 1usize;
    let mut st = CacheState {
        bloom: 0,
        staged: [None; 2],
        entries: Vec::new(),
        precheck: [false; 2],
        evictions: 0,
        pc: [0; 2],
    };
    // Program: 0 = observe bloom (torn: load), 1 = (torn: store),
    // 2 = (check-then-act: unlocked capacity check), 3 = locked insert,
    // 4 = done. Faithful threads skip the stages their mutation owns.
    let done = 4usize;
    drive(
        trace,
        &mut st,
        2,
        |s, t| s.pc[t] == done,
        |_, _| true,
        |s, t, _trace| {
            match s.pc[t] {
                0 => {
                    if torn {
                        s.staged[t] = Some(s.bloom);
                        s.pc[t] = 1;
                    } else {
                        s.bloom += 1;
                        s.pc[t] = 2;
                    }
                }
                1 => {
                    s.bloom = s.staged[t].unwrap_or(0) + 1;
                    s.pc[t] = 2;
                }
                2 => {
                    if check_then_act {
                        s.precheck[t] = s.entries.len() < cap;
                    }
                    s.pc[t] = 3;
                }
                _ => {
                    let key = t as u64 + 1;
                    if check_then_act {
                        // Mutated: trust the stale unlocked check.
                        if s.precheck[t] {
                            s.entries.push(key);
                        }
                    } else if !s.entries.contains(&key) {
                        if s.entries.len() == cap {
                            s.entries.remove(0);
                            s.evictions += 1;
                        }
                        s.entries.push(key);
                    }
                    if s.entries.len() > cap {
                        return Err(format!(
                            "shard overflow: {} entries with capacity {cap}",
                            s.entries.len()
                        ));
                    }
                    s.pc[t] = done;
                }
            }
            Ok(())
        },
    )?;
    if st.bloom != 2 {
        return Err(format!(
            "bloom lost an update: {} observes recorded for 2 observers",
            st.bloom
        ));
    }
    if st.entries.len() != 1 || st.evictions != 1 {
        return Err(format!(
            "LRU conservation broken: {} entries, {} evictions (expected 1, 1)",
            st.entries.len(),
            st.evictions
        ));
    }
    Ok(())
}

// -------------------------- histogram model --------------------------

const H_BUCKET: usize = 0;
const H_COUNT: usize = 1;

/// Two recorders (`bucket.fetch_add(Relaxed)` then
/// `count.fetch_add(Release)`) and one reader (`count.load(Acquire)`
/// then `bucket.load(Relaxed)`), under the weak memory model. The
/// quantile walk's soundness reduces to: a reader must never observe
/// more counted records than bucketed ones.
struct HistState {
    mem: WeakMemory,
    staged: [Option<u64>; 2],
    pc: [usize; 3],
    reader_count: u64,
}

fn run_histogram(trace: &mut Trace, mutation: Option<Mutation>) -> Result<(), String> {
    let relaxed_count = matches!(mutation, Some(Mutation::HistogramRelaxedCount));
    let torn_count = matches!(mutation, Some(Mutation::HistogramTornCount));
    let mut st = HistState {
        mem: WeakMemory::new(2, 3),
        staged: [None; 2],
        pc: [0; 3],
        reader_count: 0,
    };
    let done = [3usize, 3, 2];
    drive(
        trace,
        &mut st,
        3,
        |s, t| s.pc[t] == done[t],
        |_, _| true,
        |s, t, trace| {
            if t < 2 {
                match s.pc[t] {
                    0 => {
                        s.mem.rmw(t, H_BUCKET, |v| v + 1, Ord::Relaxed);
                        s.pc[t] = 1;
                    }
                    1 => {
                        if torn_count {
                            s.staged[t] = Some(s.mem.load(trace, t, H_COUNT, Ord::Relaxed));
                            s.pc[t] = 2;
                        } else {
                            let ord = if relaxed_count {
                                Ord::Relaxed
                            } else {
                                Ord::Release
                            };
                            s.mem.rmw(t, H_COUNT, |v| v + 1, ord);
                            s.pc[t] = 3;
                        }
                    }
                    _ => {
                        s.mem
                            .store(t, H_COUNT, s.staged[t].unwrap_or(0) + 1, Ord::Relaxed);
                        s.pc[t] = 3;
                    }
                }
            } else {
                match s.pc[t] {
                    0 => {
                        s.reader_count = s.mem.load(trace, t, H_COUNT, Ord::Acquire);
                        s.pc[t] = 1;
                    }
                    _ => {
                        let bucketed = s.mem.load(trace, t, H_BUCKET, Ord::Relaxed);
                        if bucketed < s.reader_count {
                            return Err(format!(
                                "stale bucket behind published count: count {} but only {} bucketed \
                                 (quantile would fall off the cumulative walk)",
                                s.reader_count, bucketed
                            ));
                        }
                        s.pc[t] = 2;
                    }
                }
            }
            Ok(())
        },
    )?;
    let (b, c) = (st.mem.latest(H_BUCKET), st.mem.latest(H_COUNT));
    if b != 2 || c != 2 {
        return Err(format!(
            "conservation broken after join: {b} bucketed, {c} counted, 2 recorded"
        ));
    }
    Ok(())
}

// ---------------------------- drift model ----------------------------

const D_GEN: usize = 0;
const D_FLAG: usize = 1;

/// Writer performs the drift flip (generation bump `AcqRel`, then
/// adaptive flag store `Release`); reader does the decide-path check
/// (flag load `Acquire`; if set, the generation must be visible).
fn run_drift(trace: &mut Trace, mutation: Option<Mutation>) -> Result<(), String> {
    let relaxed_store = matches!(mutation, Some(Mutation::DriftRelaxedFlagStore));
    let flip_first = matches!(mutation, Some(Mutation::DriftFlipBeforeBump));
    struct St {
        mem: WeakMemory,
        pc: [usize; 2],
        flag: u64,
    }
    let mut st = St {
        mem: WeakMemory::new(2, 2),
        pc: [0; 2],
        flag: 0,
    };
    drive(
        trace,
        &mut st,
        2,
        |s, t| s.pc[t] == 2,
        |_, _| true,
        |s, t, trace| {
            if t == 0 {
                let bump_now = (s.pc[t] == 0) != flip_first;
                if bump_now {
                    s.mem.rmw(t, D_GEN, |v| v + 1, Ord::AcqRel);
                } else {
                    let ord = if relaxed_store {
                        Ord::Relaxed
                    } else {
                        Ord::Release
                    };
                    s.mem.store(t, D_FLAG, 1, ord);
                }
                s.pc[t] += 1;
            } else {
                match s.pc[t] {
                    0 => {
                        s.flag = s.mem.load(trace, t, D_FLAG, Ord::Acquire);
                        s.pc[t] = 1;
                    }
                    _ => {
                        if s.flag == 1 {
                            let generation = s.mem.load(trace, t, D_GEN, Ord::Acquire);
                            if generation == 0 {
                                return Err("adaptive flag observed without its generation bump: \
                                     decide path would reuse a stale generation tag"
                                    .to_string());
                            }
                        }
                        s.pc[t] = 2;
                    }
                }
            }
            Ok(())
        },
    )
}

// --------------------------- ingress model ---------------------------

/// Two producers submit one request each through the tenant gate
/// (quota 2) into a capacity-1 queue; a dispatcher drains, releasing
/// the tenant slot and counting `served`. Queue-full submissions take
/// the shed path: release the slot, count `shed`. Checks the
/// `submitted == served + shed` identity and that no tenant slot leaks.
fn run_ingress(trace: &mut Trace, mutation: Option<Mutation>) -> Result<(), String> {
    let leak = matches!(mutation, Some(Mutation::IngressLeakTenantOnShed));
    let double = matches!(mutation, Some(Mutation::IngressDoubleCountShed));
    struct St {
        held: usize,
        queue: Vec<u64>,
        submitted: u64,
        served: u64,
        shed: u64,
        pc: [usize; 3],
    }
    let mut st = St {
        held: 0,
        queue: Vec::new(),
        submitted: 0,
        served: 0,
        shed: 0,
        pc: [0; 3],
    };
    let producers_done = |s: &St| s.pc[0] == 2 && s.pc[1] == 2;
    drive(
        trace,
        &mut st,
        3,
        |s, t| s.pc[t] == 2,
        |s, t| t < 2 || !s.queue.is_empty() || producers_done(s),
        |s, t, _trace| {
            if t < 2 {
                match s.pc[t] {
                    0 => {
                        // Tenant gate (quota 2 — both fit) + submit count.
                        s.submitted += 1;
                        s.held += 1;
                        s.pc[t] = 1;
                    }
                    _ => {
                        // Enqueue, or shed on a full (capacity 1) queue.
                        if s.queue.is_empty() {
                            s.queue.push(t as u64);
                        } else {
                            if !leak {
                                s.held -= 1;
                            }
                            s.shed += 1;
                            if double {
                                s.shed += 1;
                            }
                        }
                        s.pc[t] = 2;
                    }
                }
            } else if !s.queue.is_empty() {
                s.queue.remove(0);
                s.held -= 1;
                s.served += 1;
            } else {
                // Queue empty and producers done: dispatcher exits.
                s.pc[t] = 2;
            }
            Ok(())
        },
    )?;
    if st.submitted != st.served + st.shed {
        return Err(format!(
            "accounting identity broken: submitted {} != served {} + shed {}",
            st.submitted, st.served, st.shed
        ));
    }
    if st.held != 0 {
        return Err(format!(
            "tenant slot leak: {} slots still held after drain",
            st.held
        ));
    }
    Ok(())
}

// ---------------------------- deque model ----------------------------

const Q_TOP: usize = 0;
const Q_BOTTOM: usize = 1;
const Q_SLOT0: usize = 2;

/// Ring index → memory location (two slots, mask 1 — matches a
/// `StealDeque::with_capacity(2)`).
fn q_slot(index: u64) -> usize {
    Q_SLOT0 + (index & 1) as usize
}

/// `top.compare_exchange(expected, expected + 1, SeqCst, Relaxed)`
/// under the SC-as-latest approximation: the failure path is a Relaxed
/// observation of the latest write, the success path an `AcqRel` RMW.
fn q_cas_top(mem: &mut WeakMemory, tid: usize, expected: u64) -> bool {
    if mem.latest(Q_TOP) != expected {
        return false;
    }
    mem.rmw(tid, Q_TOP, |v| v + 1, Ord::AcqRel);
    true
}

/// `read_slot` as the deque implements it: a Relaxed load, with raw
/// zero (never written) decoding to `None`. The owner reads its own
/// writes; the thief's visibility comes entirely from the `bottom`
/// Release/Acquire edge — which is exactly what the seeded mutation
/// severs.
fn q_read_slot(mem: &mut WeakMemory, trace: &mut Trace, tid: usize, index: u64) -> Option<u64> {
    mem.load(trace, tid, q_slot(index), Ord::Relaxed)
        .checked_sub(1)
}

/// The `StealDeque` protocol: an owner pushes two items (slot store
/// Relaxed, `bottom` store Release) then pops twice; one thief makes
/// two steal attempts, each split at the natural race point (index
/// loads | slot read + claim CAS). Pops split the same way (claim
/// store | `top` re-read), so the checker drives the Chase–Lev
/// last-item race in both directions. The invariant is the one the
/// scheduler's served-set equality rests on: every pushed item is
/// claimed by exactly one end, and no claim observes an unwritten
/// slot.
fn run_deque(trace: &mut Trace, mutation: Option<Mutation>) -> Result<(), String> {
    let relaxed_bottom = matches!(mutation, Some(Mutation::DequeRelaxedBottom));
    struct St {
        mem: WeakMemory,
        /// Owner: 0/1 = push item 0/1, 2|3 = first pop (claim | race),
        /// 4|5 = second pop, 6 = done. Thief: 0|1 = first attempt
        /// (index loads | claim), 2|3 = second attempt, 4 = done.
        pc: [usize; 2],
        /// Owner's claimed bottom index between the pop halves.
        pop_b: u64,
        /// Thief's loaded `top` between the attempt halves.
        steal_t: u64,
        claims: Vec<u64>,
        /// A steal CAS won on a slot that read as unwritten.
        lost: bool,
    }
    const OWNER: usize = 0;
    const THIEF: usize = 1;
    let mut st = St {
        mem: WeakMemory::new(4, 2),
        pc: [0; 2],
        pop_b: 0,
        steal_t: 0,
        claims: Vec::new(),
        lost: false,
    };
    let done = [6usize, 4];
    drive(
        trace,
        &mut st,
        2,
        |s, t| s.pc[t] == done[t],
        |_, _| true,
        |s, t, trace| {
            if t == OWNER {
                match s.pc[t] {
                    0 | 1 => {
                        // push(item): full-ring check, slot store
                        // Relaxed, publish via Release on `bottom`.
                        let item = s.pc[t] as u64;
                        let b = s.mem.load(trace, OWNER, Q_BOTTOM, Ord::Acquire);
                        let top = s.mem.load(trace, OWNER, Q_TOP, Ord::Acquire);
                        if b.wrapping_sub(top) > 1 {
                            return Err(format!(
                                "push rejected with {} items in a ring of 2",
                                b - top
                            ));
                        }
                        s.mem.store(OWNER, q_slot(b), item + 1, Ord::Relaxed);
                        let ord = if relaxed_bottom {
                            Ord::Relaxed
                        } else {
                            Ord::Release
                        };
                        s.mem.store(OWNER, Q_BOTTOM, b + 1, ord);
                        s.pc[t] += 1;
                    }
                    2 | 4 => {
                        // pop, first half: claim slot b-1 with a SeqCst
                        // store on `bottom` (or bail out on empty).
                        let b = s.mem.load(trace, OWNER, Q_BOTTOM, Ord::Acquire);
                        let top = s.mem.load_latest(OWNER, Q_TOP);
                        if b <= top {
                            s.pc[t] += 2;
                        } else {
                            s.pop_b = b - 1;
                            s.mem.store(OWNER, Q_BOTTOM, s.pop_b, Ord::Release);
                            s.pc[t] += 1;
                        }
                    }
                    _ => {
                        // pop, second half: re-read `top` SeqCst and
                        // resolve the last-item race.
                        let b = s.pop_b;
                        let top = s.mem.load_latest(OWNER, Q_TOP);
                        let claim = if top < b {
                            q_read_slot(&mut s.mem, trace, OWNER, b)
                        } else if top == b {
                            let won = q_cas_top(&mut s.mem, OWNER, top);
                            s.mem.store(OWNER, Q_BOTTOM, b + 1, Ord::Release);
                            if won {
                                q_read_slot(&mut s.mem, trace, OWNER, b)
                            } else {
                                None
                            }
                        } else {
                            s.mem.store(OWNER, Q_BOTTOM, b + 1, Ord::Release);
                            None
                        };
                        if let Some(v) = claim {
                            s.claims.push(v);
                        }
                        s.pc[t] += 1;
                    }
                }
            } else {
                match s.pc[t] {
                    0 | 2 => {
                        // steal, first half: SeqCst index loads; empty
                        // forfeits the attempt.
                        let top = s.mem.load_latest(THIEF, Q_TOP);
                        let b = s.mem.load_latest(THIEF, Q_BOTTOM);
                        if top >= b {
                            s.pc[t] += 2;
                        } else {
                            s.steal_t = top;
                            s.pc[t] += 1;
                        }
                    }
                    _ => {
                        // steal, second half: read the slot *before*
                        // the claim CAS; a lost CAS forfeits (bounded
                        // stand-in for the retry loop — the owner
                        // drains whatever the thief leaves).
                        let item = q_read_slot(&mut s.mem, trace, THIEF, s.steal_t);
                        if q_cas_top(&mut s.mem, THIEF, s.steal_t) {
                            match item {
                                Some(v) => s.claims.push(v),
                                None => s.lost = true,
                            }
                        }
                        s.pc[t] += 1;
                    }
                }
            }
            Ok(())
        },
    )?;
    if st.lost {
        return Err(
            "steal claimed an unwritten slot: `top` advanced past an item no thread holds"
                .to_string(),
        );
    }
    let mut claims = st.claims;
    claims.sort_unstable();
    if claims != vec![0, 1] {
        return Err(format!(
            "items claimed {claims:?}, pushed [0, 1]: the deque lost or duplicated work"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explorer_enumerates_all_tapes() {
        // Two binary choices -> 4 executions.
        let mut seen = Vec::new();
        let exp = Explorer::default()
            .explore(|t| {
                let a = t.choose(2);
                let b = t.choose(2);
                seen.push((a, b));
                Ok(())
            })
            .expect("no violation");
        assert_eq!(exp.executions, 4);
        assert!(exp.complete);
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn explorer_returns_the_violating_tape() {
        let cex = Explorer::default()
            .explore(|t| {
                if t.choose(3) == 2 && t.choose(2) == 1 {
                    return Err("boom".to_string());
                }
                Ok(())
            })
            .expect_err("must find the violation");
        assert_eq!(cex.schedule, vec![2, 1]);
        assert_eq!(cex.message, "boom");
    }

    #[test]
    fn weak_memory_stale_read_requires_acquire() {
        // Without acquire, a reader may see the flag but stale data; the
        // release/acquire pair forbids it.
        let cex = Explorer::default().explore(|trace| {
            let mut mem = WeakMemory::new(2, 2);
            // Writer (inline, sequential for this unit test).
            mem.store(0, 0, 42, Ord::Relaxed);
            mem.store(0, 1, 1, Ord::Release);
            // Reader.
            if mem.load(trace, 1, 1, Ord::Acquire) == 1 {
                let data = mem.load(trace, 1, 0, Ord::Relaxed);
                if data != 42 {
                    return Err(format!("stale data {data}"));
                }
            }
            Ok(())
        });
        assert!(cex.is_ok(), "release/acquire forbids the stale read");

        let cex = Explorer::default().explore(|trace| {
            let mut mem = WeakMemory::new(2, 2);
            mem.store(0, 0, 42, Ord::Relaxed);
            mem.store(0, 1, 1, Ord::Relaxed); // no release
            if mem.load(trace, 1, 1, Ord::Acquire) == 1 {
                let data = mem.load(trace, 1, 0, Ord::Relaxed);
                if data != 42 {
                    return Err(format!("stale data {data}"));
                }
            }
            Ok(())
        });
        assert!(cex.is_err(), "without release the stale read exists");
    }

    #[test]
    fn faithful_models_pass_exhaustively() {
        for model in Model::ALL {
            let exp =
                check(model, None).unwrap_or_else(|cex| panic!("{} violated: {cex}", model.name()));
            assert!(exp.complete, "{} exploration truncated", model.name());
            assert!(exp.executions > 1, "{} explored nothing", model.name());
        }
    }

    #[test]
    fn every_seeded_mutation_is_caught() {
        for mutation in Mutation::ALL {
            let outcome = check(mutation.model(), Some(mutation));
            assert!(
                outcome.is_err(),
                "mutation {} on {} was not caught",
                mutation.name(),
                mutation.model().name()
            );
        }
    }

    #[test]
    fn self_check_rows_are_all_expected() {
        let rows = self_check();
        assert_eq!(rows.len(), Model::ALL.len() + Mutation::ALL.len());
        for row in &rows {
            assert!(
                row.expected,
                "{}/{} unexpected outcome",
                row.model, row.mutation
            );
        }
    }
}
