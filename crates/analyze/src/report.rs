//! SARIF-shaped diagnostics for kernel-space analyses.
//!
//! The report follows the SARIF 2.1.0 envelope — `runs[]`, each with a
//! `tool.driver` carrying rule descriptors and a `results[]` list — so
//! standard viewers can render it, while `properties` bags carry the
//! domain payload (config indices, resource demands, occupancy). One
//! run per analysed device; only findings (invalid, degraded or
//! dominated configurations) appear as results, with the full-space
//! summary counts in the run's `properties`.
//!
//! Built directly from ordered [`Value`] trees rather than derived
//! serialisation so the field order — and therefore the golden file in
//! `tests/static_analysis.rs` — is deterministic.

use crate::analyzer::{SpaceAnalysis, Verdict};
use serde_json::Value;

/// Tool name recorded in each SARIF run.
pub const TOOL_NAME: &str = "kernel-space-analyzer";

pub(crate) fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn n(v: f64) -> Value {
    Value::Num(v)
}

pub(crate) fn int(v: usize) -> Value {
    Value::Num(v as f64)
}

pub(crate) fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub(crate) fn rule_descriptor(id: &str, text: &str) -> Value {
    obj(vec![
        ("id", s(id)),
        ("shortDescription", obj(vec![("text", s(text))])),
    ])
}

fn rules() -> Value {
    Value::Array(vec![
        rule_descriptor(
            "invalid-work-group",
            "Work-group size exceeds the device's work-group limit; the runtime rejects the launch.",
        ),
        rule_descriptor(
            "invalid-lanes",
            "Work-group size exceeds the device's total SIMD lane count; the runtime rejects the launch.",
        ),
        rule_descriptor(
            "invalid-lds",
            "Per-group local memory demand exceeds the device's LDS capacity; the runtime rejects the launch.",
        ),
        rule_descriptor(
            "degraded-occupancy",
            "Launchable, but register/LDS pressure starves wavefront occupancy below the degradation threshold.",
        ),
        rule_descriptor(
            "dominated",
            "A sibling work-group shape of the same compile-time tile is pointwise no worse on every static resource axis and strictly better on at least one.",
        ),
    ])
}

fn location(name: &str, index: usize) -> Value {
    obj(vec![(
        "logicalLocations",
        Value::Array(vec![obj(vec![
            ("name", s(name)),
            ("kind", s("kernelConfig")),
            ("index", int(index)),
        ])]),
    )])
}

fn result(
    rule_id: &str,
    level: &str,
    text: String,
    name: &str,
    index: usize,
    props: Vec<(&str, Value)>,
) -> Value {
    let mut properties = vec![("configIndex", int(index))];
    properties.extend(props);
    obj(vec![
        ("ruleId", s(rule_id)),
        ("level", s(level)),
        ("message", obj(vec![("text", s(text))])),
        ("locations", Value::Array(vec![location(name, index)])),
        ("properties", obj(properties)),
    ])
}

fn run(analysis: &SpaceAnalysis) -> Value {
    let mut results = Vec::new();
    for c in &analysis.configs {
        match &c.verdict {
            Verdict::Invalid {
                resource,
                requested,
                limit,
            } => results.push(result(
                c.verdict.rule_id(),
                "error",
                format!(
                    "{}: {} {} exceeds device limit {}",
                    c.name, resource, requested, limit
                ),
                &c.name,
                c.config_index,
                vec![
                    ("resource", s(resource.to_string())),
                    ("requested", int(*requested)),
                    ("limit", int(*limit)),
                ],
            )),
            Verdict::Degraded { occupancy } => results.push(result(
                c.verdict.rule_id(),
                "warning",
                format!(
                    "{}: occupancy {:.3} below degradation threshold",
                    c.name, occupancy
                ),
                &c.name,
                c.config_index,
                vec![("occupancy", n(*occupancy))],
            )),
            Verdict::Valid => {}
        }
        if let Some(by) = c.dominated_by {
            let dominator = &analysis.configs[by];
            results.push(result(
                "dominated",
                "note",
                format!(
                    "{}: dominated by {} (no better on any static resource axis)",
                    c.name, dominator.name
                ),
                &c.name,
                c.config_index,
                vec![
                    ("dominatedBy", int(by)),
                    ("dominatedByName", s(dominator.name.clone())),
                ],
            ));
        }
    }

    obj(vec![
        (
            "tool",
            obj(vec![(
                "driver",
                obj(vec![
                    ("name", s(TOOL_NAME)),
                    ("version", s(env!("CARGO_PKG_VERSION"))),
                    ("rules", rules()),
                ]),
            )]),
        ),
        (
            "properties",
            obj(vec![
                ("device", s(analysis.device.clone())),
                (
                    "canonicalShape",
                    s(format!(
                        "{}x{}x{}",
                        analysis.shape.m, analysis.shape.k, analysis.shape.n
                    )),
                ),
                ("totalConfigs", int(analysis.configs.len())),
                ("valid", int(analysis.valid_count())),
                ("invalid", int(analysis.invalid_count())),
                ("degraded", int(analysis.degraded_count())),
                ("dominated", int(analysis.dominated_count())),
            ]),
        ),
        ("results", Value::Array(results)),
    ])
}

/// Assemble the SARIF document for a set of per-device analyses.
pub fn sarif_report(analyses: &[SpaceAnalysis]) -> Value {
    obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        ("runs", Value::Array(analyses.iter().map(run).collect())),
    ])
}

/// Render the SARIF document as pretty-printed JSON.
pub fn render_report(analyses: &[SpaceAnalysis]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&sarif_report(analyses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::KernelSpaceAnalyzer;
    use autokernel_sycl_sim::DeviceSpec;

    #[test]
    fn report_carries_findings_and_summary() {
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
            .analyze()
            .unwrap();
        let doc = sarif_report(std::slice::from_ref(&analysis));
        assert_eq!(doc["version"].as_str(), Some("2.1.0"));
        let runs = doc["runs"].as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run["tool"]["driver"]["name"].as_str(), Some(TOOL_NAME));
        assert_eq!(run["properties"]["totalConfigs"].as_u64(), Some(640));
        let results = run["results"].as_array().unwrap();
        assert!(results.iter().any(|r| r["level"].as_str() == Some("error")));
        // Every result names a config by its stable index.
        for r in results {
            assert!(r["properties"]["configIndex"].as_u64().is_some());
        }
    }

    #[test]
    fn rendered_json_parses_back() {
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::amd_r9_nano())
            .analyze()
            .unwrap();
        let text = render_report(std::slice::from_ref(&analysis)).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["version"].as_str(), Some("2.1.0"));
    }
}
