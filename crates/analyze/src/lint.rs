//! Source-level lint for the serving hot path.
//!
//! PR 2 established a rule the compiler cannot enforce: code on the
//! serving path — selection cache, resilient executor, selector,
//! simulated runtime — must not contain latent panics. This module
//! makes the rule mechanical. It is deliberately *not* a Rust parser:
//! a scanner strips comments and string literals (preserving line
//! structure), carves out `#[cfg(test)]` regions, and then matches a
//! small set of token patterns. That is crude but fast (the whole hot
//! path lints in milliseconds), has no dependencies, and the escape
//! hatch — `// lint:allow(<rule>)` on the offending or preceding line —
//! keeps false positives cheap to silence *visibly*, in the diff.
//!
//! Rules:
//!
//! | id                 | bans                                         |
//! |--------------------|----------------------------------------------|
//! | `no-unwrap`        | `.unwrap(`                                   |
//! | `no-expect`        | `.expect(`                                   |
//! | `no-panic`         | `panic!`                                     |
//! | `no-todo`          | `todo!`                                      |
//! | `no-unimplemented` | `unimplemented!`                             |
//! | `no-partial-cmp`   | `partial_cmp` (prefer `total_cmp`)           |
//! | `no-index`         | non-literal slice/array indexing `xs[i]`     |
//! | `no-alloc`         | allocation on the decide path                |
//!
//! `no-index` permits integer-literal subscripts (`range[0]` on a
//! `[usize; 2]` cannot move out of bounds at runtime) and fires on
//! everything else, including range slicing.
//!
//! `no-alloc` bans `Vec::new`, `Box::new`, `String::from`, `format!`,
//! `.push(`, `.to_vec(` and `.clone()` — the allocation idioms that
//! can sneak onto the sub-100ns decide path. It applies only to
//! [`DECIDE_PATH_FILES`] (the panic rules cover all of
//! [`HOT_PATH_FILES`]); cold paths inside those files opt out
//! per-item with `// lint:allow-fn(no-alloc) <justification>`, which
//! suppresses the named rules from the comment through the end of the
//! next item's body.
//!
//! To add a rule: extend [`Rule`], its `ALL`/`id`/`from_id` tables, and
//! the matching arm in `scan_line` (or `scan_indexing` for token-level
//! rules), then add a fixture case in `tests/lint_fixtures.rs`.

use std::fmt;
use std::path::Path;

/// Workspace-relative source files on the serving hot path, the default
/// lint target set for the `hotpath_lint` binary. The mlkit inference
/// modules are included because every selector prediction (knn/forest)
/// and shape-cluster assignment (kmeans) runs inside the serving loop;
/// the sharded scheduler, the ingress layer in front of it, and their
/// acceptance examples are included because a panic in the fleet front
/// door takes down every device's traffic at once; the snapshot
/// restore path is included because a corrupted snapshot must degrade
/// typed, never panic a restarting server.
pub const HOT_PATH_FILES: [&str; 15] = [
    "crates/core/src/cache.rs",
    "crates/core/src/decide.rs",
    "crates/core/src/ingress.rs",
    "crates/core/src/online.rs",
    "crates/core/src/persist.rs",
    "crates/core/src/resilient.rs",
    "crates/core/src/sched.rs",
    "crates/core/src/sched/deque.rs",
    "crates/core/src/select.rs",
    "crates/mlkit/src/forest.rs",
    "crates/mlkit/src/kmeans.rs",
    "crates/mlkit/src/knn.rs",
    "crates/sycl-sim/src/runtime.rs",
    "examples/ingress_serving.rs",
    "examples/sharded_serving.rs",
];

/// Files whose non-cold code is the *decide path* — the sub-microsecond
/// cached-selection route a serving request takes on every pick. These
/// additionally carry the `no-alloc` rule (ROADMAP item 4): a malloc on
/// this path costs more than the decision itself. Matched by file name
/// so both workspace-relative and absolute invocations agree.
pub const DECIDE_PATH_FILES: [&str; 5] = [
    "cache.rs",
    "decide.rs",
    "deque.rs",
    "online.rs",
    "select.rs",
];

/// Files carrying *only* the `no-partial-cmp` rule: training-time code
/// whose NaN-ordering panics were swept in the hdbscan/svm/tree/eigen
/// and tuner cleanups. They legitimately use `unwrap`/indexing off the
/// serving path, so the full panic-safety set would drown them in
/// false positives — but a `partial_cmp` regression here reintroduces
/// the exact bug class the sweep removed. Matched by path suffix so
/// workspace-relative and absolute invocations agree.
pub const TOTAL_CMP_FILES: [&str; 6] = [
    "crates/mlkit/src/eigen.rs",
    "crates/mlkit/src/hdbscan.rs",
    "crates/mlkit/src/svm.rs",
    "crates/mlkit/src/tree.rs",
    "crates/tuner/src/objective.rs",
    "crates/tuner/src/strategies.rs",
];

/// A lint rule the hot path must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Ban `.unwrap(` — a latent panic on `None`/`Err`.
    NoUnwrap,
    /// Ban `.expect(` — a latent panic with a message.
    NoExpect,
    /// Ban `panic!` invocations.
    NoPanic,
    /// Ban `todo!` placeholders.
    NoTodo,
    /// Ban `unimplemented!` placeholders.
    NoUnimplemented,
    /// Ban `partial_cmp` — `total_cmp` cannot return `None` on NaN.
    NoPartialCmp,
    /// Ban non-literal slice indexing — prefer `.get(...)`.
    NoIndex,
    /// Ban allocation idioms on the decide path.
    NoAlloc,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::NoUnwrap,
        Rule::NoExpect,
        Rule::NoPanic,
        Rule::NoTodo,
        Rule::NoUnimplemented,
        Rule::NoPartialCmp,
        Rule::NoIndex,
        Rule::NoAlloc,
    ];

    /// The panic-safety rules applied to every hot-path file.
    pub const PANIC_SAFETY: [Rule; 7] = [
        Rule::NoUnwrap,
        Rule::NoExpect,
        Rule::NoPanic,
        Rule::NoTodo,
        Rule::NoUnimplemented,
        Rule::NoPartialCmp,
        Rule::NoIndex,
    ];

    /// Stable id used in diagnostics and `lint:allow(...)` comments.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoExpect => "no-expect",
            Rule::NoPanic => "no-panic",
            Rule::NoTodo => "no-todo",
            Rule::NoUnimplemented => "no-unimplemented",
            Rule::NoPartialCmp => "no-partial-cmp",
            Rule::NoIndex => "no-index",
            Rule::NoAlloc => "no-alloc",
        }
    }

    /// Parse an id back into a rule.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The file the violation is in (as given to the linter).
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The trimmed offending source line.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// The rule set a given path must satisfy: `no-partial-cmp` alone for
/// [`TOTAL_CMP_FILES`], otherwise panic safety everywhere, plus
/// `no-alloc` when the file name is one of [`DECIDE_PATH_FILES`].
pub fn rules_for(path: &str) -> Vec<Rule> {
    let name = Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or(path);
    let normalized = path.replace('\\', "/");
    if TOTAL_CMP_FILES.iter().any(|f| normalized.ends_with(f)) {
        return vec![Rule::NoPartialCmp];
    }
    let mut rules: Vec<Rule> = Rule::PANIC_SAFETY.to_vec();
    if DECIDE_PATH_FILES.contains(&name) {
        rules.push(Rule::NoAlloc);
    }
    rules
}

/// Lint a file on disk with the rule set from [`rules_for`].
pub fn lint_file(path: &Path) -> std::io::Result<Vec<Violation>> {
    let source = std::fs::read_to_string(path)?;
    let display = path.display().to_string();
    let rules = rules_for(&display);
    Ok(lint_source_with(&display, &source, &rules))
}

/// Lint source text with the panic-safety rule set, reporting violations
/// outside `#[cfg(test)]` code that are not suppressed by a
/// `// lint:allow(<rule>)` comment on the same or the preceding line.
pub fn lint_source(file: &str, source: &str) -> Vec<Violation> {
    lint_source_with(file, source, &Rule::PANIC_SAFETY)
}

/// Lint source text against an explicit rule set. Suppression comes in
/// two scopes: `lint:allow(<rules>)` on the same or preceding line, and
/// `lint:allow-fn(<rules>)` covering the whole next item body.
pub fn lint_source_with(file: &str, source: &str, rules: &[Rule]) -> Vec<Violation> {
    let allows = collect_allows(source);
    let sanitized = sanitize(source);
    let fn_allows = collect_fn_allows(source, &sanitized);
    let test_lines = test_region_lines(&sanitized);
    let raw_lines: Vec<&str> = source.lines().collect();

    let mut violations = Vec::new();
    for (idx, line) in sanitized.lines().enumerate() {
        let lineno = idx + 1;
        if test_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for rule in scan_line(line) {
            if !rules.contains(&rule) {
                continue;
            }
            let allowed = allows_rule(&allows, lineno, rule)
                || fn_allows
                    .iter()
                    .any(|&(r, start, end)| r == rule && (start..=end).contains(&lineno));
            if !allowed {
                violations.push(Violation {
                    file: file.to_string(),
                    line: lineno,
                    rule,
                    snippet: raw_lines
                        .get(idx)
                        .map_or(String::new(), |l| l.trim().to_string()),
                });
            }
        }
    }
    violations
}

/// Whether `rule` is allowed at `lineno` (1-based): an allow comment on
/// the same line or the line directly above suppresses it.
fn allows_rule(allows: &[Vec<Rule>], lineno: usize, rule: Rule) -> bool {
    let at = |l: usize| l >= 1 && allows.get(l - 1).is_some_and(|v| v.contains(&rule));
    at(lineno) || at(lineno - 1)
}

/// Per-line `lint:allow(...)` rule lists, parsed from the raw source so
/// comment stripping cannot eat them.
fn collect_allows(source: &str) -> Vec<Vec<Rule>> {
    source
        .lines()
        .map(|line| {
            let mut rules = Vec::new();
            let mut rest = line;
            while let Some(pos) = rest.find("lint:allow(") {
                rest = &rest[pos + "lint:allow(".len()..];
                if let Some(end) = rest.find(')') {
                    for id in rest[..end].split(',') {
                        if let Some(rule) = Rule::from_id(id.trim()) {
                            rules.push(rule);
                        }
                    }
                    rest = &rest[end + 1..];
                } else {
                    break;
                }
            }
            rules
        })
        .collect()
}

/// Item-scoped allows. A `// lint:allow-fn(<rules>) <why>` comment
/// suppresses the named rules from its own line through the end of the
/// next item's brace-matched body (or its terminating semicolon, for
/// braceless items). Returns `(rule, start_line, end_line)` triples,
/// 1-based inclusive.
fn collect_fn_allows(source: &str, sanitized: &str) -> Vec<(Rule, usize, usize)> {
    let bytes = sanitized.as_bytes();
    // Byte offset where each sanitized line starts, and line of each byte.
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };

    let mut regions = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let Some(pos) = raw_line.find("lint:allow-fn(") else {
            continue;
        };
        let rest = &raw_line[pos + "lint:allow-fn(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let listed: Vec<Rule> = rest[..close]
            .split(',')
            .filter_map(|id| Rule::from_id(id.trim()))
            .collect();
        if listed.is_empty() {
            continue;
        }
        // Walk the sanitized source from this line for the item body:
        // first `{` opens a brace-matched region; a `;` first means a
        // braceless item ending there.
        let mut j = *line_starts.get(idx).unwrap_or(&bytes.len());
        let mut end = bytes.len().saturating_sub(1);
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    let mut depth = 0usize;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = j;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                }
                b';' => {
                    end = j;
                    break;
                }
                _ => j += 1,
            }
        }
        let end_line = line_of(end.min(bytes.len().saturating_sub(1))) + 1;
        for rule in listed {
            regions.push((rule, idx + 1, end_line));
        }
    }
    regions
}

/// Replace comments and string/char literals with spaces, preserving
/// line structure, so token scans cannot fire inside text.
pub(crate) fn sanitize(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (consumed, blanked) = skip_raw_string(bytes, i);
                out.extend_from_slice(&blanked);
                i += consumed;
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' if is_char_literal(bytes, i) => {
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    j += 2; // skip the escape lead-in
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                } else {
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                }
                let end = j.min(bytes.len() - 1);
                out.extend(std::iter::repeat_n(b' ', end - i + 1));
                i = j + 1;
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, Vec<u8>) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut end = bytes.len();
    let mut k = j;
    while k < bytes.len() {
        if bytes[k..].starts_with(&closer) {
            end = k + closer.len();
            break;
        }
        k += 1;
    }
    let blanked = bytes[i..end]
        .iter()
        .map(|&b| if b == b'\n' { b'\n' } else { b' ' })
        .collect();
    (end - i, blanked)
}

/// Distinguish a char literal from a lifetime: `'x'` or `'\...'` closes
/// with a quote nearby; `'a` in `&'a str` does not.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Mark the lines covered by `#[cfg(test)]` items (attribute through
/// the matching close brace, or the terminating semicolon for
/// braceless items).
pub(crate) fn test_region_lines(sanitized: &str) -> Vec<bool> {
    let n_lines = sanitized.lines().count();
    let mut flags = vec![false; n_lines];
    let bytes = sanitized.as_bytes();
    let line_of: Vec<usize> = {
        let mut v = Vec::with_capacity(bytes.len());
        let mut line = 0;
        for &b in bytes {
            v.push(line);
            if b == b'\n' {
                line += 1;
            }
        }
        v
    };

    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle.as_slice() {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        // Find the item body: first `{` opens a brace-matched region;
        // a `;` first means a braceless item.
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    let mut depth = 0usize;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = j + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                }
                b';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let (a, b) = (line_of[start], line_of[(end - 1).min(bytes.len() - 1)]);
        for flag in flags.iter_mut().take(b + 1).skip(a) {
            *flag = true;
        }
        i = end.max(i + 1);
    }
    flags
}

pub(crate) fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `pat` occurs in `line` starting at a non-identifier boundary.
pub(crate) fn contains_token(line: &str, pat: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        let at = from + pos;
        let boundary = at == 0 || !is_ident(bytes[at - 1]);
        if boundary {
            return true;
        }
        from = at + 1;
    }
    false
}

/// All rule hits on one sanitized line.
fn scan_line(line: &str) -> Vec<Rule> {
    let mut hits = Vec::new();
    if line.contains(".unwrap(") {
        hits.push(Rule::NoUnwrap);
    }
    if line.contains(".expect(") {
        hits.push(Rule::NoExpect);
    }
    if contains_token(line, "panic!") {
        hits.push(Rule::NoPanic);
    }
    if contains_token(line, "todo!") {
        hits.push(Rule::NoTodo);
    }
    if contains_token(line, "unimplemented!") {
        hits.push(Rule::NoUnimplemented);
    }
    if contains_token(line, "partial_cmp") {
        hits.push(Rule::NoPartialCmp);
    }
    if scan_indexing(line) {
        hits.push(Rule::NoIndex);
    }
    if scan_alloc(line) {
        hits.push(Rule::NoAlloc);
    }
    hits
}

/// Detect allocation idioms: constructor paths (`Vec::new`, `Box::new`,
/// `String::from`), the `format!` macro, and allocating method calls
/// (`.push(`, `.to_vec(`, `.clone()`).
fn scan_alloc(line: &str) -> bool {
    contains_token(line, "Vec::new")
        || contains_token(line, "Box::new")
        || contains_token(line, "String::from")
        || contains_token(line, "format!")
        || line.contains(".push(")
        || line.contains(".to_vec(")
        || line.contains(".clone()")
}

/// Detect non-literal index expressions `expr[subscript]`: a `[`
/// directly preceded by an identifier character, `]` or `)`, whose
/// subscript is not a bare integer literal.
fn scan_indexing(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (pos, &b) in bytes.iter().enumerate() {
        if b != b'[' || pos == 0 {
            continue;
        }
        let prev = bytes[pos - 1];
        if !(is_ident(prev) || prev == b']' || prev == b')') {
            continue;
        }
        // Find the matching close bracket on this line.
        let mut depth = 0usize;
        let mut close = None;
        for (k, &c) in bytes.iter().enumerate().skip(pos) {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let content = match close {
            Some(k) => line[pos + 1..k].trim(),
            // Subscript continues past the line: conservatively flag.
            None => return true,
        };
        let literal =
            !content.is_empty() && content.bytes().all(|c| c.is_ascii_digit() || c == b'_');
        if !literal {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_in(src: &str) -> Vec<Rule> {
        lint_source("mem.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn flags_each_banned_construct() {
        assert_eq!(rules_in("let x = y.unwrap();"), vec![Rule::NoUnwrap]);
        assert_eq!(rules_in("let x = y.expect(\"m\");"), vec![Rule::NoExpect]);
        assert_eq!(rules_in("panic!(\"boom\");"), vec![Rule::NoPanic]);
        assert_eq!(rules_in("todo!()"), vec![Rule::NoTodo]);
        assert_eq!(rules_in("unimplemented!()"), vec![Rule::NoUnimplemented]);
        assert_eq!(rules_in("a.partial_cmp(&b)"), vec![Rule::NoPartialCmp]);
        assert_eq!(rules_in("let v = xs[i];"), vec![Rule::NoIndex]);
    }

    #[test]
    fn literal_indexing_and_non_index_brackets_pass() {
        assert!(rules_in("let v = r.global()[0];").is_empty());
        assert!(rules_in("let a: [usize; 2] = [m, n];").is_empty());
        assert!(rules_in("let v = vec![1, 2, 3];").is_empty());
        assert!(rules_in("let x = xs[1_0];").is_empty());
        // Slicing can panic just like indexing.
        assert_eq!(rules_in("let s = &xs[1..];"), vec![Rule::NoIndex]);
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        assert!(rules_in("// calls .unwrap() on purpose").is_empty());
        assert!(rules_in("let s = \"don't panic!\";").is_empty());
        assert!(rules_in("/* block .expect( comment */").is_empty());
        assert!(rules_in("let c = 'x'; let l: &'static str = \"ok\";").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "let x = y.unwrap(); // lint:allow(no-unwrap)";
        assert!(rules_in(same).is_empty());
        let prev = "// lint:allow(no-index) slot is masked to len\nlet v = xs[slot];";
        assert!(rules_in(prev).is_empty());
        // The allow names a different rule: violation stands.
        let wrong = "let x = y.unwrap(); // lint:allow(no-index)";
        assert_eq!(rules_in(wrong), vec![Rule::NoUnwrap]);
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail(i: usize, xs: &[u32]) -> u32 { xs[i] }\n";
        let v = lint_source("mem.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoIndex);
        assert_eq!(v[0].line, 6);
    }

    fn alloc_rules_in(src: &str) -> Vec<Rule> {
        lint_source_with("cache.rs", src, &[Rule::NoAlloc])
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn no_alloc_flags_each_allocation_idiom() {
        for src in [
            "let v: Vec<u32> = Vec::new();",
            "let b = Box::new(1u32);",
            "let s = String::from(name);",
            "let m = format!(\"{n}\");",
            "xs.push(1);",
            "let v = xs.to_vec();",
            "let c = cfg.clone();",
        ] {
            assert_eq!(alloc_rules_in(src), vec![Rule::NoAlloc], "src: {src}");
        }
        // Non-allocating lookalikes pass.
        assert!(alloc_rules_in("let r = Clone::clone_from(&mut a, &b);").is_empty());
        assert!(alloc_rules_in("let v = MyVec::newish();").is_empty());
    }

    #[test]
    fn no_alloc_applies_only_to_decide_path_files() {
        assert!(rules_for("crates/core/src/cache.rs").contains(&Rule::NoAlloc));
        assert!(rules_for("crates/core/src/online.rs").contains(&Rule::NoAlloc));
        assert!(rules_for("crates/core/src/select.rs").contains(&Rule::NoAlloc));
        assert!(!rules_for("crates/core/src/ingress.rs").contains(&Rule::NoAlloc));
        assert!(!rules_for("crates/core/src/sched.rs").contains(&Rule::NoAlloc));
    }

    #[test]
    fn allow_fn_covers_the_whole_next_item_body() {
        let src = "\
// lint:allow-fn(no-alloc) cold restore path
fn restore(xs: &[u32]) -> Vec<u32> {
    let mut v = Vec::new();
    v.push(xs.to_vec().len() as u32);
    v
}

fn hot(v: &mut Vec<u32>) {
    v.push(1);
}
";
        let v = lint_source_with("cache.rs", src, &[Rule::NoAlloc]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 9);
    }

    #[test]
    fn allow_fn_names_only_the_listed_rules() {
        let src = "\
// lint:allow-fn(no-alloc) justified
fn f(xs: &[u32], i: usize) -> u32 {
    let v = xs.to_vec();
    v[i]
}
";
        let v = lint_source_with("cache.rs", src, &[Rule::NoAlloc, Rule::NoIndex]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoIndex);
    }

    #[test]
    fn rule_ids_roundtrip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("no-such"), None);
    }
}
