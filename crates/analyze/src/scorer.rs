//! Analytical zero-benchmark scorer for the kernel configuration space.
//!
//! [`AnalyticalScorer`] ranks all 640 [`KernelConfig`]s for any
//! `(M, K, N)` on any [`DeviceSpec`] **without a single simulated
//! launch**, in the spirit of tritonBLAS (arXiv:2512.04226): every term
//! is derived from mechanisms the repo already owns —
//!
//! - **occupancy** and **latency hiding** from `sycl-sim::perf` (the
//!   exact saturation curve the simulator prices with),
//! - **coalescing**, **cache reuse** and **ILP** from `gemm::model`,
//! - **tile-quantisation waste** (useful vs. dispatched items, the
//!   `utilization` mechanism), and
//! - **arithmetic intensity vs. the device roofline**
//!   (`peak_flops` / `mem_bandwidth` / `cache_bandwidth`).
//!
//! The score of a configuration is its modelled *useful* FLOP rate as
//! a fraction of device peak — higher is better, `0.0` means the
//! runtime would reject the launch outright. The scorer deliberately
//! omits the simulator's tail-pass quantisation, launch overhead and
//! deterministic noise: overhead is configuration-independent (it
//! cancels in ranking) and the other two are measurement-level detail
//! a zero-benchmark model cannot see. The result is a coarser ranking
//! than `estimate_cost`, exact enough to be a cold-start selector, a
//! bandit prior and a pruning oracle (see `core::select`,
//! `core::pipeline`).
//!
//! Construction classifies each configuration once (validity is
//! shape-independent, exactly as [`crate::KernelSpaceAnalyzer`]
//! establishes); per-shape scoring is then pure arithmetic —
//! O(shipped-set) work per pick and well under a microsecond for a
//! shipped set of six.

use autokernel_gemm::{model, GemmShape, KernelConfig};
use autokernel_sycl_sim::perf::{latency_hiding, occupancy};
use autokernel_sycl_sim::resources::check_launch;
use autokernel_sycl_sim::DeviceSpec;

/// Shape-independent per-configuration facts, computed once.
#[derive(Debug, Clone)]
struct ConfigEntry {
    config: KernelConfig,
    /// Whether the runtime would accept a launch of this configuration
    /// on the device (shape-independent: the checks read only the
    /// work-group size and per-group LDS demand).
    launchable: bool,
    /// Achieved occupancy fraction (also shape-independent: registers
    /// and LDS are functions of the configuration alone).
    occupancy: f64,
}

/// Zero-benchmark analytical ranker over the 640-point space.
///
/// ```
/// use autokernel_analyze::AnalyticalScorer;
/// use autokernel_gemm::GemmShape;
/// use autokernel_sycl_sim::DeviceSpec;
///
/// let scorer = AnalyticalScorer::new(&DeviceSpec::amd_r9_nano());
/// let ranked = scorer.rank_all(&GemmShape::new(1024, 1024, 1024));
/// assert_eq!(ranked.len(), 640);
/// assert!(ranked[0].1 >= ranked[639].1);
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticalScorer {
    device: DeviceSpec,
    entries: Vec<ConfigEntry>,
}

impl AnalyticalScorer {
    /// Build a scorer for `device`, classifying all 640 configurations
    /// (launchability + occupancy) once up front.
    pub fn new(device: &DeviceSpec) -> Self {
        // Validity and occupancy are shape-independent; any well-formed
        // shape works as the probe. 1024^3 matches the analyzer's
        // canonical choice.
        let probe = GemmShape::new(1024, 1024, 1024);
        let entries = KernelConfig::all()
            .into_iter()
            .map(|config| {
                let profile = model::profile(&config, &probe, device);
                match model::launch_range(&config, &probe) {
                    Ok(range) => ConfigEntry {
                        launchable: check_launch(device, &profile, &range).is_ok(),
                        occupancy: occupancy(device, &profile, &range),
                        config,
                    },
                    Err(_) => ConfigEntry {
                        launchable: false,
                        occupancy: 0.0,
                        config,
                    },
                }
            })
            .collect();
        AnalyticalScorer {
            device: device.clone(),
            entries,
        }
    }

    /// The device this scorer models.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Whether the runtime would accept config `index` on this device.
    /// Unknown indices are not launchable.
    pub fn launchable(&self, index: usize) -> bool {
        self.entries.get(index).is_some_and(|e| e.launchable)
    }

    /// Analytical score of config `index` on `shape`: modelled useful
    /// FLOP rate as a fraction of device peak, in `[0, 1]`. `0.0` for
    /// unlaunchable configurations and unknown indices. Pure
    /// arithmetic — no launch, no allocation.
    pub fn score_index(&self, index: usize, shape: &GemmShape) -> f64 {
        match self.entries.get(index) {
            Some(entry) if entry.launchable => self.score_entry(entry, shape),
            _ => 0.0,
        }
    }

    /// Analytical score of `config` on `shape` (see [`Self::score_index`]).
    pub fn score(&self, config: &KernelConfig, shape: &GemmShape) -> f64 {
        self.score_index(config.index(), shape)
    }

    fn score_entry(&self, entry: &ConfigEntry, shape: &GemmShape) -> f64 {
        let cfg = &entry.config;
        let dev = &self.device;

        // Tile quantisation: useful vs. dispatched work-items. Counted
        // in f64 so degenerate shapes cannot overflow.
        let grid = model::useful_grid(cfg, shape);
        let padded_rows = grid[0].div_ceil(cfg.work_group.rows) * cfg.work_group.rows;
        let padded_cols = grid[1].div_ceil(cfg.work_group.cols) * cfg.work_group.cols;
        let useful = grid[0] as f64 * grid[1] as f64;
        let dispatched = padded_rows as f64 * padded_cols as f64;
        if useful <= 0.0 || dispatched <= 0.0 {
            return 0.0;
        }
        let util = (useful / dispatched).clamp(0.0, 1.0);

        // Compute side of the roofline: peak scaled by the same
        // latency-hiding saturation, device fill and ILP the simulator
        // uses.
        let ilp = model::ilp(cfg, shape).clamp(0.05, 1.0);
        let hiding = latency_hiding(entry.occupancy, ilp);
        let fill = (dispatched / dev.total_lanes() as f64).clamp(1e-6, 1.0);
        let eff_flops = (dev.peak_flops * hiding * fill * ilp).max(1.0);

        let k = shape.k as f64;
        let flops_per_item = 2.0 * (cfg.tile_rows * cfg.tile_cols) as f64 * k;
        let bytes_per_item = 4.0
            * ((cfg.tile_rows + cfg.tile_cols) as f64 * k + (cfg.tile_rows * cfg.tile_cols) as f64);
        let compute_s_per_item = flops_per_item / eff_flops;

        // Memory side: raw traffic split by cache reuse, DRAM part
        // divided by coalescing-scaled bandwidth.
        let reuse = model::cache_reuse(cfg, shape).clamp(0.0, 0.999);
        let coal = model::coalescing(cfg, dev, shape).clamp(0.02, 1.0);
        let memory_s_per_item = bytes_per_item * (1.0 - reuse)
            / (dev.mem_bandwidth * coal * fill.max(0.05))
            + bytes_per_item * reuse / dev.cache_bandwidth;

        // Roofline: the slower side bounds throughput. Useful FLOPs per
        // second, normalised by peak, discounts padding waste exactly
        // like `utilization` does in the priced model.
        let s_per_item = compute_s_per_item
            .max(memory_s_per_item)
            .max(f64::MIN_POSITIVE);
        let useful_flop_rate = flops_per_item * util / s_per_item;
        (useful_flop_rate / dev.peak_flops.max(1.0)).clamp(0.0, 1.0)
    }

    /// Score every configuration for `shape`, returned as
    /// `(config_index, score)` sorted best-first (ties broken by lower
    /// index for determinism).
    pub fn rank_all(&self, shape: &GemmShape) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = (0..self.entries.len())
            .map(|i| (i, self.score_index(i, shape)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// The `n` best config indices for `shape`, best first. Only
    /// launchable configurations are returned, so the result may be
    /// shorter than `n` on restrictive devices.
    pub fn top_n(&self, shape: &GemmShape, n: usize) -> Vec<usize> {
        self.rank_all(shape)
            .into_iter()
            .filter(|&(i, s)| s > 0.0 && self.launchable(i))
            .take(n)
            .map(|(i, _)| i)
            .collect()
    }

    /// Best launchable configuration among `allowed` for `shape`, or
    /// `None` when the set is empty or nothing in it can launch.
    /// Allocation-free argmax: this is the decide-path entry point.
    pub fn pick_among(&self, shape: &GemmShape, allowed: &[usize]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for &index in allowed {
            if !self.launchable(index) {
                continue;
            }
            let score = self.score_index(index, shape);
            let better = match best {
                None => true,
                Some((best_index, best_score)) => {
                    score > best_score || (score == best_score && index < best_index)
                }
            };
            if better {
                best = Some((index, score));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Number of configurations this scorer knows (the full space).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the configuration space is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_finite_in_unit_range_and_zero_iff_unlaunchable() {
        let scorer = AnalyticalScorer::new(&DeviceSpec::edge_dsp());
        let shape = GemmShape::new(512, 512, 512);
        for i in 0..scorer.len() {
            let s = scorer.score_index(i, &shape);
            assert!(s.is_finite(), "config {i} score {s} not finite");
            assert!(
                (0.0..=1.0).contains(&s),
                "config {i} score {s} out of range"
            );
            if !scorer.launchable(i) {
                assert_eq!(s, 0.0, "unlaunchable config {i} must score 0");
            }
        }
    }

    #[test]
    fn rank_all_is_sorted_and_complete() {
        let scorer = AnalyticalScorer::new(&DeviceSpec::amd_r9_nano());
        let ranked = scorer.rank_all(&GemmShape::new(784, 1152, 128));
        assert_eq!(ranked.len(), KernelConfig::count());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Every index appears exactly once.
        let mut seen = vec![false; ranked.len()];
        for &(i, _) in &ranked {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn pick_among_honours_the_allowed_set() {
        let scorer = AnalyticalScorer::new(&DeviceSpec::amd_r9_nano());
        let shape = GemmShape::new(1024, 1024, 1024);
        let allowed = [3, 77, 401, 638];
        let pick = scorer.pick_among(&shape, &allowed).unwrap();
        assert!(allowed.contains(&pick));
        // And it picks the argmax of the allowed scores.
        let best = allowed
            .iter()
            .map(|&i| (i, scorer.score_index(i, &shape)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert_eq!(pick, best);
        assert_eq!(scorer.pick_among(&shape, &[]), None);
    }

    #[test]
    fn unlaunchable_only_sets_yield_none() {
        let scorer = AnalyticalScorer::new(&DeviceSpec::edge_dsp());
        let shape = GemmShape::new(256, 256, 256);
        let rejected: Vec<usize> = (0..scorer.len())
            .filter(|&i| !scorer.launchable(i))
            .collect();
        assert!(!rejected.is_empty(), "edge DSP must reject some configs");
        assert_eq!(
            scorer.pick_among(&shape, &rejected[..6.min(rejected.len())]),
            None
        );
    }

    #[test]
    fn bigger_tiles_win_on_big_compute_bound_shapes() {
        // Sanity of the ranking direction: on a large square GEMM the
        // scorer must prefer some multi-item tile over the scalar
        // 1x1-tile configurations (which have minimal arithmetic
        // intensity and ILP).
        let scorer = AnalyticalScorer::new(&DeviceSpec::amd_r9_nano());
        let shape = GemmShape::new(2048, 2048, 2048);
        let best = scorer.rank_all(&shape)[0].0;
        let cfg = KernelConfig::from_index(best).unwrap();
        assert!(
            cfg.tile_rows * cfg.tile_cols > 1,
            "top config {cfg} should not be a scalar tile"
        );
    }
}
