//! Static concurrency audit: atomic-ordering roles and lock ordering.
//!
//! PRs 5–7 made the serving stack deeply concurrent — a hand-rolled
//! MPMC channel shim, lock-free LRU/Bloom decision caches, lock-free
//! latency histograms, snapshot-while-serving — and `analyze::lint`
//! only proves panic-freedom. This module makes the *memory-ordering
//! contracts* mechanical, in the same comment-stripping token-scanner
//! style (no Rust parser, no dependencies):
//!
//! **Atomic-ordering audit.** Every atomic operation site in the
//! audited modules must declare a role with a structured comment,
//! `// atomic:role(counter|publish|tick|flag)`, on the same line as the
//! operation or within the two lines above it. Each annotation binds to
//! exactly one site. The scanner finds atomic operations by method
//! token (`.load(`, `.store(`, `.fetch_*`, `.swap(`,
//! `.compare_exchange*`) carrying at least one `Ordering::` argument —
//! matching across line breaks inside the call's parentheses — and
//! checks the declared role against the orderings actually used:
//!
//! | role      | intent                                   | allowed orderings            |
//! |-----------|------------------------------------------|------------------------------|
//! | `counter` | monotone statistic, no data guarded      | `Relaxed` everywhere         |
//! | `tick`    | LRU clock / logical timestamp            | `Relaxed` everywhere         |
//! | `publish` | guards dependent data written before it  | `Acquire` loads, `Release` stores, non-`Relaxed` RMW |
//! | `flag`    | state flip observed by other threads     | same as `publish`            |
//!
//! Undeclared sites, role/ordering mismatches, unknown roles and
//! orphan annotations are all findings. `#[cfg(test)]` regions are
//! exempt, as in the lint.
//!
//! **Lock-order analysis.** For every function in the audited files the
//! scanner extracts the in-order sequence of lock acquisitions
//! (`.lock()`, `.read()`, `.write()` with empty argument lists), names
//! each lock `module::field` by the receiver's last path component, and
//! adds a lock-order edge for each consecutive pair of *distinct* locks
//! (repeat acquisitions of the same lock — per-shard loops — are
//! sequential, not nested). A cycle in the union graph is a potential
//! deadlock and is reported as a finding. This is textual and
//! per-function, so it over-approximates nesting (an edge `a → b` does
//! not prove `a` is still held at `b`) — cheap, and exact on the
//! straight-line acquisition patterns this codebase uses.
//!
//! Findings and per-module summaries render as a SARIF report via
//! [`render_concurrency_report`]; the `concurrency_audit` binary
//! compares it byte-for-byte against the committed golden in
//! `reports/concurrency_audit.json`.

use crate::lint::{is_ident, sanitize, test_region_lines};
use crate::report::{int, obj, rule_descriptor, s};
use serde_json::Value;
use std::fmt;
use std::path::Path;

/// Tool name recorded in the SARIF run.
pub const TOOL_NAME: &str = "concurrency-auditor";

/// The audited modules: `(label, workspace-relative path)`. Five core
/// serving modules, the decide hot path and its work-stealing deque,
/// plus the two hand-rolled synchronisation shims.
pub const AUDIT_TARGETS: [(&str, &str); 9] = [
    ("core::cache", "crates/core/src/cache.rs"),
    ("core::decide", "crates/core/src/decide.rs"),
    ("core::ingress", "crates/core/src/ingress.rs"),
    ("core::online", "crates/core/src/online.rs"),
    ("core::sched", "crates/core/src/sched.rs"),
    ("core::sched::deque", "crates/core/src/sched/deque.rs"),
    ("core::resilient", "crates/core/src/resilient.rs"),
    ("shims::crossbeam", "shims/crossbeam/src/lib.rs"),
    ("shims::parking_lot", "shims/parking_lot/src/lib.rs"),
];

/// Declared role of an atomic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Monotone statistic; no data is guarded by it.
    Counter,
    /// LRU clock / logical timestamp; ordering is irrelevant.
    Tick,
    /// Publishes dependent data written before the store.
    Publish,
    /// State flip observed by other threads with acquire/release.
    Flag,
}

impl Role {
    /// All roles, in reporting order.
    pub const ALL: [Role; 4] = [Role::Counter, Role::Tick, Role::Publish, Role::Flag];

    /// Stable id used in `atomic:role(...)` comments and reports.
    pub fn id(&self) -> &'static str {
        match self {
            Role::Counter => "counter",
            Role::Tick => "tick",
            Role::Publish => "publish",
            Role::Flag => "flag",
        }
    }

    /// Parse an id back into a role.
    pub fn from_id(id: &str) -> Option<Role> {
        Role::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Kind of atomic operation at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// `.load(ordering)`
    Load,
    /// `.store(value, ordering)`
    Store,
    /// `fetch_add` / `fetch_sub` / `fetch_or` / `fetch_and` / `swap`
    Rmw,
    /// `compare_exchange` / `compare_exchange_weak`
    Cas,
}

impl AtomicOp {
    fn name(&self) -> &'static str {
        match self {
            AtomicOp::Load => "load",
            AtomicOp::Store => "store",
            AtomicOp::Rmw => "rmw",
            AtomicOp::Cas => "compare_exchange",
        }
    }
}

/// A memory ordering named at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrd {
    /// `Ordering::Relaxed`
    Relaxed,
    /// `Ordering::Acquire`
    Acquire,
    /// `Ordering::Release`
    Release,
    /// `Ordering::AcqRel`
    AcqRel,
    /// `Ordering::SeqCst`
    SeqCst,
}

impl MemOrd {
    fn from_id(id: &str) -> Option<MemOrd> {
        match id {
            "Relaxed" => Some(MemOrd::Relaxed),
            "Acquire" => Some(MemOrd::Acquire),
            "Release" => Some(MemOrd::Release),
            "AcqRel" => Some(MemOrd::AcqRel),
            "SeqCst" => Some(MemOrd::SeqCst),
            _ => None,
        }
    }

    fn id(&self) -> &'static str {
        match self {
            MemOrd::Relaxed => "Relaxed",
            MemOrd::Acquire => "Acquire",
            MemOrd::Release => "Release",
            MemOrd::AcqRel => "AcqRel",
            MemOrd::SeqCst => "SeqCst",
        }
    }
}

/// One atomic operation site found in a module.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// 1-based source line of the operation's method token.
    pub line: usize,
    /// Receiver expression (e.g. `self.count`).
    pub receiver: String,
    /// Operation kind.
    pub op: AtomicOp,
    /// Orderings named inside the call, in argument order.
    pub orderings: Vec<MemOrd>,
    /// Declared role, if an annotation bound to this site.
    pub role: Option<Role>,
}

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct LockAcquisition {
    /// Qualified lock name, `module::field`.
    pub lock: String,
    /// 1-based source line.
    pub line: usize,
}

/// The in-order lock acquisitions of one function.
#[derive(Debug, Clone)]
pub struct FunctionLocks {
    /// Function name as written at the `fn` keyword.
    pub function: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Acquisitions in source order.
    pub acquisitions: Vec<LockAcquisition>,
}

/// A directed lock-order edge: `from` acquired before `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock acquired first.
    pub from: String,
    /// Lock acquired while `from` may still be held.
    pub to: String,
    /// Function the pair was observed in.
    pub function: String,
    /// Module label.
    pub module: String,
    /// 1-based line of the second acquisition.
    pub line: usize,
}

/// Audit finding categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingRule {
    /// Atomic site with no bound `atomic:role(...)` annotation.
    UndeclaredAtomic,
    /// Orderings at a site incompatible with its declared role.
    RoleOrderingMismatch,
    /// Annotation that bound to no site, or names an unknown role.
    OrphanAnnotation,
    /// Cycle in the lock-order graph — potential deadlock.
    LockOrderCycle,
}

impl FindingRule {
    /// Stable SARIF rule id.
    pub fn id(&self) -> &'static str {
        match self {
            FindingRule::UndeclaredAtomic => "undeclared-atomic",
            FindingRule::RoleOrderingMismatch => "role-ordering-mismatch",
            FindingRule::OrphanAnnotation => "orphan-annotation",
            FindingRule::LockOrderCycle => "lock-order-cycle",
        }
    }
}

/// One audit finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Finding category.
    pub rule: FindingRule,
    /// Module label (or `lock-graph` for cross-module cycles).
    pub module: String,
    /// File the finding is in, when file-local.
    pub file: String,
    /// 1-based line, 0 when not line-local (cycles).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Audit of one module: atomic sites, lock sequences, local findings.
#[derive(Debug, Clone)]
pub struct ModuleAudit {
    /// Module label, e.g. `core::cache`.
    pub label: String,
    /// Workspace-relative path.
    pub file: String,
    /// Atomic sites outside `#[cfg(test)]`, in source order.
    pub sites: Vec<AtomicSite>,
    /// Per-function lock-acquisition sequences (only functions that
    /// acquire at least one lock).
    pub functions: Vec<FunctionLocks>,
    /// Findings local to this module.
    pub findings: Vec<Finding>,
}

/// Whole-workspace audit: per-module results plus the union lock graph.
#[derive(Debug, Clone)]
pub struct ConcurrencyAudit {
    /// Per-module audits in [`AUDIT_TARGETS`] order.
    pub modules: Vec<ModuleAudit>,
    /// Union lock-order edges across all modules, deduplicated.
    pub edges: Vec<LockEdge>,
    /// Lock-name cycles found in the union graph.
    pub cycles: Vec<Vec<String>>,
    /// All findings: module-local ones plus one per cycle.
    pub findings: Vec<Finding>,
}

impl ConcurrencyAudit {
    /// Total atomic sites across all modules.
    pub fn total_sites(&self) -> usize {
        self.modules.iter().map(|m| m.sites.len()).sum()
    }

    /// Total sites with a bound role annotation.
    pub fn declared_sites(&self) -> usize {
        self.modules
            .iter()
            .flat_map(|m| &m.sites)
            .filter(|site| site.role.is_some())
            .count()
    }
}

const ATOMIC_METHODS: [(&str, AtomicOp); 9] = [
    (".load(", AtomicOp::Load),
    (".store(", AtomicOp::Store),
    (".fetch_add(", AtomicOp::Rmw),
    (".fetch_sub(", AtomicOp::Rmw),
    (".fetch_or(", AtomicOp::Rmw),
    (".fetch_and(", AtomicOp::Rmw),
    (".swap(", AtomicOp::Rmw),
    (".compare_exchange(", AtomicOp::Cas),
    (".compare_exchange_weak(", AtomicOp::Cas),
];

/// Audit one module's source text.
pub fn audit_source(label: &str, file: &str, source: &str) -> ModuleAudit {
    let sanitized = sanitize(source);
    let test_lines = test_region_lines(&sanitized);
    let in_test = |line: usize| test_lines.get(line - 1).copied().unwrap_or(false);

    let mut findings = Vec::new();
    let mut sites = find_atomic_sites(&sanitized, &in_test);
    let annotations = collect_role_annotations(source, label, file, &in_test, &mut findings);
    bind_annotations(&mut sites, &annotations, label, file, &mut findings);

    for site in &sites {
        match site.role {
            None => findings.push(Finding {
                rule: FindingRule::UndeclaredAtomic,
                module: label.to_string(),
                file: file.to_string(),
                line: site.line,
                message: format!(
                    "atomic {} on `{}` has no atomic:role(...) annotation",
                    site.op.name(),
                    site.receiver
                ),
            }),
            Some(role) => {
                if let Some(msg) = role_mismatch(role, site) {
                    findings.push(Finding {
                        rule: FindingRule::RoleOrderingMismatch,
                        module: label.to_string(),
                        file: file.to_string(),
                        line: site.line,
                        message: msg,
                    });
                }
            }
        }
    }

    let functions = find_function_locks(label, &sanitized, &in_test);

    ModuleAudit {
        label: label.to_string(),
        file: file.to_string(),
        sites,
        functions,
        findings,
    }
}

/// Audit all [`AUDIT_TARGETS`] under a workspace root.
pub fn audit_workspace(root: &Path) -> std::io::Result<ConcurrencyAudit> {
    let mut modules = Vec::new();
    for (label, rel) in AUDIT_TARGETS {
        let source = std::fs::read_to_string(root.join(rel))?;
        modules.push(audit_source(label, rel, &source));
    }
    Ok(assemble(modules))
}

/// Combine per-module audits into the whole-workspace result: union
/// lock graph, cycle detection, flattened findings.
pub fn assemble(modules: Vec<ModuleAudit>) -> ConcurrencyAudit {
    let mut edges: Vec<LockEdge> = Vec::new();
    for module in &modules {
        for f in &module.functions {
            for pair in f.acquisitions.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if a.lock == b.lock {
                    continue;
                }
                if edges.iter().any(|e| e.from == a.lock && e.to == b.lock) {
                    continue;
                }
                edges.push(LockEdge {
                    from: a.lock.clone(),
                    to: b.lock.clone(),
                    function: f.function.clone(),
                    module: module.label.clone(),
                    line: b.line,
                });
            }
        }
    }

    let cycles = find_cycles(&edges);
    let mut findings: Vec<Finding> = modules.iter().flat_map(|m| m.findings.clone()).collect();
    for cycle in &cycles {
        findings.push(Finding {
            rule: FindingRule::LockOrderCycle,
            module: "lock-graph".to_string(),
            file: String::new(),
            line: 0,
            message: format!(
                "lock-order cycle (potential deadlock): {}",
                cycle.join(" -> ")
            ),
        });
    }

    ConcurrencyAudit {
        modules,
        edges,
        cycles,
        findings,
    }
}

/// Find atomic operation sites: a known method token whose parenthesised
/// argument region (matched across lines) names at least one
/// `Ordering::` constant.
fn find_atomic_sites(sanitized: &str, in_test: &dyn Fn(usize) -> bool) -> Vec<AtomicSite> {
    let bytes = sanitized.as_bytes();
    let line_of = line_index(bytes);
    let mut sites = Vec::new();

    let mut i = 0;
    while i < bytes.len() {
        let Some((token, op)) = ATOMIC_METHODS
            .iter()
            .find(|(t, _)| sanitized[i..].starts_with(t))
            .copied()
        else {
            i += 1;
            continue;
        };
        let line = line_of[i] + 1;
        let open = i + token.len() - 1;
        let (_, orderings) = scan_call_args(sanitized, open);
        if !orderings.is_empty() && !in_test(line) {
            sites.push(AtomicSite {
                line,
                receiver: receiver_before(bytes, i),
                op,
                orderings,
                role: None,
            });
        }
        // Advance by the token only: a nested atomic call inside this
        // call's arguments is its own site.
        i += token.len();
    }
    sites
}

/// Scan a call's argument region from the opening parenthesis, matching
/// nested parens across lines; collect `Ordering::X` names in order.
/// Nested atomic method calls are skipped wholesale — their orderings
/// belong to their own site. Returns the byte offset just past the
/// closing paren.
fn scan_call_args(sanitized: &str, open: usize) -> (usize, Vec<MemOrd>) {
    let bytes = sanitized.as_bytes();
    let mut depth = 0usize;
    let mut orderings = Vec::new();
    let mut j = open;
    while j < bytes.len() {
        if j > open {
            if let Some((token, _)) = ATOMIC_METHODS
                .iter()
                .find(|(t, _)| sanitized[j..].starts_with(t))
            {
                let (nested_end, _) = scan_call_args(sanitized, j + token.len() - 1);
                j = nested_end;
                continue;
            }
        }
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, orderings);
                }
            }
            b'O' if sanitized[j..].starts_with("Ordering::")
                && (j == 0 || !is_ident(bytes[j - 1])) =>
            {
                let rest = &sanitized[j + "Ordering::".len()..];
                let end = rest
                    .bytes()
                    .position(|b| !is_ident(b))
                    .unwrap_or(rest.len());
                if let Some(ord) = MemOrd::from_id(&rest[..end]) {
                    orderings.push(ord);
                }
            }
            _ => {}
        }
        j += 1;
    }
    (bytes.len(), orderings)
}

/// Reconstruct the receiver chain ending at the `.` of a method token:
/// walk identifiers and `.` separators backwards, skipping whitespace
/// between components (handles multi-line chains).
fn receiver_before(bytes: &[u8], dot: usize) -> String {
    let mut components: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        // Skip whitespace backwards before an identifier component.
        let mut k = j;
        while k > 0 && (bytes[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        let end = k;
        while k > 0 && is_ident(bytes[k - 1]) {
            k -= 1;
        }
        if k == end {
            break;
        }
        components.push(String::from_utf8_lossy(&bytes[k..end]).into_owned());
        // A `.` before this component continues the chain.
        let mut p = k;
        while p > 0 && (bytes[p - 1] as char).is_whitespace() {
            p -= 1;
        }
        if p > 0 && bytes[p - 1] == b'.' {
            j = p - 1;
        } else {
            break;
        }
    }
    components.reverse();
    components.join(".")
}

/// One parsed `atomic:role(...)` annotation.
struct RoleAnnotation {
    line: usize,
    role: Role,
}

/// Parse `atomic:role(<id>)` annotations from the raw source (comment
/// stripping would eat them). Unknown role ids become findings here.
fn collect_role_annotations(
    source: &str,
    label: &str,
    file: &str,
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) -> Vec<RoleAnnotation> {
    let mut annotations = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = idx + 1;
        if in_test(lineno) {
            continue;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("atomic:role(") {
            rest = &rest[pos + "atomic:role(".len()..];
            let Some(end) = rest.find(')') else { break };
            let id = rest[..end].trim();
            match Role::from_id(id) {
                Some(role) => annotations.push(RoleAnnotation { line: lineno, role }),
                None => findings.push(Finding {
                    rule: FindingRule::OrphanAnnotation,
                    module: label.to_string(),
                    file: file.to_string(),
                    line: lineno,
                    message: format!("unknown atomic role `{id}`"),
                }),
            }
            rest = &rest[end + 1..];
        }
    }
    annotations
}

/// Bind annotations to sites: each site takes the earliest unbound
/// annotation within the window `[site.line - 2, site.line]`, in order.
/// Annotations left unbound are orphans.
fn bind_annotations(
    sites: &mut [AtomicSite],
    annotations: &[RoleAnnotation],
    label: &str,
    file: &str,
    findings: &mut Vec<Finding>,
) {
    let mut used = vec![false; annotations.len()];
    for site in sites.iter_mut() {
        let lo = site.line.saturating_sub(2);
        let slot = annotations
            .iter()
            .enumerate()
            .find(|(k, a)| !used[*k] && a.line >= lo && a.line <= site.line);
        if let Some((k, a)) = slot {
            used[k] = true;
            site.role = Some(a.role);
        }
    }
    for (k, a) in annotations.iter().enumerate() {
        if !used[k] {
            findings.push(Finding {
                rule: FindingRule::OrphanAnnotation,
                module: label.to_string(),
                file: file.to_string(),
                line: a.line,
                message: format!(
                    "atomic:role({}) annotation binds to no atomic site within 2 lines",
                    a.role
                ),
            });
        }
    }
}

/// Check a site's orderings against its declared role. Returns the
/// mismatch message, or `None` when compatible.
fn role_mismatch(role: Role, site: &AtomicSite) -> Option<String> {
    let bad = |ord: MemOrd, why: &str| {
        Some(format!(
            "{} on `{}` declared {} but uses Ordering::{} ({})",
            site.op.name(),
            site.receiver,
            role,
            ord.id(),
            why
        ))
    };
    match role {
        Role::Counter | Role::Tick => {
            for &ord in &site.orderings {
                if ord != MemOrd::Relaxed {
                    return bad(ord, "counters and ticks guard no data; use Relaxed");
                }
            }
            None
        }
        Role::Publish | Role::Flag => match site.op {
            AtomicOp::Load => {
                let ord = *site.orderings.first()?;
                if ord == MemOrd::Acquire || ord == MemOrd::SeqCst {
                    None
                } else {
                    bad(ord, "publish/flag loads must be Acquire or SeqCst")
                }
            }
            AtomicOp::Store => {
                let ord = *site.orderings.first()?;
                if ord == MemOrd::Release || ord == MemOrd::SeqCst {
                    None
                } else {
                    bad(ord, "publish/flag stores must be Release or SeqCst")
                }
            }
            AtomicOp::Rmw => {
                let ord = *site.orderings.first()?;
                if ord == MemOrd::Relaxed {
                    bad(ord, "publish/flag RMW must not be Relaxed")
                } else {
                    None
                }
            }
            AtomicOp::Cas => {
                let success = *site.orderings.first()?;
                if success == MemOrd::Relaxed {
                    return bad(success, "publish/flag CAS success must not be Relaxed");
                }
                if let Some(&failure) = site.orderings.get(1) {
                    if failure == MemOrd::Release || failure == MemOrd::AcqRel {
                        return bad(failure, "CAS failure ordering cannot release");
                    }
                }
                None
            }
        },
    }
}

const LOCK_METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Extract per-function lock-acquisition sequences. A function is a
/// top-level-or-impl `fn` with a brace-matched body; acquisitions are
/// empty-argument `.lock()`/`.read()`/`.write()` calls, named by the
/// receiver's last path component and qualified by the module label.
fn find_function_locks(
    label: &str,
    sanitized: &str,
    in_test: &dyn Fn(usize) -> bool,
) -> Vec<FunctionLocks> {
    let bytes = sanitized.as_bytes();
    let line_of = line_index(bytes);
    let mut functions = Vec::new();

    let mut i = 0;
    while i + 2 < bytes.len() {
        let at_fn = sanitized[i..].starts_with("fn")
            && (i == 0 || !is_ident(bytes[i - 1]))
            && bytes.get(i + 2).is_some_and(|&b| b == b' ');
        if !at_fn {
            i += 1;
            continue;
        }
        let fn_line = line_of[i] + 1;
        // Function name follows the keyword.
        let mut j = i + 3;
        let name_start = j;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        let name = String::from_utf8_lossy(&bytes[name_start..j]).into_owned();
        // Find the body: first `{` at paren depth 0 (skips the
        // parameter list and any `-> (..)` return type); `;` first
        // means a bodyless declaration.
        let mut depth = 0usize;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => {
                    body = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body_start) = body else {
            i = j.max(i + 1);
            continue;
        };
        // Brace-match the body.
        let mut bd = 0usize;
        let mut k = body_start;
        let mut body_end = bytes.len();
        while k < bytes.len() {
            match bytes[k] {
                b'{' => bd += 1,
                b'}' => {
                    bd -= 1;
                    if bd == 0 {
                        body_end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }

        if !in_test(fn_line) {
            let mut acquisitions = Vec::new();
            let region = &sanitized[body_start..body_end];
            for off in find_lock_tokens(region) {
                let abs = body_start + off;
                let receiver = receiver_before(bytes, abs);
                let Some(field) = receiver.split('.').next_back().filter(|f| !f.is_empty()) else {
                    continue;
                };
                acquisitions.push(LockAcquisition {
                    lock: format!("{label}::{field}"),
                    line: line_of[abs] + 1,
                });
            }
            if !acquisitions.is_empty() {
                functions.push(FunctionLocks {
                    function: name,
                    line: fn_line,
                    acquisitions,
                });
            }
        }
        // Nested `fn` items are rare; continuing past the body keeps the
        // scan linear and attributes closure acquisitions to the
        // enclosing function, which is what lock ordering wants.
        i = body_end;
    }
    functions
}

/// Offsets (relative to `region`) of the `.` of each lock-method token.
fn find_lock_tokens(region: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for token in LOCK_METHODS {
        let mut from = 0;
        while let Some(pos) = region[from..].find(token) {
            hits.push(from + pos);
            from += pos + 1;
        }
    }
    hits.sort_unstable();
    hits
}

/// Find elementary cycles in the lock-order graph via DFS from each
/// node, reporting each distinct cycle once (deduplicated by rotated
/// canonical form).
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        for name in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains(&name) {
                nodes.push(name);
            }
        }
    }
    nodes.sort_unstable();

    let succ = |name: &str| -> Vec<&str> {
        edges
            .iter()
            .filter(|e| e.from == name)
            .map(|e| e.to.as_str())
            .collect()
    };

    let mut cycles: Vec<Vec<String>> = Vec::new();
    for &start in &nodes {
        // DFS for paths start -> ... -> start.
        let mut stack: Vec<(Vec<&str>, &str)> = vec![(vec![start], start)];
        while let Some((path, at)) = stack.pop() {
            for next in succ(at) {
                if next == start && path.len() > 1 {
                    let cycle: Vec<String> = path.iter().map(|x| x.to_string()).collect();
                    if !cycles.iter().any(|c| same_cycle(c, &cycle)) {
                        cycles.push(cycle);
                    }
                } else if !path.contains(&next) && path.len() < nodes.len() {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((p, next));
                }
            }
        }
    }
    cycles
}

/// Whether two cycles are rotations of each other.
fn same_cycle(a: &[String], b: &[String]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    (0..a.len()).any(|r| (0..a.len()).all(|k| a[k] == b[(k + r) % b.len()]))
}

fn line_index(bytes: &[u8]) -> Vec<usize> {
    let mut v = Vec::with_capacity(bytes.len());
    let mut line = 0;
    for &b in bytes {
        v.push(line);
        if b == b'\n' {
            line += 1;
        }
    }
    v
}

// ---------------------------------------------------------------------
// SARIF rendering
// ---------------------------------------------------------------------

fn rules() -> Value {
    Value::Array(vec![
        rule_descriptor(
            "undeclared-atomic",
            "Atomic operation site with no atomic:role(...) annotation; its ordering contract is unchecked.",
        ),
        rule_descriptor(
            "role-ordering-mismatch",
            "Memory orderings at the site are incompatible with its declared role (e.g. Relaxed store on a publish site).",
        ),
        rule_descriptor(
            "orphan-annotation",
            "atomic:role(...) annotation that names an unknown role or binds to no atomic site.",
        ),
        rule_descriptor(
            "lock-order-cycle",
            "Cycle in the union lock-order graph: two functions acquire the same locks in opposite orders (potential deadlock).",
        ),
    ])
}

fn finding_result(f: &Finding) -> Value {
    let level = match f.rule {
        FindingRule::OrphanAnnotation => "warning",
        _ => "error",
    };
    obj(vec![
        ("ruleId", s(f.rule.id())),
        ("level", s(level)),
        ("message", obj(vec![("text", s(f.message.clone()))])),
        (
            "locations",
            Value::Array(vec![obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", s(f.file.clone()))])),
                    ("region", obj(vec![("startLine", int(f.line))])),
                ]),
            )])]),
        ),
        ("properties", obj(vec![("module", s(f.module.clone()))])),
    ])
}

fn module_summary(m: &ModuleAudit) -> Value {
    let count_role = |role: Role| {
        m.sites
            .iter()
            .filter(|site| site.role == Some(role))
            .count()
    };
    let acquisitions: usize = m.functions.iter().map(|f| f.acquisitions.len()).sum();
    obj(vec![
        ("label", s(m.label.clone())),
        ("file", s(m.file.clone())),
        ("atomicSites", int(m.sites.len())),
        (
            "roles",
            obj(Role::ALL
                .iter()
                .map(|&r| (r.id(), int(count_role(r))))
                .collect()),
        ),
        ("lockAcquisitions", int(acquisitions)),
        ("functionsWithLocks", int(m.functions.len())),
    ])
}

/// One model-checker result row for the SARIF properties bag.
#[derive(Debug, Clone)]
pub struct ModelCheckRow {
    /// Model name.
    pub model: String,
    /// Mutation id, `none` for the faithful model.
    pub mutation: String,
    /// Executions (complete schedules) explored.
    pub executions: usize,
    /// Violation message, if the checker found one.
    pub violation: Option<String>,
    /// Whether the outcome matched expectation (clean models pass,
    /// mutated models are caught).
    pub expected: bool,
}

/// Assemble the SARIF document for an audit plus model-checker rows.
pub fn sarif_concurrency(audit: &ConcurrencyAudit, checks: &[ModelCheckRow]) -> Value {
    let edges = Value::Array(
        audit
            .edges
            .iter()
            .map(|e| {
                obj(vec![
                    ("from", s(e.from.clone())),
                    ("to", s(e.to.clone())),
                    ("function", s(e.function.clone())),
                    ("module", s(e.module.clone())),
                    ("line", int(e.line)),
                ])
            })
            .collect(),
    );
    let mut nodes: Vec<&str> = Vec::new();
    for e in &audit.edges {
        for name in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains(&name) {
                nodes.push(name);
            }
        }
    }
    nodes.sort_unstable();

    let check_rows = Value::Array(
        checks
            .iter()
            .map(|c| {
                obj(vec![
                    ("model", s(c.model.clone())),
                    ("mutation", s(c.mutation.clone())),
                    ("executions", int(c.executions)),
                    (
                        "violation",
                        match &c.violation {
                            Some(v) => s(v.clone()),
                            None => Value::Null,
                        },
                    ),
                    ("expected", Value::Bool(c.expected)),
                ])
            })
            .collect(),
    );

    let run = obj(vec![
        (
            "tool",
            obj(vec![(
                "driver",
                obj(vec![
                    ("name", s(TOOL_NAME)),
                    ("version", s(env!("CARGO_PKG_VERSION"))),
                    ("rules", rules()),
                ]),
            )]),
        ),
        (
            "properties",
            obj(vec![
                (
                    "modules",
                    Value::Array(audit.modules.iter().map(module_summary).collect()),
                ),
                (
                    "lockGraph",
                    obj(vec![
                        ("nodes", Value::Array(nodes.into_iter().map(s).collect())),
                        ("edges", edges),
                        ("cycles", int(audit.cycles.len())),
                    ]),
                ),
                ("atomicSites", int(audit.total_sites())),
                ("declaredSites", int(audit.declared_sites())),
                ("modelChecker", check_rows),
            ]),
        ),
        (
            "results",
            Value::Array(audit.findings.iter().map(finding_result).collect()),
        ),
    ]);

    obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        ("runs", Value::Array(vec![run])),
    ])
}

/// Render the concurrency SARIF document as pretty-printed JSON.
pub fn render_concurrency_report(
    audit: &ConcurrencyAudit,
    checks: &[ModelCheckRow],
) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&sarif_concurrency(audit, checks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> ModuleAudit {
        audit_source("test::mod", "mod.rs", src)
    }

    #[test]
    fn declared_relaxed_counter_is_clean() {
        let m = audit(
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)\n }",
        );
        assert_eq!(m.sites.len(), 1);
        assert_eq!(m.sites[0].role, Some(Role::Counter));
        assert!(m.findings.is_empty());
    }

    #[test]
    fn undeclared_site_is_flagged() {
        let m = audit("fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }");
        assert_eq!(m.findings.len(), 1);
        assert_eq!(m.findings[0].rule, FindingRule::UndeclaredAtomic);
    }

    #[test]
    fn relaxed_store_on_publish_site_is_flagged() {
        let src = "fn f(g: &AtomicU64) {\n    // atomic:role(publish)\n    g.store(1, Ordering::Relaxed);\n}";
        let m = audit(src);
        assert_eq!(m.findings.len(), 1);
        assert_eq!(m.findings[0].rule, FindingRule::RoleOrderingMismatch);
        assert_eq!(m.findings[0].line, 3);
    }

    #[test]
    fn acquire_load_on_counter_site_is_flagged() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Acquire); // atomic:role(counter)\n }";
        let m = audit(src);
        assert_eq!(m.findings.len(), 1);
        assert_eq!(m.findings[0].rule, FindingRule::RoleOrderingMismatch);
    }

    #[test]
    fn nested_atomic_calls_are_separate_sites() {
        let src = "fn f(x: &AtomicU64, t: &AtomicU64) {\n    // atomic:role(tick)\n    x.store(\n        // atomic:role(tick)\n        t.fetch_add(1, Ordering::Relaxed) + 1,\n        Ordering::Relaxed,\n    );\n}";
        let m = audit(src);
        assert_eq!(m.sites.len(), 2);
        // The outer store's orderings exclude the nested call's.
        assert_eq!(m.sites[0].op, AtomicOp::Store);
        assert_eq!(m.sites[0].orderings, vec![MemOrd::Relaxed]);
        assert_eq!(m.sites[0].role, Some(Role::Tick));
        assert_eq!(m.sites[1].op, AtomicOp::Rmw);
        assert_eq!(m.sites[1].role, Some(Role::Tick));
        assert!(m.findings.is_empty());
    }

    #[test]
    fn orphan_and_unknown_annotations_are_flagged() {
        let m = audit("// atomic:role(counter)\nfn f() {}\n// atomic:role(wat)\n");
        assert_eq!(m.findings.len(), 2);
        assert!(m
            .findings
            .iter()
            .all(|f| f.rule == FindingRule::OrphanAnnotation));
    }

    #[test]
    fn cfg_test_sites_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::SeqCst); }\n}\n";
        let m = audit(src);
        assert!(m.sites.is_empty());
        assert!(m.findings.is_empty());
    }

    #[test]
    fn non_atomic_read_and_map_are_not_sites() {
        let m = audit("fn f(s: &S) { let g = s.map.read(); let v: Vec<u32> = s.xs.iter().map(|x| x + 1).collect(); }");
        assert!(m.sites.is_empty());
        // But the lock acquisition is recorded.
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].acquisitions[0].lock, "test::mod::map");
    }

    #[test]
    fn opposite_lock_orders_form_a_cycle() {
        let src = "\
fn first(s: &S) {
    let _a = s.a.lock();
    let _b = s.b.lock();
}
fn second(s: &S) {
    let _b = s.b.lock();
    let _a = s.a.lock();
}
";
        let audit = assemble(vec![audit_source("test::mod", "mod.rs", src)]);
        assert_eq!(audit.edges.len(), 2);
        assert_eq!(audit.cycles.len(), 1);
        assert!(audit
            .findings
            .iter()
            .any(|f| f.rule == FindingRule::LockOrderCycle));
    }

    #[test]
    fn repeat_acquisition_of_same_lock_is_not_an_edge() {
        let src = "fn f(s: &S) { for sh in &s.shards { let _g = sh.map.write(); } let _g2 = s.other.map.read(); }";
        let audit = assemble(vec![audit_source("test::mod", "mod.rs", src)]);
        assert!(audit.edges.is_empty());
        assert!(audit.cycles.is_empty());
    }

    #[test]
    fn multi_line_receiver_chain_resolves() {
        let src = "fn f(s: &S) {\n    let _g = s.state\n        .lock();\n}";
        let audit = audit_source("test::mod", "mod.rs", src);
        assert_eq!(audit.functions[0].acquisitions[0].lock, "test::mod::state");
        assert_eq!(audit.functions[0].acquisitions[0].line, 3);
    }

    #[test]
    fn sarif_document_shape() {
        let m = audit_source(
            "test::mod",
            "mod.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)\n }",
        );
        let doc = sarif_concurrency(&assemble(vec![m]), &[]);
        assert_eq!(doc["version"].as_str(), Some("2.1.0"));
        let run = &doc["runs"].as_array().unwrap()[0];
        assert_eq!(run["tool"]["driver"]["name"].as_str(), Some(TOOL_NAME));
        assert_eq!(run["properties"]["atomicSites"].as_u64(), Some(1));
        assert_eq!(run["properties"]["declaredSites"].as_u64(), Some(1));
        assert!(run["results"].as_array().unwrap().is_empty());
    }
}
