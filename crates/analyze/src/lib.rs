//! # autokernel-analyze
//!
//! Static analysis for the kernel-selection system, in three prongs:
//!
//! 1. **Kernel-space analysis** ([`analyzer`]) — every configuration in
//!    the 640-point GEMM space is checked against a device's resource
//!    limits *offline*, using the exact predicate the simulated runtime
//!    applies at submit time ([`autokernel_sycl_sim::resources`]). Each
//!    config is classified `Valid`, `Invalid{reason}` or
//!    `Degraded{occupancy}`, and a dominance pass flags configurations
//!    that a sibling work-group shape beats on every static resource
//!    axis. [`report`] renders the findings as a SARIF 2.1.0 document
//!    (`reports/kernel_space_analysis.json`).
//! 2. **Hot-path lint** ([`lint`]) — a source-level scanner that bans
//!    latent panics (`unwrap`/`expect`/`panic!`/`todo!`/
//!    `unimplemented!`), NaN-hazardous `partial_cmp` and non-literal
//!    slice indexing from the serving modules, plus allocation idioms
//!    (`no-alloc`) from the decide path, with `// lint:allow(<rule>)`
//!    and item-scoped `// lint:allow-fn(<rule>)` escape hatches.
//! 3. **Concurrency analysis** ([`concurrency`], [`interleave`]) — an
//!    atomic-ordering audit (every atomic site declares a role via
//!    `// atomic:role(...)`, checked against the orderings it uses),
//!    per-function lock-order extraction with cycle detection, and a
//!    loom-lite deterministic interleaving model checker that
//!    exhaustively explores small-bound models of the hand-rolled
//!    concurrent primitives (channel shim, LRU+Bloom cache, latency
//!    histogram, drift publication, ingress accounting), with seeded
//!    mutations proving the checker catches real ordering bugs.
//!    Findings render as SARIF (`reports/concurrency_audit.json`).
//!
//! The motivating observation (tritonBLAS, arXiv:2512.04226; Lawson,
//! arXiv:1904.05347) is that much of a kernel configuration space can
//! be ranked or rejected *analytically* — before any benchmark runs —
//! and that doing so cheaply pays for itself many times over in a
//! tuning sweep. The `TuningPipeline` consumes [`analyzer`] verdicts to
//! pre-prune statically invalid configurations, and the resilient
//! executor refuses to place them in its fallback chain. The
//! [`scorer`] module pushes the observation to its limit: a
//! zero-benchmark roofline ranking of the full space usable as a
//! cold-start selector, a bandit prior and a pruning oracle.

#![warn(missing_docs)]

pub mod analyzer;
pub mod concurrency;
pub mod interleave;
pub mod lint;
pub mod report;
pub mod scorer;

pub use analyzer::{
    ConfigAnalysis, KernelSpaceAnalyzer, SpaceAnalysis, Verdict, DEGRADED_OCCUPANCY,
};
pub use concurrency::{
    audit_source, audit_workspace, render_concurrency_report, ConcurrencyAudit, Finding,
    FindingRule, ModelCheckRow, Role, AUDIT_TARGETS,
};
pub use interleave::{self_check, CounterExample, Exploration, Model, Mutation};
pub use lint::{
    lint_file, lint_source, lint_source_with, rules_for, Rule, Violation, DECIDE_PATH_FILES,
    HOT_PATH_FILES, TOTAL_CMP_FILES,
};
pub use report::{render_report, sarif_report, TOOL_NAME};
pub use scorer::AnalyticalScorer;
