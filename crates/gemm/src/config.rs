//! The kernel configuration space: 64 compile-time kernels × 10
//! work-group shapes = 640 configurations.

use serde::{Deserialize, Serialize};

/// The tile-size values the paper sweeps for each compile-time parameter.
pub const TILE_SIZES: [usize; 4] = [1, 2, 4, 8];

/// The ten work-group shapes compared by the paper.
pub const WORK_GROUPS: [WorkGroup; 10] = [
    WorkGroup { rows: 1, cols: 64 },
    WorkGroup { rows: 1, cols: 128 },
    WorkGroup { rows: 8, cols: 8 },
    WorkGroup { rows: 8, cols: 16 },
    WorkGroup { rows: 8, cols: 32 },
    WorkGroup { rows: 16, cols: 8 },
    WorkGroup { rows: 16, cols: 16 },
    WorkGroup { rows: 32, cols: 8 },
    WorkGroup { rows: 64, cols: 1 },
    WorkGroup { rows: 128, cols: 1 },
];

/// Perfect-hash position table for [`WORK_GROUPS`]: indexed by
/// `log2(rows) * 8 + log2(cols)` (both dimensions are powers of two
/// with `log2 <= 7`), each occupied key holds the shape's position in
/// [`WORK_GROUPS`]; unoccupied keys hold `u8::MAX`.
const WG_POS: [u8; 64] = build_wg_pos();

const fn build_wg_pos() -> [u8; 64] {
    let mut table = [u8::MAX; 64];
    let mut i = 0;
    while i < WORK_GROUPS.len() {
        let wg = WORK_GROUPS[i];
        let key = wg.rows.trailing_zeros() as usize * 8 + wg.cols.trailing_zeros() as usize;
        table[key] = i as u8;
        i += 1;
    }
    table
}

/// A work-group shape (rows × cols of work-items).
///
/// Rows index the M direction of the output, columns the N direction.
/// Work-group shape is a *runtime* parameter: it does not require a new
/// kernel to be compiled, but it changes scheduling and coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkGroup {
    /// Work-items along the output-row (M) direction.
    pub rows: usize,
    /// Work-items along the output-column (N) direction.
    pub cols: usize,
}

impl WorkGroup {
    /// Total work-items per group.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }
}

impl std::fmt::Display for WorkGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.rows, self.cols)
    }
}

/// One point of the 640-configuration space.
///
/// ```
/// use autokernel_gemm::{KernelConfig, WorkGroup};
/// assert_eq!(KernelConfig::all().len(), 640);
/// let cfg = KernelConfig::new(4, 8, 2, WorkGroup { rows: 16, cols: 16 }).unwrap();
/// assert_eq!(cfg.to_string(), "T4x8A2_WG16x16");
/// assert_eq!(KernelConfig::from_index(cfg.index()), Some(cfg));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Output-tile rows computed per work-item (compile-time).
    pub tile_rows: usize,
    /// Output-tile columns computed per work-item (compile-time).
    pub tile_cols: usize,
    /// Values accumulated per inner-loop step (compile-time).
    pub acc_depth: usize,
    /// Work-group shape (runtime).
    pub work_group: WorkGroup,
}

impl KernelConfig {
    /// Create a configuration, validating each field against the space.
    pub fn new(
        tile_rows: usize,
        tile_cols: usize,
        acc_depth: usize,
        work_group: WorkGroup,
    ) -> Option<Self> {
        let valid_tile = |v| TILE_SIZES.contains(&v);
        if valid_tile(tile_rows)
            && valid_tile(tile_cols)
            && valid_tile(acc_depth)
            && WORK_GROUPS.contains(&work_group)
        {
            Some(KernelConfig {
                tile_rows,
                tile_cols,
                acc_depth,
                work_group,
            })
        } else {
            None
        }
    }

    /// Every configuration, in a fixed deterministic order: work-group
    /// varies fastest, then accumulator depth, tile columns, tile rows.
    pub fn all() -> Vec<KernelConfig> {
        let mut out = Vec::with_capacity(Self::count());
        for &tr in &TILE_SIZES {
            for &tc in &TILE_SIZES {
                for &ad in &TILE_SIZES {
                    for &wg in &WORK_GROUPS {
                        out.push(KernelConfig {
                            tile_rows: tr,
                            tile_cols: tc,
                            acc_depth: ad,
                            work_group: wg,
                        });
                    }
                }
            }
        }
        out
    }

    /// Size of the full configuration space (640).
    pub const fn count() -> usize {
        TILE_SIZES.len() * TILE_SIZES.len() * TILE_SIZES.len() * WORK_GROUPS.len()
    }

    /// Stable index of this configuration within [`KernelConfig::all`].
    pub fn index(&self) -> usize {
        self.index_u16() as usize
    }

    /// Stable index as a `u16` — the decide path's native currency
    /// (the space has 640 < 2^16 points).
    ///
    /// Branchless: every tile size is a power of two in `1..=8`, so its
    /// position within [`TILE_SIZES`] *is* its `trailing_zeros`; every
    /// work-group dimension is a power of two with `log2 <= 7`, so
    /// `log2(rows) * 8 + log2(cols)` is a perfect 6-bit key into the
    /// const [`WG_POS`] table. No iteration, no data-dependent branch.
    #[inline]
    pub fn index_u16(&self) -> u16 {
        let pos = |v: usize| (v.trailing_zeros() as u16) & 3;
        let key = (self.work_group.rows.trailing_zeros() & 7) * 8
            + (self.work_group.cols.trailing_zeros() & 7);
        let wg = WG_POS[key as usize & 63] as u16;
        debug_assert!(wg != u8::MAX as u16, "work group outside the space");
        ((pos(self.tile_rows) * TILE_SIZES.len() as u16 + pos(self.tile_cols))
            * TILE_SIZES.len() as u16
            + pos(self.acc_depth))
            * WORK_GROUPS.len() as u16
            + wg
    }

    /// Inverse of [`KernelConfig::index_u16`].
    #[inline]
    pub fn from_index_u16(index: u16) -> Option<KernelConfig> {
        Self::from_index(index as usize)
    }

    /// Size of the space as a `u16` (640 fits comfortably).
    pub const fn count_u16() -> u16 {
        Self::count() as u16
    }

    /// Inverse of [`KernelConfig::index`].
    pub fn from_index(index: usize) -> Option<KernelConfig> {
        if index >= Self::count() {
            return None;
        }
        let wg = index % WORK_GROUPS.len();
        let rest = index / WORK_GROUPS.len();
        let ad = rest % TILE_SIZES.len();
        let rest = rest / TILE_SIZES.len();
        let tc = rest % TILE_SIZES.len();
        let tr = rest / TILE_SIZES.len();
        Some(KernelConfig {
            tile_rows: TILE_SIZES[tr],
            tile_cols: TILE_SIZES[tc],
            acc_depth: TILE_SIZES[ad],
            work_group: WORK_GROUPS[wg],
        })
    }

    /// The 64 compile-time kernel variants (tile parameters only), i.e.
    /// what actually inflates library size — work-group shape is runtime.
    pub fn compile_time_variants() -> Vec<(usize, usize, usize)> {
        let mut out = Vec::with_capacity(64);
        for &tr in &TILE_SIZES {
            for &tc in &TILE_SIZES {
                for &ad in &TILE_SIZES {
                    out.push((tr, tc, ad));
                }
            }
        }
        out
    }
}

impl std::fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "T{}x{}A{}_WG{}x{}",
            self.tile_rows,
            self.tile_cols,
            self.acc_depth,
            self.work_group.rows,
            self.work_group.cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_has_640_points() {
        assert_eq!(KernelConfig::count(), 640);
        assert_eq!(KernelConfig::all().len(), 640);
        assert_eq!(KernelConfig::compile_time_variants().len(), 64);
    }

    #[test]
    fn all_configs_distinct() {
        let all = KernelConfig::all();
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 640);
    }

    #[test]
    fn index_roundtrip() {
        for (i, cfg) in KernelConfig::all().iter().enumerate() {
            assert_eq!(cfg.index(), i);
            assert_eq!(KernelConfig::from_index(i).unwrap(), *cfg);
        }
        assert!(KernelConfig::from_index(640).is_none());
    }

    #[test]
    fn u16_index_matches_usize_index() {
        assert_eq!(KernelConfig::count_u16() as usize, KernelConfig::count());
        for (i, cfg) in KernelConfig::all().iter().enumerate() {
            assert_eq!(cfg.index_u16() as usize, i);
            assert_eq!(KernelConfig::from_index_u16(i as u16).unwrap(), *cfg);
        }
        assert!(KernelConfig::from_index_u16(640).is_none());
    }

    #[test]
    fn wg_pos_table_is_a_perfect_hash() {
        // The branchless work-group lookup must agree with the linear
        // scan it replaced, and unoccupied keys must stay sentinels.
        let occupied: Vec<usize> = WORK_GROUPS
            .iter()
            .map(|wg| wg.rows.trailing_zeros() as usize * 8 + wg.cols.trailing_zeros() as usize)
            .collect();
        for (pos, key) in occupied.iter().enumerate() {
            assert_eq!(WG_POS[*key] as usize, pos);
        }
        for (key, slot) in WG_POS.iter().enumerate() {
            if !occupied.contains(&key) {
                assert_eq!(*slot, u8::MAX, "key {key} should be unoccupied");
            }
        }
    }

    #[test]
    fn new_validates_membership() {
        let wg = WorkGroup { rows: 16, cols: 16 };
        assert!(KernelConfig::new(4, 4, 8, wg).is_some());
        assert!(KernelConfig::new(3, 4, 8, wg).is_none());
        assert!(KernelConfig::new(4, 4, 8, WorkGroup { rows: 2, cols: 2 }).is_none());
    }

    #[test]
    fn work_group_sizes_match_paper() {
        // All ten shapes contain 64, 128 or 256 work-items.
        for wg in WORK_GROUPS {
            assert!([64, 128, 256].contains(&wg.size()), "{wg} has odd size");
        }
    }

    #[test]
    fn display_is_compact() {
        let cfg = KernelConfig::new(4, 8, 2, WorkGroup { rows: 8, cols: 16 }).unwrap();
        assert_eq!(cfg.to_string(), "T4x8A2_WG8x16");
    }
}
