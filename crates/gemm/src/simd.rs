//! Portable 8-lane f32 SIMD for the GEMM microkernels.
//!
//! The crate has no target-feature dependencies, so the vector type is
//! a plain aligned `[f32; 8]` whose lanewise loops compile to packed
//! `mulps`/`addps` (or NEON equivalents) under LLVM's auto-vectoriser.
//! Crucially, every lane performs exactly the scalar sequence — one
//! multiply, one add, in the same reduction order — so the vectorised
//! kernels stay **bit-identical** to the scalar reference (`max_abs_diff
//! == 0.0`), not merely close: fused multiply-add is deliberately not
//! used, because an FMA rounds once where `mul` + `add` round twice.

use std::ops::{Add, Mul};

/// Eight f32 lanes, 32-byte aligned so packed loads hit full vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(32))]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    /// Lane count.
    pub const LANES: usize = 8;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; 8])
    }

    /// Load from the first eight elements of `src` (zero-pads a short
    /// slice, so the call is total).
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let mut lanes = [0.0f32; 8];
        for (lane, value) in lanes.iter_mut().zip(src) {
            *lane = *value;
        }
        F32x8(lanes)
    }

    /// Store into the first eight elements of `dst` (ignores the
    /// overflow of a short slice, so the call is total).
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        for (value, lane) in dst.iter_mut().zip(self.0) {
            *value = lane;
        }
    }

    /// Sum of all lanes (tree order; only used where the caller owns
    /// the reduction order).
    #[inline(always)]
    pub fn reduce_sum(self) -> f32 {
        let [a, b, c, d, e, f, g, h] = self.0;
        ((a + b) + (c + d)) + ((e + f) + (g + h))
    }
}

/// Lanewise multiply.
impl Mul for F32x8 {
    type Output = F32x8;

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (lane, r) in out.iter_mut().zip(rhs.0) {
            *lane *= r;
        }
        F32x8(out)
    }
}

/// Lanewise add.
impl Add for F32x8 {
    type Output = F32x8;

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (lane, r) in out.iter_mut().zip(rhs.0) {
            *lane += r;
        }
        F32x8(out)
    }
}

/// `acc[i] += scale * row[i]` over the common prefix of the slices —
/// the axpy update at the heart of both the reference GEMM's row sweep
/// and the tiled kernel's FMA block, eight columns per step with a
/// scalar tail. Each element sees exactly one multiply and one add, in
/// slice order, so the result is bit-identical to the scalar loop.
#[inline]
pub fn axpy(acc: &mut [f32], scale: f32, row: &[f32]) {
    let n = acc.len().min(row.len());
    let (acc, row) = (&mut acc[..n], &row[..n]);
    let s = F32x8::splat(scale);
    let mut acc_chunks = acc.chunks_exact_mut(F32x8::LANES);
    let mut row_chunks = row.chunks_exact(F32x8::LANES);
    for (a, r) in (&mut acc_chunks).zip(&mut row_chunks) {
        (F32x8::load(a) + s * F32x8::load(r)).store(a);
    }
    for (a, &r) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(row_chunks.remainder())
    {
        *a += scale * r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_axpy(acc: &mut [f32], scale: f32, row: &[f32]) {
        for (a, &r) in acc.iter_mut().zip(row) {
            *a += scale * r;
        }
    }

    fn noise(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let mut z = (i as u64 + seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar_for_all_tail_lengths() {
        for len in 0..40 {
            let row = noise(len, 7);
            let mut fast = noise(len, 99);
            let mut slow = fast.clone();
            axpy(&mut fast, 0.7315, &row);
            scalar_axpy(&mut slow, 0.7315, &row);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len} diverged"
            );
        }
    }

    #[test]
    fn lanewise_ops_match_scalar() {
        let a = F32x8([1.0, -2.0, 3.5, 0.0, 8.25, -0.5, 2.0, 7.0]);
        let b = F32x8::splat(2.0);
        assert_eq!((a * b).0, [2.0, -4.0, 7.0, 0.0, 16.5, -1.0, 4.0, 14.0]);
        assert_eq!((a + b).0, [3.0, 0.0, 5.5, 2.0, 10.25, 1.5, 4.0, 9.0]);
        assert_eq!(F32x8::splat(1.5).reduce_sum(), 12.0);
    }

    #[test]
    fn load_and_store_are_total_on_short_slices() {
        let v = F32x8::load(&[1.0, 2.0, 3.0]);
        assert_eq!(v.0, [1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let mut out = [9.0f32; 3];
        v.store(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
    }
}
