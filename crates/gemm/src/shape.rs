//! GEMM problem shapes.

use serde::{Deserialize, Serialize};

/// The shape of a single-precision GEMM `C[m×n] = A[m×k] · B[k×n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of A / rows of B (the reduction dimension).
    pub k: usize,
    /// Columns of B and C.
    pub n: usize,
}

impl GemmShape {
    /// Create a shape.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        GemmShape { m, k, n }
    }

    /// Floating-point operations for this multiply (one FMA = 2 FLOPs).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Bytes touched by a perfectly-cached execution: read A and B once,
    /// write C once (f32 elements).
    pub fn min_bytes(&self) -> f64 {
        4.0 * (self.m * self.k + self.k * self.n + self.m * self.n) as f64
    }

    /// Arithmetic intensity of the ideal execution in FLOP/byte.
    pub fn intensity(&self) -> f64 {
        self.flops() / self.min_bytes()
    }

    /// Feature vector `(m, k, n)` as used by the paper's classifiers.
    pub fn features(&self) -> [f64; 3] {
        [self.m as f64, self.k as f64, self.n as f64]
    }

    /// Log-scaled feature vector, the usual transform for size features.
    pub fn log_features(&self) -> [f64; 3] {
        [
            (self.m as f64).log2(),
            (self.k as f64).log2(),
            (self.n as f64).log2(),
        ]
    }

    /// A stable 64-bit hash of the shape, used to seed deterministic
    /// per-(shape, config) timing noise.
    pub fn stable_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.m as u64, self.k as u64, self.n as u64] {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_bytes() {
        let s = GemmShape::new(2, 3, 4);
        assert_eq!(s.flops(), 48.0);
        assert_eq!(s.min_bytes(), 4.0 * (6 + 12 + 8) as f64);
    }

    #[test]
    fn intensity_grows_with_square_size() {
        let small = GemmShape::new(16, 16, 16);
        let big = GemmShape::new(1024, 1024, 1024);
        assert!(big.intensity() > small.intensity());
    }

    #[test]
    fn features_and_log_features() {
        let s = GemmShape::new(8, 64, 2);
        assert_eq!(s.features(), [8.0, 64.0, 2.0]);
        assert_eq!(s.log_features(), [3.0, 6.0, 1.0]);
    }

    #[test]
    fn hash_distinguishes_permutations() {
        let a = GemmShape::new(10, 20, 30).stable_hash();
        let b = GemmShape::new(30, 20, 10).stable_hash();
        let c = GemmShape::new(10, 20, 30).stable_hash();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn display_format() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "1x2x3");
    }
}
