//! Reference GEMM implementations used to validate the kernel family.

use crate::shape::GemmShape;
use autokernel_sycl_sim::perf::KernelProfile;
use autokernel_sycl_sim::runtime::{Buffer, NDRange, SimKernel};
use autokernel_sycl_sim::{DeviceSpec, Result, SimError};
use rayon::prelude::*;

/// Straightforward row-major reference: `C = A · B`.
///
/// Panics (in debug builds) if slice lengths disagree with `shape`.
pub fn reference_gemm(shape: GemmShape, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), shape.m * shape.k);
    debug_assert_eq!(b.len(), shape.k * shape.n);
    debug_assert_eq!(c.len(), shape.m * shape.n);
    let (m, k, n) = (shape.m, shape.k, shape.n);
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        crow.fill(0.0);
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aip * bv;
            }
        }
    }
}

/// Rayon-parallel reference (rows of C distributed over the pool); same
/// results as [`reference_gemm`] because each row is an independent,
/// sequentially-accumulated dot-product sweep. The row update runs
/// eight columns at a time through [`crate::simd::axpy`], which keeps
/// the per-element operation sequence — one multiply, one add, in `p`
/// order — exactly the scalar reference's, so the match is bitwise.
pub fn parallel_reference_gemm(shape: GemmShape, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), shape.m * shape.k);
    debug_assert_eq!(b.len(), shape.k * shape.n);
    debug_assert_eq!(c.len(), shape.m * shape.n);
    let (k, n) = (shape.k, shape.n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            crate::simd::axpy(crow, aip, &b[p * n..(p + 1) * n]);
        }
    });
}

/// Deterministic pseudo-random test matrices for a shape: values in
/// roughly [-1, 1], reproducible across runs and platforms.
pub fn test_matrices(shape: GemmShape, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let gen = |len: usize, salt: u64| -> Vec<f32> {
        (0..len)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_add(seed)
                    .wrapping_add(salt)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z ^= z >> 27;
                ((z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
            })
            .collect()
    };
    (
        gen(shape.m * shape.k, 0x5151),
        gen(shape.k * shape.n, 0xabcd),
    )
}

/// The launchable wrapper around [`parallel_reference_gemm`]: the
/// terminal rung of the resilient fallback chain. It carries no tiling
/// configuration, stages nothing through local memory, and asks for a
/// modest fixed work-group — so it launches on *every* shipped device
/// and computes the exact answer, at untuned-baseline speed.
pub struct ReferenceGemmKernel {
    shape: GemmShape,
    a: Buffer<f32>,
    b: Buffer<f32>,
    c: Buffer<f32>,
}

impl ReferenceGemmKernel {
    /// Bind the reference kernel to its operands.
    ///
    /// Fails if buffer lengths disagree with `shape`.
    pub fn new(shape: GemmShape, a: Buffer<f32>, b: Buffer<f32>, c: Buffer<f32>) -> Result<Self> {
        if a.len() != shape.m * shape.k
            || b.len() != shape.k * shape.n
            || c.len() != shape.m * shape.n
        {
            return Err(SimError::BadLaunch(format!(
                "buffer sizes do not match shape {shape}"
            )));
        }
        Ok(ReferenceGemmKernel { shape, a, b, c })
    }

    /// The launch range this kernel wants: one work-item per C element,
    /// padded to 8×8 groups (small enough for every shipped device).
    pub fn preferred_range(&self) -> Result<NDRange> {
        NDRange::padded([self.shape.m, self.shape.n], [8, 8])
    }

    /// The problem shape this kernel is bound to.
    pub fn shape(&self) -> &GemmShape {
        &self.shape
    }
}

impl SimKernel for ReferenceGemmKernel {
    fn name(&self) -> String {
        format!("gemm_reference_{}", self.shape)
    }

    fn profile(&self, _device: &DeviceSpec, _range: &NDRange) -> KernelProfile {
        let k = self.shape.k as f64;
        // One work-item per C element: 2k flops, streaming a full row of
        // A and column of B with no local-memory reuse and strided B
        // access — the untuned cost a naive kernel pays.
        KernelProfile {
            flops_per_item: 2.0 * k,
            bytes_per_item: 4.0 * (2.0 * k + 1.0),
            cache_reuse: 0.5,
            registers_per_item: 16,
            lds_bytes_per_group: 0,
            coalescing: 1.0,
            useful_items: (self.shape.m * self.shape.n) as f64,
            ilp: 0.3,
        }
    }

    fn execute(&self, _range: &NDRange) -> Result<()> {
        let a = self.a.read();
        let b = self.b.read();
        let mut c = self.c.write();
        parallel_reference_gemm(self.shape, &a, &b, &mut c);
        Ok(())
    }

    fn noise_seed(&self) -> u64 {
        // A stable stream distinct from every tiled configuration.
        0xbead_c0de
            ^ ((self.shape.m as u64) << 40 | (self.shape.n as u64) << 20 | self.shape.k as u64)
    }
}

/// Maximum absolute elementwise difference between two buffers.
pub fn max_abs_diff(x: &[f32], y: &[f32]) -> f32 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let shape = GemmShape::new(3, 3, 3);
        let a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let b: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut c = vec![0.0; 9];
        reference_gemm(shape, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_2x2() {
        let shape = GemmShape::new(2, 2, 2);
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        reference_gemm(shape, &a, &b, &mut c);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_shapes() {
        let shape = GemmShape::new(1, 3, 2);
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut c = vec![0.0; 2];
        reference_gemm(shape, &a, &b, &mut c);
        assert_eq!(c, vec![14.0, 32.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        for &(m, k, n) in &[(17, 31, 23), (1, 100, 1), (64, 8, 128)] {
            let shape = GemmShape::new(m, k, n);
            let (a, b) = test_matrices(shape, 42);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            reference_gemm(shape, &a, &b, &mut c1);
            parallel_reference_gemm(shape, &a, &b, &mut c2);
            assert_eq!(max_abs_diff(&c1, &c2), 0.0, "shape {shape}");
        }
    }

    #[test]
    fn reference_kernel_launches_and_matches_reference() {
        use autokernel_sycl_sim::{DeviceSpec, Platform, Queue};
        let shape = GemmShape::new(13, 29, 7);
        let (a, b) = test_matrices(shape, 77);
        let mut expect = vec![0.0f32; shape.m * shape.n];
        reference_gemm(shape, &a, &b, &mut expect);

        let kc = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel =
            ReferenceGemmKernel::new(shape, Buffer::from_vec(a), Buffer::from_vec(b), kc.clone())
                .unwrap();
        // Launches even on the most constrained shipped device.
        for dev in Platform::standard().devices() {
            let queue = Queue::new(dev.clone());
            let range = kernel.preferred_range().unwrap();
            let ev = queue.submit(&kernel, range).unwrap();
            assert!(ev.duration_s() > 0.0);
        }
        assert_eq!(max_abs_diff(&kc.to_vec(), &expect), 0.0);
        assert!(
            kernel.name().contains("gemm_reference"),
            "{}",
            kernel.name()
        );
        assert_eq!(*kernel.shape(), shape);
        // LDS-free profile: no device can reject it for local memory.
        let nano = DeviceSpec::amd_r9_nano();
        let range = kernel.preferred_range().unwrap();
        assert_eq!(kernel.profile(&nano, &range).lds_bytes_per_group, 0);
    }

    #[test]
    fn reference_kernel_rejects_mismatched_buffers() {
        let shape = GemmShape::new(4, 4, 4);
        let ok = Buffer::from_vec(vec![0.0f32; 16]);
        let bad = Buffer::from_vec(vec![0.0f32; 15]);
        assert!(ReferenceGemmKernel::new(shape, bad, ok.clone(), ok.clone()).is_err());
        assert!(ReferenceGemmKernel::new(shape, ok.clone(), ok.clone(), ok).is_ok());
    }

    #[test]
    fn test_matrices_are_deterministic_and_bounded() {
        let shape = GemmShape::new(5, 7, 3);
        let (a1, b1) = test_matrices(shape, 9);
        let (a2, b2) = test_matrices(shape, 9);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert!(a1.iter().chain(&b1).all(|v| v.abs() <= 1.0));
        let (a3, _) = test_matrices(shape, 10);
        assert_ne!(a1, a3);
    }
}
