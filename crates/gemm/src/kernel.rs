//! The tiled GEMM kernel: a real, executable implementation of every
//! point in the configuration space, structured exactly like the SYCL
//! kernel it stands in for.
//!
//! Each work-item owns a `tile_rows × tile_cols` accumulator and walks
//! the reduction dimension in `acc_depth` steps, staging A and B
//! fragments before the FMA block — the same decomposition SYCL-DNN's
//! matmul uses. The host execution distributes work-item rows over the
//! rayon pool; the device model prices the launch via [`crate::model`].

use crate::config::KernelConfig;
use crate::model;
use crate::shape::GemmShape;
use autokernel_sycl_sim::perf::KernelProfile;
use autokernel_sycl_sim::runtime::{Buffer, NDRange, SimKernel};
use autokernel_sycl_sim::{DeviceSpec, Result, SimError};
use rayon::prelude::*;

/// A launchable tiled GEMM `C = A · B` for one configuration.
pub struct TiledGemmKernel {
    config: KernelConfig,
    shape: GemmShape,
    a: Buffer<f32>,
    b: Buffer<f32>,
    c: Buffer<f32>,
}

impl TiledGemmKernel {
    /// Bind a kernel to its operands.
    ///
    /// Fails if buffer lengths disagree with `shape`.
    pub fn new(
        config: KernelConfig,
        shape: GemmShape,
        a: Buffer<f32>,
        b: Buffer<f32>,
        c: Buffer<f32>,
    ) -> Result<Self> {
        if a.len() != shape.m * shape.k
            || b.len() != shape.k * shape.n
            || c.len() != shape.m * shape.n
        {
            return Err(SimError::BadLaunch(format!(
                "buffer sizes do not match shape {shape}"
            )));
        }
        Ok(TiledGemmKernel {
            config,
            shape,
            a,
            b,
            c,
        })
    }

    /// The launch range this kernel wants (useful grid padded to
    /// work-group multiples).
    pub fn preferred_range(&self) -> Result<NDRange> {
        model::launch_range(&self.config, &self.shape)
    }

    /// The configuration this kernel instantiates.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The problem shape this kernel is bound to.
    pub fn shape(&self) -> &GemmShape {
        &self.shape
    }
}

impl SimKernel for TiledGemmKernel {
    fn name(&self) -> String {
        format!("gemm_{}_{}", self.config, self.shape)
    }

    fn profile(&self, device: &DeviceSpec, _range: &NDRange) -> KernelProfile {
        model::profile(&self.config, &self.shape, device)
    }

    fn execute(&self, _range: &NDRange) -> Result<()> {
        let (m, k, n) = (self.shape.m, self.shape.k, self.shape.n);
        let (tr, tc, ad) = (
            self.config.tile_rows,
            self.config.tile_cols,
            self.config.acc_depth,
        );
        let a = self.a.read();
        let b = self.b.read();
        let mut c = self.c.write();

        // One "row of work-items" covers `tr` rows of C; distribute those
        // row-bands over the thread pool (the simulated device instead
        // distributes them over compute units).
        c.par_chunks_mut(tr * n).enumerate().for_each(|(gi, band)| {
            let row0 = gi * tr;
            let rows = tr.min(m - row0);
            let grid_cols = n.div_ceil(tc);
            let mut acc = vec![0.0f32; tr * tc];
            let mut a_frag = vec![0.0f32; tr * ad];
            let mut b_frag = vec![0.0f32; ad * tc];

            for gj in 0..grid_cols {
                let col0 = gj * tc;
                let cols = tc.min(n - col0);
                acc.iter_mut().for_each(|v| *v = 0.0);

                let mut p0 = 0usize;
                while p0 < k {
                    let depth = ad.min(k - p0);
                    // Stage the A fragment (tr × depth), zero-padding the
                    // tail exactly as the guarded SYCL loads do.
                    for r in 0..tr {
                        for q in 0..ad {
                            a_frag[r * ad + q] = if r < rows && q < depth {
                                a[(row0 + r) * k + p0 + q]
                            } else {
                                0.0
                            };
                        }
                    }
                    // Stage the B fragment (depth × tc).
                    for q in 0..ad {
                        for cc in 0..tc {
                            b_frag[q * tc + cc] = if q < depth && cc < cols {
                                b[(p0 + q) * n + col0 + cc]
                            } else {
                                0.0
                            };
                        }
                    }
                    // The FMA block: tr × tc × depth independent updates,
                    // eight accumulator columns per SIMD step (bit-exact
                    // with the scalar loop — see `crate::simd::axpy`).
                    for r in 0..tr {
                        for q in 0..ad {
                            let av = a_frag[r * ad + q];
                            if av == 0.0 {
                                continue;
                            }
                            let brow = &b_frag[q * tc..q * tc + tc];
                            let arow = &mut acc[r * tc..r * tc + tc];
                            crate::simd::axpy(arow, av, brow);
                        }
                    }
                    p0 += ad;
                }

                // Guarded store of the accumulator tile.
                for r in 0..rows {
                    for cc in 0..cols {
                        band[r * n + col0 + cc] = acc[r * tc + cc];
                    }
                }
            }
        });
        Ok(())
    }

    fn noise_seed(&self) -> u64 {
        model::noise_seed(&self.config, &self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{WorkGroup, WORK_GROUPS};
    use crate::reference::{max_abs_diff, parallel_reference_gemm, test_matrices};
    use autokernel_sycl_sim::{DeviceType, Platform, Queue};

    fn run_config(config: KernelConfig, shape: GemmShape) -> (Vec<f32>, Vec<f32>) {
        let (a, b) = test_matrices(shape, 1234);
        let mut expect = vec![0.0f32; shape.m * shape.n];
        parallel_reference_gemm(shape, &a, &b, &mut expect);

        let ka = Buffer::from_vec(a);
        let kb = Buffer::from_vec(b);
        let kc = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel = TiledGemmKernel::new(config, shape, ka, kb, kc.clone()).unwrap();
        let platform = Platform::standard();
        let queue = Queue::new(platform.device_by_type(DeviceType::Gpu).unwrap());
        let range = kernel.preferred_range().unwrap();
        queue.submit(&kernel, range).unwrap();
        (kc.to_vec(), expect)
    }

    #[test]
    fn all_tile_shapes_match_reference_on_awkward_shape() {
        // A shape divisible by nothing interesting: exercises every
        // guard path (partial tiles in m, n and k).
        let shape = GemmShape::new(13, 29, 7);
        let wg = WorkGroup { rows: 8, cols: 8 };
        for &tr in &crate::config::TILE_SIZES {
            for &tc in &crate::config::TILE_SIZES {
                for &ad in &crate::config::TILE_SIZES {
                    let cfg = KernelConfig::new(tr, tc, ad, wg).unwrap();
                    let (got, expect) = run_config(cfg, shape);
                    assert!(
                        max_abs_diff(&got, &expect) < 1e-4,
                        "config {cfg} wrong on {shape}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_work_group_shape_matches_reference() {
        let shape = GemmShape::new(33, 17, 49);
        for wg in WORK_GROUPS {
            let cfg = KernelConfig::new(4, 2, 8, wg).unwrap();
            let (got, expect) = run_config(cfg, shape);
            assert!(max_abs_diff(&got, &expect) < 1e-4, "wg {wg} wrong");
        }
    }

    #[test]
    fn single_row_and_single_col_shapes() {
        for shape in [
            GemmShape::new(1, 64, 100),
            GemmShape::new(100, 64, 1),
            GemmShape::new(1, 1, 1),
        ] {
            let cfg = KernelConfig::new(8, 8, 8, WorkGroup { rows: 16, cols: 16 }).unwrap();
            let (got, expect) = run_config(cfg, shape);
            assert!(max_abs_diff(&got, &expect) < 1e-4, "shape {shape} wrong");
        }
    }

    #[test]
    fn rejects_mismatched_buffers() {
        let cfg = KernelConfig::new(1, 1, 1, WorkGroup { rows: 8, cols: 8 }).unwrap();
        let shape = GemmShape::new(4, 4, 4);
        let ok = Buffer::from_vec(vec![0.0f32; 16]);
        let bad = Buffer::from_vec(vec![0.0f32; 15]);
        assert!(TiledGemmKernel::new(cfg, shape, bad, ok.clone(), ok.clone()).is_err());
        assert!(TiledGemmKernel::new(cfg, shape, ok.clone(), ok.clone(), ok).is_ok());
    }

    #[test]
    fn kernel_name_mentions_config_and_shape() {
        let cfg = KernelConfig::new(2, 4, 8, WorkGroup { rows: 8, cols: 16 }).unwrap();
        let shape = GemmShape::new(8, 8, 8);
        let buf = || Buffer::from_vec(vec![0.0f32; 64]);
        let k = TiledGemmKernel::new(cfg, shape, buf(), buf(), buf()).unwrap();
        let name = k.name();
        assert!(
            name.contains("T2x4A8_WG8x16") && name.contains("8x8x8"),
            "{name}"
        );
    }
}
