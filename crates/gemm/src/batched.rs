//! Batched GEMM: many independent same-shape multiplies in one launch —
//! how attention heads and Winograd tile positions hit the device.
//!
//! A batched launch differs from a loop of single launches in two ways
//! the model must capture: one launch overhead instead of N, and a
//! dispatch N× wider (better device fill and fewer partial wave passes
//! for small instances).

use crate::config::KernelConfig;
use crate::kernel::TiledGemmKernel;
use crate::model;
use crate::shape::GemmShape;
use autokernel_sycl_sim::perf::KernelProfile;
use autokernel_sycl_sim::runtime::{Buffer, NDRange, SimKernel};
use autokernel_sycl_sim::{DeviceSpec, Result, SimError};

/// `instances` independent `C_i = A_i · B_i` of one shape, one launch.
pub struct BatchedGemmKernel {
    config: KernelConfig,
    shape: GemmShape,
    instances: Vec<TiledGemmKernel>,
}

impl BatchedGemmKernel {
    /// Bind a batched kernel to its per-instance operand buffers.
    ///
    /// All instances share `shape` and `config`; buffer triples must
    /// match the shape (checked per instance).
    pub fn new(
        config: KernelConfig,
        shape: GemmShape,
        operands: Vec<(Buffer<f32>, Buffer<f32>, Buffer<f32>)>,
    ) -> Result<Self> {
        if operands.is_empty() {
            return Err(SimError::BadLaunch(
                "batched GEMM needs at least one instance".into(),
            ));
        }
        let instances = operands
            .into_iter()
            .map(|(a, b, c)| TiledGemmKernel::new(config, shape, a, b, c))
            .collect::<Result<Vec<_>>>()?;
        Ok(BatchedGemmKernel {
            config,
            shape,
            instances,
        })
    }

    /// Number of instances in the batch.
    pub fn batch(&self) -> usize {
        self.instances.len()
    }

    /// The launch range: the single-instance grid stretched `batch`×
    /// along the row dimension (instances stack in M).
    pub fn preferred_range(&self) -> Result<NDRange> {
        let grid = model::useful_grid(&self.config, &self.shape);
        NDRange::padded(
            [grid[0] * self.batch(), grid[1]],
            [self.config.work_group.rows, self.config.work_group.cols],
        )
    }
}

impl SimKernel for BatchedGemmKernel {
    fn name(&self) -> String {
        format!(
            "batched{}x_gemm_{}_{}",
            self.batch(),
            self.config,
            self.shape
        )
    }

    fn profile(&self, device: &DeviceSpec, _range: &NDRange) -> KernelProfile {
        let single = model::profile(&self.config, &self.shape, device);
        KernelProfile {
            useful_items: single.useful_items * self.batch() as f64,
            ..single
        }
    }

    fn execute(&self, range: &NDRange) -> Result<()> {
        for k in &self.instances {
            k.execute(range)?;
        }
        Ok(())
    }

    fn noise_seed(&self) -> u64 {
        model::noise_seed(&self.config, &self.shape) ^ (self.batch() as u64).rotate_left(17)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkGroup;
    use crate::reference::{max_abs_diff, reference_gemm, test_matrices};
    use autokernel_sycl_sim::{DeviceType, Platform, Queue};
    use std::sync::Arc;

    fn cfg() -> KernelConfig {
        KernelConfig::new(4, 4, 2, WorkGroup { rows: 8, cols: 8 }).unwrap()
    }

    #[test]
    fn batched_execution_matches_per_instance_reference() {
        let shape = GemmShape::new(13, 9, 7);
        let mut operands = Vec::new();
        let mut expects = Vec::new();
        for i in 0..5u64 {
            let (a, b) = test_matrices(shape, 100 + i);
            let mut expect = vec![0.0f32; shape.m * shape.n];
            reference_gemm(shape, &a, &b, &mut expect);
            expects.push(expect);
            operands.push((
                Buffer::from_vec(a),
                Buffer::from_vec(b),
                Buffer::from_vec(vec![0.0f32; shape.m * shape.n]),
            ));
        }
        let outs: Vec<Buffer<f32>> = operands.iter().map(|(_, _, c)| c.clone()).collect();
        let kernel = BatchedGemmKernel::new(cfg(), shape, operands).unwrap();
        let platform = Platform::standard();
        let queue = Queue::new(platform.device_by_type(DeviceType::Gpu).unwrap());
        queue
            .submit(&kernel, kernel.preferred_range().unwrap())
            .unwrap();
        for (out, expect) in outs.iter().zip(&expects) {
            assert!(max_abs_diff(&out.to_vec(), expect) < 1e-4);
        }
    }

    #[test]
    fn one_batched_launch_is_cheaper_than_n_single_launches() {
        // Attention-sized instances: small GEMMs dominated by overhead
        // and poor device fill when launched one by one.
        let shape = GemmShape::new(128, 64, 128);
        let device = Arc::new(DeviceSpec::amd_r9_nano());
        let queue = Queue::timing_only(device.clone());
        let batch = 12usize;

        let single_range = model::launch_range(&cfg(), &shape).unwrap();
        let single_profile = model::profile(&cfg(), &shape, &device);
        let (_, t_single) = queue
            .price(
                &single_profile,
                &single_range,
                model::noise_seed(&cfg(), &shape),
            )
            .unwrap();

        let operands = (0..batch)
            .map(|_| {
                (
                    Buffer::from_vec(vec![0.0f32; shape.m * shape.k]),
                    Buffer::from_vec(vec![0.0f32; shape.k * shape.n]),
                    Buffer::from_vec(vec![0.0f32; shape.m * shape.n]),
                )
            })
            .collect();
        let kernel = BatchedGemmKernel::new(cfg(), shape, operands).unwrap();
        let range = kernel.preferred_range().unwrap();
        let profile = kernel.profile(&device, &range);
        let (_, t_batched) = queue.price(&profile, &range, kernel.noise_seed()).unwrap();

        assert!(
            t_batched < t_single * batch as f64 * 0.8,
            "batched {t_batched} vs {batch} x {t_single}"
        );
    }

    #[test]
    fn rejects_empty_batch_and_bad_buffers() {
        let shape = GemmShape::new(4, 4, 4);
        assert!(BatchedGemmKernel::new(cfg(), shape, vec![]).is_err());
        let bad = (
            Buffer::from_vec(vec![0.0f32; 3]), // wrong size
            Buffer::from_vec(vec![0.0f32; 16]),
            Buffer::from_vec(vec![0.0f32; 16]),
        );
        assert!(BatchedGemmKernel::new(cfg(), shape, vec![bad]).is_err());
    }

    #[test]
    fn range_stacks_instances_in_m() {
        let shape = GemmShape::new(16, 8, 16);
        let operands = (0..3)
            .map(|_| {
                (
                    Buffer::from_vec(vec![0.0f32; 128]),
                    Buffer::from_vec(vec![0.0f32; 128]),
                    Buffer::from_vec(vec![0.0f32; 256]),
                )
            })
            .collect();
        let kernel = BatchedGemmKernel::new(cfg(), shape, operands).unwrap();
        assert_eq!(kernel.batch(), 3);
        let single = model::useful_grid(&cfg(), &shape);
        let r = kernel.preferred_range().unwrap();
        assert!(r.global()[0] >= single[0] * 3);
        assert!(kernel.name().starts_with("batched3x_"));
    }
}
