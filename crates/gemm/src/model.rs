//! Translation of a (configuration, shape) pair into the resource and
//! traffic profile the device model prices.
//!
//! This module is where the dataset's *structure* comes from, so each
//! term is tied to the mechanism it represents on real hardware:
//!
//! - **Registers** — a work-item holds its `tr × tc` accumulator tile
//!   plus `(tr + tc) · acc` staged operands; big tiles choke occupancy.
//! - **Traffic** — per work-item, `(tr + tc) · k` loads and `tr · tc`
//!   stores; bigger tiles raise arithmetic intensity.
//! - **Reuse** — work-items in a group row share B tiles, in a group
//!   column share A tiles; wider/taller groups turn DRAM traffic into
//!   cache traffic.
//! - **Coalescing** — lanes of a wave are laid out along the work-group
//!   column (N) direction; groups with few columns issue near-scalar
//!   DRAM transactions, which is why shapes like (64, 1) are almost
//!   uniformly poor in Figure 1.
//! - **ILP** — deeper accumulators and bigger tiles expose more
//!   independent FMAs to the SIMD pipelines.

use crate::config::KernelConfig;
use crate::shape::GemmShape;
use autokernel_sycl_sim::perf::KernelProfile;
use autokernel_sycl_sim::runtime::NDRange;
use autokernel_sycl_sim::{DeviceSpec, Result};

/// Number of useful work-items in each grid dimension for a shape under
/// a configuration: `(ceil(m / tr), ceil(n / tc))`.
pub fn useful_grid(config: &KernelConfig, shape: &GemmShape) -> [usize; 2] {
    [
        shape.m.div_ceil(config.tile_rows).max(1),
        shape.n.div_ceil(config.tile_cols).max(1),
    ]
}

/// The ND-range a launch of `config` on `shape` dispatches: the useful
/// grid padded up to work-group multiples.
pub fn launch_range(config: &KernelConfig, shape: &GemmShape) -> Result<NDRange> {
    NDRange::padded(
        useful_grid(config, shape),
        [config.work_group.rows, config.work_group.cols],
    )
}

/// Vector registers one work-item needs: accumulator tile, staged A and
/// B fragments, plus bookkeeping (indices, addresses, loop counters).
pub fn registers_per_item(config: &KernelConfig) -> usize {
    let acc = config.tile_rows * config.tile_cols;
    let operands = (config.tile_rows + config.tile_cols) * config.acc_depth;
    acc + operands + 12
}

/// Local-memory bytes one work-group stages per accumulation step:
/// an `(wg.rows · tr) × acc` slice of A and an `acc × (wg.cols · tc)`
/// slice of B (single-buffered, as in the SYCL-DNN kernel).
pub fn lds_bytes_per_group(config: &KernelConfig) -> usize {
    let a_tile = config.work_group.rows * config.tile_rows * config.acc_depth;
    let b_tile = config.acc_depth * config.work_group.cols * config.tile_cols;
    4 * (a_tile + b_tile)
}

/// Coalescing efficiency in (0, 1]: contiguous bytes touched by the
/// consecutive lanes of a wave, relative to the 64-byte transaction size.
///
/// Lanes are linearised column-fastest, so a group with `wc` columns has
/// runs of `wc` lanes reading consecutive `tc`-wide column segments of B
/// and C.
pub fn coalescing(config: &KernelConfig, device: &DeviceSpec, shape: &GemmShape) -> f64 {
    const TRANSACTION_BYTES: f64 = 64.0;
    let lanes_contiguous = config.work_group.cols.min(device.wave_width) as f64;
    let vector_bytes = (config.tile_cols.min(4) * 4) as f64;
    let run = lanes_contiguous * vector_bytes;
    let base = (run / TRANSACTION_BYTES).clamp(1.0 / 16.0, 1.0);
    // Narrow matrices cannot fill a transaction regardless of the
    // work-group shape: rows of B/C shorter than a transaction always
    // fetch dead bytes.
    let row_bytes = (shape.n * 4) as f64;
    let narrow = (row_bytes / TRANSACTION_BYTES).clamp(0.25, 1.0);
    base * narrow
}

/// Fraction of raw traffic served from cache/LDS thanks to intra-group
/// sharing: `wc` items share each A fragment, `wr` items share each B
/// fragment. Power-of-two row pitches (N or K a multiple of 512 floats,
/// i.e. 2 KiB) alias L2 cache sets; the thrashing grows with how *tall*
/// the work-group is, because tall groups issue many same-set strided
/// streams concurrently.
pub fn cache_reuse(config: &KernelConfig, shape: &GemmShape) -> f64 {
    let k = shape.k as f64;
    let a_bytes = (config.tile_rows as f64) * k;
    let b_bytes = (config.tile_cols as f64) * k;
    let c_bytes = (config.tile_rows * config.tile_cols) as f64;
    let total = a_bytes + b_bytes + c_bytes;
    let a_shared = a_bytes * (1.0 - 1.0 / config.work_group.cols as f64);
    let b_shared = b_bytes * (1.0 - 1.0 / config.work_group.rows as f64);
    let mut reuse = (a_shared + b_shared) / total;

    // Square-ish groups touch the most compact C footprint per byte
    // loaded; elongated groups stream longer, less reusable stripes.
    let aspect = (config.work_group.rows as f64 / config.work_group.cols as f64)
        .log2()
        .abs();
    reuse *= 1.0 - 0.06 * aspect;

    let tallness =
        config.work_group.rows as f64 / (config.work_group.rows + config.work_group.cols) as f64;
    if shape.n.is_multiple_of(512) {
        reuse *= 1.0 - 0.35 * tallness;
    }
    if shape.k.is_multiple_of(512) {
        reuse *= 1.0 - 0.20 * tallness * (config.tile_rows as f64 / 8.0);
    }
    reuse.clamp(0.0, 0.95)
}

/// Instruction-level parallelism exposed by the inner loop: saturating
/// in the number of independent FMAs per step (`tr · tc · acc`), with a
/// penalty when the accumulator depth does not divide K (the guarded
/// tail step breaks the software pipeline) and when the K loop is too
/// short to amortise its prologue.
pub fn ilp(config: &KernelConfig, shape: &GemmShape) -> f64 {
    let independent = (config.tile_rows * config.tile_cols * config.acc_depth) as f64;
    let mut ilp = 1.0 - 1.0 / (1.0 + 0.45 * independent.sqrt());
    if !shape.k.is_multiple_of(config.acc_depth) {
        ilp *= 0.88;
    }
    let steps = shape.k.div_ceil(config.acc_depth) as f64;
    // Short K loops (few steps) never reach steady state.
    ilp *= steps / (steps + 2.0);
    ilp
}

/// Build the full [`KernelProfile`] for a launch.
pub fn profile(config: &KernelConfig, shape: &GemmShape, device: &DeviceSpec) -> KernelProfile {
    let grid = useful_grid(config, shape);
    let k = shape.k as f64;
    let flops_per_item = 2.0 * (config.tile_rows * config.tile_cols) as f64 * k;
    let bytes_per_item = 4.0
        * ((config.tile_rows + config.tile_cols) as f64 * k
            + (config.tile_rows * config.tile_cols) as f64);

    KernelProfile {
        flops_per_item,
        bytes_per_item,
        cache_reuse: cache_reuse(config, shape),
        registers_per_item: registers_per_item(config),
        lds_bytes_per_group: lds_bytes_per_group(config),
        coalescing: coalescing(config, device, shape),
        useful_items: (grid[0] * grid[1]) as f64,
        ilp: ilp(config, shape),
    }
}

/// Seed for the deterministic per-(config, shape) timing noise.
pub fn noise_seed(config: &KernelConfig, shape: &GemmShape) -> u64 {
    shape.stable_hash() ^ ((config.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkGroup;

    fn cfg(tr: usize, tc: usize, ad: usize, wr: usize, wc: usize) -> KernelConfig {
        KernelConfig::new(tr, tc, ad, WorkGroup { rows: wr, cols: wc }).unwrap()
    }

    #[test]
    fn useful_grid_rounds_up() {
        let c = cfg(4, 8, 2, 8, 8);
        let s = GemmShape::new(10, 64, 17);
        assert_eq!(useful_grid(&c, &s), [3, 3]);
    }

    #[test]
    fn launch_range_is_padded_to_group() {
        let c = cfg(4, 4, 4, 16, 16);
        let s = GemmShape::new(100, 64, 100);
        let r = launch_range(&c, &s).unwrap();
        assert_eq!(r.global()[0] % 16, 0);
        assert_eq!(r.global()[1] % 16, 0);
        assert!(r.global()[0] >= 25 && r.global()[1] >= 25);
    }

    #[test]
    fn registers_grow_with_tiles() {
        assert!(registers_per_item(&cfg(8, 8, 8, 8, 8)) > registers_per_item(&cfg(1, 1, 1, 8, 8)));
        // The 8×8×8 kernel cannot fit two waves in a 256-register file.
        assert!(registers_per_item(&cfg(8, 8, 8, 8, 8)) > 128);
    }

    #[test]
    fn coalescing_penalises_column_groups() {
        let d = DeviceSpec::amd_r9_nano();
        let s = GemmShape::new(256, 256, 256);
        let wide = coalescing(&cfg(4, 4, 4, 1, 64), &d, &s);
        let tall = coalescing(&cfg(4, 4, 4, 64, 1), &d, &s);
        assert!(wide > tall * 2.0, "wide {wide} vs tall {tall}");
        assert!((0.0..=1.0).contains(&tall));
    }

    #[test]
    fn coalescing_penalises_narrow_outputs() {
        let d = DeviceSpec::amd_r9_nano();
        let c = cfg(4, 4, 4, 8, 16);
        let wide = coalescing(&c, &d, &GemmShape::new(256, 256, 256));
        let narrow = coalescing(&c, &d, &GemmShape::new(256, 256, 2));
        assert!(narrow < wide);
    }

    #[test]
    fn reuse_rises_with_group_area_and_k() {
        let small = cache_reuse(&cfg(4, 4, 4, 8, 8), &GemmShape::new(256, 256, 256));
        let big = cache_reuse(&cfg(4, 4, 4, 16, 16), &GemmShape::new(256, 256, 256));
        assert!(big > small);
    }

    #[test]
    fn ilp_ordering() {
        let s = GemmShape::new(256, 256, 256);
        assert!(ilp(&cfg(1, 1, 1, 8, 8), &s) < ilp(&cfg(4, 4, 4, 8, 8), &s));
        assert!(ilp(&cfg(4, 4, 4, 8, 8), &s) < ilp(&cfg(8, 8, 8, 8, 8), &s));
        for c in [cfg(1, 1, 1, 8, 8), cfg(8, 8, 8, 8, 8)] {
            let v = ilp(&c, &s);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn ilp_penalises_unaligned_k_and_short_loops() {
        let c = cfg(4, 4, 8, 8, 8);
        let aligned = ilp(&c, &GemmShape::new(64, 256, 64));
        let unaligned = ilp(&c, &GemmShape::new(64, 255, 64));
        assert!(unaligned < aligned);
        let short = ilp(&c, &GemmShape::new(64, 8, 64));
        assert!(short < aligned);
    }

    #[test]
    fn profile_intensity_scales_with_tile_area() {
        let d = DeviceSpec::amd_r9_nano();
        let s = GemmShape::new(512, 512, 512);
        let p1 = profile(&cfg(1, 1, 1, 16, 16), &s, &d);
        let p8 = profile(&cfg(8, 8, 4, 16, 16), &s, &d);
        let i1 = p1.flops_per_item / p1.bytes_per_item;
        let i8 = p8.flops_per_item / p8.bytes_per_item;
        assert!(i8 > 3.0 * i1, "intensity {i8} should dwarf {i1}");
    }

    #[test]
    fn noise_seed_varies_with_both_inputs() {
        let c1 = cfg(1, 1, 1, 8, 8);
        let c2 = cfg(1, 1, 2, 8, 8);
        let s1 = GemmShape::new(8, 8, 8);
        let s2 = GemmShape::new(8, 8, 9);
        assert_ne!(noise_seed(&c1, &s1), noise_seed(&c2, &s1));
        assert_ne!(noise_seed(&c1, &s1), noise_seed(&c1, &s2));
    }

    #[test]
    fn lds_fits_device_for_all_configs() {
        // Every configuration must be launchable on the R9 Nano: its LDS
        // demand may not exceed the per-CU budget.
        let d = DeviceSpec::amd_r9_nano();
        for c in KernelConfig::all() {
            assert!(
                lds_bytes_per_group(&c) <= d.lds_bytes_per_cu,
                "{c} wants {} LDS bytes",
                lds_bytes_per_group(&c)
            );
        }
    }
}
