//! # autokernel-gemm
//!
//! The tiled matrix-multiply kernel family from the paper's case study.
//!
//! SYCL-DNN's matmul kernel exposes three compile-time parameters — the
//! two output-tile dimensions and the accumulator depth, each in
//! {1, 2, 4, 8} — and a runtime work-group shape drawn from ten options,
//! for **640 total configurations** ([`config::KernelConfig::all`]).
//!
//! Each configuration is a *real* kernel here: [`kernel::TiledGemmKernel`]
//! executes the tiled algorithm on the host (rayon-parallel, validated
//! against [`reference::reference_gemm`]) and prices itself on a simulated
//! device through the [`model`] module, which translates a configuration
//! and a GEMM shape into the resource/traffic profile the device model
//! consumes.

#![warn(missing_docs)]

pub mod batched;
pub mod config;
pub mod kernel;
pub mod model;
pub mod reference;
pub mod shape;
pub mod simd;

pub use batched::BatchedGemmKernel;
pub use config::{KernelConfig, WorkGroup, TILE_SIZES, WORK_GROUPS};
pub use kernel::TiledGemmKernel;
pub use reference::ReferenceGemmKernel;
pub use shape::GemmShape;
