//! Exhaustive validation: every one of the 640 configurations executes
//! and matches the reference on awkward shapes — the guarantee behind
//! treating each grid column as a real kernel rather than a model entry.

use autokernel_gemm::reference::{max_abs_diff, reference_gemm, test_matrices};
use autokernel_gemm::{GemmShape, KernelConfig, TiledGemmKernel};
use autokernel_sycl_sim::{Buffer, DeviceType, Platform, Queue};

fn check_all_configs(shape: GemmShape) {
    let (a, b) = test_matrices(shape, 2024);
    let mut expect = vec![0.0f32; shape.m * shape.n];
    reference_gemm(shape, &a, &b, &mut expect);

    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu).unwrap();
    let queue = Queue::new(device);

    for cfg in KernelConfig::all() {
        let bc = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel = TiledGemmKernel::new(
            cfg,
            shape,
            Buffer::from_vec(a.clone()),
            Buffer::from_vec(b.clone()),
            bc.clone(),
        )
        .unwrap();
        let range = kernel.preferred_range().unwrap();
        let event = queue.submit(&kernel, range).unwrap();
        assert!(event.duration_s() > 0.0);
        let err = max_abs_diff(&bc.to_vec(), &expect);
        assert!(err < 1e-4, "config {cfg} wrong on {shape}: err {err}");
    }
}

#[test]
fn all_640_configs_correct_on_prime_shape() {
    // Primes: no tile or work-group divides anything.
    check_all_configs(GemmShape::new(17, 13, 11));
}

#[test]
fn all_640_configs_correct_on_tiny_shape() {
    check_all_configs(GemmShape::new(1, 2, 3));
}

#[test]
fn all_640_configs_have_distinct_or_priced_costs() {
    // Pricing the full grid yields strictly positive, mostly distinct
    // durations (ties would break the argmin-based dataset).
    use autokernel_gemm::model;
    use std::sync::Arc;
    let device = Arc::new(autokernel_sycl_sim::DeviceSpec::amd_r9_nano());
    let queue = Queue::timing_only(device.clone());
    let shape = GemmShape::new(784, 1152, 128);
    let mut durations: Vec<f64> = KernelConfig::all()
        .iter()
        .map(|cfg| {
            let range = model::launch_range(cfg, &shape).unwrap();
            let profile = model::profile(cfg, &shape, &device);
            queue
                .price(&profile, &range, model::noise_seed(cfg, &shape))
                .unwrap()
                .1
        })
        .collect();
    assert!(durations.iter().all(|&d| d > 0.0));
    durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let distinct = durations.windows(2).filter(|w| w[1] > w[0]).count() + 1;
    assert!(
        distinct > 600,
        "only {distinct} distinct durations in the grid"
    );
}
