//! Network layer descriptions and their lowering to GEMM shapes.

use autokernel_gemm::GemmShape;
use serde::{Deserialize, Serialize};

/// A 2-D convolution layer (square kernels, NCHW).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel extent (1, 3, 7, ...).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
    /// Input spatial extent (square feature maps).
    pub input_size: usize,
    /// Channel groups (`in_channels` = groups ⇒ depthwise).
    pub groups: usize,
}

impl ConvLayer {
    /// A standard (non-grouped) convolution.
    ///
    /// ```
    /// use autokernel_workloads::ConvLayer;
    /// // VGG's first layer lowers to a (50176, 27, 64) GEMM at batch 1.
    /// let conv1 = ConvLayer::standard(3, 64, 3, 1, 1, 224);
    /// let g = conv1.im2col_gemm(1).unwrap();
    /// assert_eq!((g.m, g.k, g.n), (224 * 224, 27, 64));
    /// ```
    pub fn standard(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_size: usize,
    ) -> Self {
        ConvLayer {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            input_size,
            groups: 1,
        }
    }

    /// A depthwise convolution (one group per channel).
    pub fn depthwise(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_size: usize,
    ) -> Self {
        ConvLayer {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding,
            input_size,
            groups: channels,
        }
    }

    /// Output spatial extent.
    pub fn output_size(&self) -> usize {
        (self.input_size + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Whether the layer lowers to a GEMM at all: depthwise convolutions
    /// do not (each filter sees one channel), matching the paper's use of
    /// im2col for standard convolutions only.
    pub fn lowers_to_gemm(&self) -> bool {
        self.groups == 1
    }

    /// The im2col GEMM for a batch of `batch` images:
    /// `M = batch · out_h · out_w`, `K = kernel² · in_channels`,
    /// `N = out_channels`.
    pub fn im2col_gemm(&self, batch: usize) -> Option<GemmShape> {
        if !self.lowers_to_gemm() {
            return None;
        }
        let out = self.output_size();
        Some(GemmShape::new(
            batch * out * out,
            self.kernel * self.kernel * self.in_channels,
            self.out_channels,
        ))
    }
}

/// A fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcLayer {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl FcLayer {
    /// The GEMM for a batch: `M = batch`, `K = in`, `N = out`.
    pub fn gemm(&self, batch: usize) -> GemmShape {
        GemmShape::new(batch, self.in_features, self.out_features)
    }
}

/// A batched matrix multiply: `instances` independent GEMMs of the same
/// `(m, k, n)` per forward item — how attention lowers (one GEMM per
/// head for Q·Kᵀ and for attn·V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchedMatmul {
    /// Instances per batch item (e.g. attention heads).
    pub instances: usize,
    /// Rows of each instance.
    pub m: usize,
    /// Reduction dimension of each instance.
    pub k: usize,
    /// Columns of each instance.
    pub n: usize,
}

impl BatchedMatmul {
    /// The per-instance GEMM shape — what kernel selection operates on
    /// (the batch only multiplies the launch count, not the shape).
    pub fn instance_gemm(&self) -> GemmShape {
        GemmShape::new(self.m, self.k, self.n)
    }
}

/// Any layer a network model lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Convolution.
    Conv(ConvLayer),
    /// Fully connected.
    Fc(FcLayer),
    /// Batched matmul (attention).
    Batched(BatchedMatmul),
}

impl Layer {
    /// Lower this layer to its GEMM shape for a batch size, if it has one.
    pub fn gemm(&self, batch: usize) -> Option<GemmShape> {
        match self {
            Layer::Conv(c) => c.im2col_gemm(batch),
            Layer::Fc(f) => Some(f.gemm(batch)),
            Layer::Batched(b) => Some(b.instance_gemm()),
        }
    }

    /// Multiply-accumulate count for one forward pass at batch 1.
    pub fn macs(&self) -> usize {
        match self {
            Layer::Conv(c) => {
                let out = c.output_size();
                out * out * c.out_channels * c.kernel * c.kernel * c.in_channels / c.groups
            }
            Layer::Fc(f) => f.in_features * f.out_features,
            Layer::Batched(b) => b.instances * b.m * b.k * b.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_size_matches_formula() {
        // VGG conv: 3x3, stride 1, pad 1 — preserves size.
        let c = ConvLayer::standard(3, 64, 3, 1, 1, 224);
        assert_eq!(c.output_size(), 224);
        // ResNet stem: 7x7, stride 2, pad 3 — halves size.
        let c = ConvLayer::standard(3, 64, 7, 2, 3, 224);
        assert_eq!(c.output_size(), 112);
        // 1x1 stride 2.
        let c = ConvLayer::standard(256, 512, 1, 2, 0, 56);
        assert_eq!(c.output_size(), 28);
    }

    #[test]
    fn im2col_shape() {
        let c = ConvLayer::standard(3, 64, 3, 1, 1, 224);
        let g = c.im2col_gemm(1).unwrap();
        assert_eq!(g, GemmShape::new(224 * 224, 27, 64));
        let g4 = c.im2col_gemm(4).unwrap();
        assert_eq!(g4.m, 4 * 224 * 224);
        assert_eq!((g4.k, g4.n), (g.k, g.n));
    }

    #[test]
    fn depthwise_does_not_lower() {
        let d = ConvLayer::depthwise(32, 3, 1, 1, 112);
        assert!(!d.lowers_to_gemm());
        assert_eq!(d.im2col_gemm(1), None);
        assert_eq!(Layer::Conv(d).gemm(1), None);
    }

    #[test]
    fn fc_lowering() {
        let f = FcLayer {
            in_features: 4096,
            out_features: 1000,
        };
        assert_eq!(f.gemm(32), GemmShape::new(32, 4096, 1000));
    }

    #[test]
    fn macs_counts() {
        let f = FcLayer {
            in_features: 10,
            out_features: 20,
        };
        assert_eq!(Layer::Fc(f).macs(), 200);
        let c = ConvLayer::standard(3, 64, 3, 1, 1, 224);
        assert_eq!(Layer::Conv(c).macs(), 224 * 224 * 64 * 9 * 3);
        // Depthwise divides by groups.
        let d = ConvLayer::depthwise(32, 3, 1, 1, 112);
        assert_eq!(Layer::Conv(d).macs(), 112 * 112 * 32 * 9 * 32 / 32);
    }
}
