//! Executable convolution lowering: the im2col transform the paper
//! relies on ("convolutional layers ... can be computed using a matrix
//! multiply through transformations such as the im2col"), plus a direct
//! convolution reference to validate it against.
//!
//! Layout conventions (matching the GEMM shapes produced by
//! [`crate::layers::ConvLayer::im2col_gemm`]):
//!
//! - input: NCHW, flattened `[batch][c_in][h][w]`
//! - weights: `[kh][kw][c_in][c_out]` flattened — i.e. the GEMM's
//!   `K × N` operand with `K = kernel² · c_in`, `N = c_out`
//! - output: `[batch · out_h · out_w, c_out]` row-major — the GEMM's
//!   `M × N` result

use crate::layers::ConvLayer;
use autokernel_gemm::reference::reference_gemm;

/// Flattened input length for a layer at a batch size.
pub fn input_len(layer: &ConvLayer, batch: usize) -> usize {
    batch * layer.in_channels * layer.input_size * layer.input_size
}

/// Flattened weight length for a layer.
pub fn weight_len(layer: &ConvLayer) -> usize {
    layer.kernel * layer.kernel * layer.in_channels * layer.out_channels
}

/// Flattened output length for a layer at a batch size.
pub fn output_len(layer: &ConvLayer, batch: usize) -> usize {
    let out = layer.output_size();
    batch * out * out * layer.out_channels
}

/// Direct (sliding-window) convolution reference.
///
/// Panics in debug builds on length mismatches; only standard
/// (non-grouped) convolutions are supported, like the paper's lowering.
pub fn direct_conv(
    layer: &ConvLayer,
    batch: usize,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
) {
    assert_eq!(
        layer.groups, 1,
        "direct_conv supports standard convolutions only"
    );
    debug_assert_eq!(input.len(), input_len(layer, batch));
    debug_assert_eq!(weights.len(), weight_len(layer));
    debug_assert_eq!(output.len(), output_len(layer, batch));

    let (cin, cout, k) = (layer.in_channels, layer.out_channels, layer.kernel);
    let (h, s, p) = (layer.input_size, layer.stride, layer.padding);
    let out = layer.output_size();

    for b in 0..batch {
        for oy in 0..out {
            for ox in 0..out {
                let orow = ((b * out + oy) * out + ox) * cout;
                for oc in 0..cout {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= h as isize {
                                continue;
                            }
                            for ic in 0..cin {
                                let iv =
                                    input[((b * cin + ic) * h + iy as usize) * h + ix as usize];
                                let wv = weights[((ky * k + kx) * cin + ic) * cout + oc];
                                acc += iv * wv;
                            }
                        }
                    }
                    output[orow + oc] = acc;
                }
            }
        }
    }
}

/// Build the im2col patch matrix: `(batch · out²) × (kernel² · c_in)`,
/// zero-padding out-of-bounds taps.
pub fn im2col_matrix(layer: &ConvLayer, batch: usize, input: &[f32]) -> Vec<f32> {
    assert_eq!(
        layer.groups, 1,
        "im2col supports standard convolutions only"
    );
    debug_assert_eq!(input.len(), input_len(layer, batch));
    let (cin, k) = (layer.in_channels, layer.kernel);
    let (h, s, p) = (layer.input_size, layer.stride, layer.padding);
    let out = layer.output_size();
    let cols = k * k * cin;
    let mut m = vec![0.0f32; batch * out * out * cols];

    for b in 0..batch {
        for oy in 0..out {
            for ox in 0..out {
                let row = (b * out + oy) * out + ox;
                let base = row * cols;
                for ky in 0..k {
                    let iy = (oy * s + ky) as isize - p as isize;
                    for kx in 0..k {
                        let ix = (ox * s + kx) as isize - p as isize;
                        for ic in 0..cin {
                            let col = (ky * k + kx) * cin + ic;
                            m[base + col] =
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < h as isize {
                                    input[((b * cin + ic) * h + iy as usize) * h + ix as usize]
                                } else {
                                    0.0
                                };
                        }
                    }
                }
            }
        }
    }
    m
}

/// Convolution through the im2col + GEMM path — the lowering the whole
/// study's dataset is built from.
pub fn im2col_conv(
    layer: &ConvLayer,
    batch: usize,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
) {
    let shape = layer
        .im2col_gemm(batch)
        .expect("standard convolution lowers");
    debug_assert_eq!(output.len(), shape.m * shape.n);
    let patches = im2col_matrix(layer, batch, input);
    reference_gemm(shape, &patches, weights, output);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_add(seed)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z ^= z >> 31;
                ((z % 1000) as f32 / 500.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn identity_1x1_conv_permutes_channels_to_nhwc() {
        // 1x1 conv with identity weights copies channels.
        let layer = ConvLayer::standard(2, 2, 1, 1, 0, 3);
        let input = filled(input_len(&layer, 1), 1);
        let mut weights = vec![0.0f32; weight_len(&layer)];
        weights[0] = 1.0; // (ic=0 -> oc=0)
        weights[3] = 1.0; // (ic=1 -> oc=1)
        let mut out = vec![0.0f32; output_len(&layer, 1)];
        im2col_conv(&layer, 1, &input, &weights, &mut out);
        for y in 0..3 {
            for x in 0..3 {
                for c in 0..2 {
                    let expect = input[(c * 3 + y) * 3 + x];
                    let got = out[((y * 3) + x) * 2 + c];
                    assert_eq!(got, expect);
                }
            }
        }
    }

    #[test]
    fn hand_computed_3x3_sum_kernel() {
        // All-ones 3x3 kernel over an all-ones 4x4 image (pad 1) counts
        // the in-bounds taps per position.
        let layer = ConvLayer::standard(1, 1, 3, 1, 1, 4);
        let input = vec![1.0f32; input_len(&layer, 1)];
        let weights = vec![1.0f32; weight_len(&layer)];
        let mut out = vec![0.0f32; output_len(&layer, 1)];
        im2col_conv(&layer, 1, &input, &weights, &mut out);
        // Corners see 4 taps, edges 6, interior 9.
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 6.0);
        assert_eq!(out[5], 9.0);
        assert_eq!(out[15], 4.0);
    }

    #[test]
    fn im2col_matches_direct_conv_across_layer_zoo() {
        let layers = [
            ConvLayer::standard(3, 8, 3, 1, 1, 10),
            ConvLayer::standard(4, 4, 1, 1, 0, 7),
            ConvLayer::standard(2, 5, 3, 2, 1, 9),
            ConvLayer::standard(3, 6, 7, 2, 3, 14),
            ConvLayer::standard(1, 2, 5, 1, 2, 8),
        ];
        for (li, layer) in layers.iter().enumerate() {
            for batch in [1usize, 3] {
                let input = filled(input_len(layer, batch), li as u64);
                let weights = filled(weight_len(layer), 77 + li as u64);
                let mut a = vec![0.0f32; output_len(layer, batch)];
                let mut b = vec![0.0f32; output_len(layer, batch)];
                direct_conv(layer, batch, &input, &weights, &mut a);
                im2col_conv(layer, batch, &input, &weights, &mut b);
                let err = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(err < 1e-4, "layer {li} batch {batch}: max err {err}");
            }
        }
    }

    #[test]
    fn im2col_matrix_dimensions_match_gemm_shape() {
        let layer = ConvLayer::standard(3, 16, 3, 2, 1, 11);
        let batch = 2;
        let shape = layer.im2col_gemm(batch).unwrap();
        let m = im2col_matrix(&layer, batch, &filled(input_len(&layer, batch), 0));
        assert_eq!(m.len(), shape.m * shape.k);
        assert_eq!(weight_len(&layer), shape.k * shape.n);
    }

    #[test]
    #[should_panic(expected = "standard convolutions")]
    fn depthwise_rejected() {
        let layer = ConvLayer::depthwise(4, 3, 1, 1, 8);
        let _ = im2col_matrix(&layer, 1, &vec![0.0; input_len(&layer, 1)]);
    }
}
