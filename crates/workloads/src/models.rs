//! Layer-by-layer descriptions of the three networks the paper mines
//! for GEMM shapes: VGG-16, ResNet-50 and MobileNet-V2 (all at the
//! standard 224×224 ImageNet input resolution).

use crate::layers::{BatchedMatmul, ConvLayer, FcLayer, Layer};
use serde::{Deserialize, Serialize};

/// A named network: an ordered list of layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Display name ("VGG16", ...).
    pub name: String,
    /// Layers in forward order (pooling and activations omitted — they
    /// produce no GEMMs).
    pub layers: Vec<Layer>,
}

impl NetworkModel {
    /// Total multiply-accumulates of one forward pass at batch 1.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(Layer::macs).sum()
    }
}

fn conv(inc: usize, outc: usize, k: usize, s: usize, p: usize, size: usize) -> Layer {
    Layer::Conv(ConvLayer::standard(inc, outc, k, s, p, size))
}

fn dwconv(c: usize, s: usize, size: usize) -> Layer {
    Layer::Conv(ConvLayer::depthwise(c, 3, s, 1, size))
}

fn fc(i: usize, o: usize) -> Layer {
    Layer::Fc(FcLayer {
        in_features: i,
        out_features: o,
    })
}

/// VGG-16 (Simonyan & Zisserman 2014): 13 convolutions + 3 FC layers.
pub fn vgg16() -> NetworkModel {
    let layers = vec![
        conv(3, 64, 3, 1, 1, 224),
        conv(64, 64, 3, 1, 1, 224),
        conv(64, 128, 3, 1, 1, 112),
        conv(128, 128, 3, 1, 1, 112),
        conv(128, 256, 3, 1, 1, 56),
        conv(256, 256, 3, 1, 1, 56),
        conv(256, 256, 3, 1, 1, 56),
        conv(256, 512, 3, 1, 1, 28),
        conv(512, 512, 3, 1, 1, 28),
        conv(512, 512, 3, 1, 1, 28),
        conv(512, 512, 3, 1, 1, 14),
        conv(512, 512, 3, 1, 1, 14),
        conv(512, 512, 3, 1, 1, 14),
        fc(512 * 7 * 7, 4096),
        fc(4096, 4096),
        fc(4096, 1000),
    ];
    NetworkModel {
        name: "VGG16".into(),
        layers,
    }
}

/// ResNet-50 (He et al. 2016): 7×7 stem, four bottleneck stages, FC head.
pub fn resnet50() -> NetworkModel {
    let mut layers = vec![conv(3, 64, 7, 2, 3, 224)];

    // (in_planes, width, out_planes, input_size, blocks, first_stride)
    let stages: [(usize, usize, usize, usize, usize, usize); 4] = [
        (64, 64, 256, 56, 3, 1),
        (256, 128, 512, 56, 4, 2),
        (512, 256, 1024, 28, 6, 2),
        (1024, 512, 2048, 14, 3, 2),
    ];
    for (inp, width, outp, in_size, blocks, first_stride) in stages {
        let out_size = in_size / first_stride;
        for b in 0..blocks {
            let (cin, size, stride) = if b == 0 {
                (inp, in_size, first_stride)
            } else {
                (outp, out_size, 1)
            };
            // 1×1 reduce (carries the stride in ResNet v1).
            layers.push(conv(cin, width, 1, stride, 0, size));
            // 3×3 at the output resolution.
            layers.push(conv(width, width, 3, 1, 1, out_size));
            // 1×1 expand.
            layers.push(conv(width, outp, 1, 1, 0, out_size));
            if b == 0 {
                // Projection shortcut.
                layers.push(conv(cin, outp, 1, stride, 0, size));
            }
        }
    }
    layers.push(fc(2048, 1000));
    NetworkModel {
        name: "ResNet50".into(),
        layers,
    }
}

/// MobileNet-V2 (Sandler et al. 2018): inverted residual bottlenecks.
/// Depthwise convolutions do not lower to GEMM; the pointwise expansions
/// and projections (and the stem/head convolutions) do.
pub fn mobilenet_v2() -> NetworkModel {
    let mut layers = vec![conv(3, 32, 3, 2, 1, 224)];

    // (expansion t, output channels c, repeats n, first stride s)
    let settings: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cin = 32usize;
    let mut size = 112usize;
    for (t, c, n, s) in settings {
        for b in 0..n {
            let stride = if b == 0 { s } else { 1 };
            let hidden = cin * t;
            if t != 1 {
                // Pointwise expansion at the input resolution.
                layers.push(conv(cin, hidden, 1, 1, 0, size));
            }
            let out_size = size / stride;
            // Depthwise 3×3 (no GEMM, but part of the model inventory).
            layers.push(dwconv(hidden, stride, size));
            // Pointwise projection at the output resolution.
            layers.push(conv(hidden, c, 1, 1, 0, out_size));
            cin = c;
            size = out_size;
        }
    }
    // Head: 1×1 to 1280 channels, then the classifier.
    layers.push(conv(cin, 1280, 1, 1, 0, size));
    layers.push(fc(1280, 1000));
    NetworkModel {
        name: "MobileNetV2".into(),
        layers,
    }
}

/// BERT-base encoder (Devlin et al. 2018) at a given sequence length:
/// the transformer workload "machine learning research" moved to after
/// the paper's CNNs. Twelve identical layers of QKV/output projections
/// (per-token GEMMs, `M = batch · seq`), per-head attention matmuls
/// (batched GEMMs of `(seq, 64, seq)` and `(seq, seq, 64)`), and the
/// two feed-forward GEMMs.
pub fn bert_base(seq: usize) -> NetworkModel {
    let d = 768usize;
    let heads = 12usize;
    let d_head = d / heads;
    let d_ff = 3072usize;
    let mut layers = Vec::new();
    for _ in 0..12 {
        // Q, K, V and output projections: per batch item a
        // (seq, 768, 768) GEMM over the token dimension.
        for _ in 0..4 {
            layers.push(Layer::Batched(BatchedMatmul {
                instances: 1,
                m: seq,
                k: d,
                n: d,
            }));
        }
        // Attention scores Q·Kᵀ: one (seq, d_head, seq) GEMM per head.
        layers.push(Layer::Batched(BatchedMatmul {
            instances: heads,
            m: seq,
            k: d_head,
            n: seq,
        }));
        // Attention output attn·V: one (seq, seq, d_head) GEMM per head.
        layers.push(Layer::Batched(BatchedMatmul {
            instances: heads,
            m: seq,
            k: seq,
            n: d_head,
        }));
        // Feed-forward: (seq, 768, 3072) then (seq, 3072, 768).
        layers.push(Layer::Batched(BatchedMatmul {
            instances: 1,
            m: seq,
            k: d,
            n: d_ff,
        }));
        layers.push(Layer::Batched(BatchedMatmul {
            instances: 1,
            m: seq,
            k: d_ff,
            n: d,
        }));
    }
    NetworkModel {
        name: format!("BERT-base-seq{seq}"),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_macs_and_structure() {
        let net = bert_base(128);
        // 12 layers x 8 GEMM-producing entries.
        assert_eq!(net.layers.len(), 12 * 8);
        // Per layer at seq 128: projections and FFN are per-token
        // (seq x ...), attention is per-head.
        let per_layer = 4 * 128 * 768 * 768 + 2 * 12 * 128 * 64 * 128 + 2 * 128 * 768 * 3072;
        assert_eq!(net.total_macs(), 12 * per_layer);
    }

    #[test]
    fn bert_attention_shapes_are_square_in_seq() {
        use autokernel_gemm::GemmShape;
        let net = bert_base(384);
        let shapes: Vec<GemmShape> = net.layers.iter().filter_map(|l| l.gemm(8)).collect();
        assert!(
            shapes.contains(&GemmShape::new(384, 64, 384)),
            "QK^T shape missing"
        );
        assert!(
            shapes.contains(&GemmShape::new(384, 384, 64)),
            "attn*V shape missing"
        );
        // Projections are per-token GEMMs over the sequence.
        assert!(shapes.contains(&GemmShape::new(384, 768, 768)));
        assert!(shapes.contains(&GemmShape::new(384, 768, 3072)));
    }

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let net = vgg16();
        let convs = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Conv(_)))
            .count();
        let fcs = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Fc(_)))
            .count();
        assert_eq!((convs, fcs), (13, 3));
        // VGG-16 is ~15.5 GMACs at 224².
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((15.0..16.0).contains(&gmacs), "VGG16 macs = {gmacs} G");
    }

    #[test]
    fn resnet50_block_structure() {
        let net = resnet50();
        // 1 stem + 3·(3+4+6+3) bottleneck convs + 4 projection shortcuts.
        let convs = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Conv(_)))
            .count();
        assert_eq!(convs, 1 + 3 * 16 + 4);
        let fcs = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Fc(_)))
            .count();
        assert_eq!(fcs, 1);
    }

    #[test]
    fn resnet50_macs_in_expected_band() {
        let gmacs = resnet50().total_macs() as f64 / 1e9;
        assert!(
            (3.0..6.5).contains(&gmacs),
            "ResNet-50-like macs = {gmacs} G"
        );
    }

    #[test]
    fn mobilenet_macs_small() {
        let net = mobilenet_v2();
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((0.2..0.5).contains(&gmacs), "MobileNetV2 macs = {gmacs} G");
        // Contains depthwise layers that do not lower to GEMM.
        let depthwise = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Conv(c) if c.groups > 1))
            .count();
        assert_eq!(depthwise, 17);
    }

    #[test]
    fn mobilenet_final_feature_map_is_7x7x1280() {
        let net = mobilenet_v2();
        // The head conv must be 320 -> 1280 at 7x7.
        let head = net
            .layers
            .iter()
            .rev()
            .find_map(|l| match l {
                Layer::Conv(c) if c.groups == 1 => Some(*c),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            (head.in_channels, head.out_channels, head.input_size),
            (320, 1280, 7)
        );
    }
}
