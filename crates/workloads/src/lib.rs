//! # autokernel-workloads
//!
//! The neural-network workloads whose GEMM shapes drive the study.
//!
//! The paper extracts the matrix-multiply sizes arising in three popular
//! networks — VGG, ResNet and MobileNet — through the im2col lowering of
//! convolutions and the direct lowering of fully-connected layers,
//! obtaining 78, 66 and 26 unique (M, K, N) combinations respectively
//! (170 in total).
//!
//! This crate rebuilds that population: [`models`] describes the three
//! architectures layer by layer, [`layers`] performs the lowering, and
//! [`dataset`] assembles the deduplicated per-network shape sets with the
//! paper's counts. [`conv`] makes the lowering executable: a direct
//! convolution reference and the im2col + GEMM path, validated against
//! each other; [`winograd`] adds the F(2×2, 3×3) Winograd lowering the
//! paper also names, which turns a 3×3 convolution into 16 much smaller
//! GEMMs.

#![warn(missing_docs)]

pub mod conv;
pub mod dataset;
pub mod layers;
pub mod models;
pub mod winograd;

pub use dataset::{paper_dataset, NetworkShapes};
pub use layers::{BatchedMatmul, ConvLayer, FcLayer, Layer};
pub use models::{bert_base, mobilenet_v2, resnet50, vgg16, NetworkModel};
