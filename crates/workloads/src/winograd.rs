//! Winograd F(2×2, 3×3) convolution lowering — the second GEMM-producing
//! transformation the paper names ("transformations such as the im2col
//! and Winograd").
//!
//! For a stride-1 3×3 convolution, each 4×4 input tile `d` produces a
//! 2×2 output tile through
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with the classic F(2,3) transform matrices. Grouping by the 16 tile
//! positions turns the whole layer into **16 independent GEMMs** of
//! shape `(batch · ⌈out/2⌉², c_in, c_out)` — a very different population
//! of matrix sizes from im2col, which is why libraries must select
//! kernels per lowering as well as per layer.

use crate::layers::ConvLayer;
use autokernel_gemm::reference::reference_gemm;
use autokernel_gemm::GemmShape;

/// Bᵀ (4×4): input transform.
const BT: [[f32; 4]; 4] = [
    [1.0, 0.0, -1.0, 0.0],
    [0.0, 1.0, 1.0, 0.0],
    [0.0, -1.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, -1.0],
];

/// G (4×3): filter transform.
const G: [[f32; 3]; 4] = [
    [1.0, 0.0, 0.0],
    [0.5, 0.5, 0.5],
    [0.5, -0.5, 0.5],
    [0.0, 0.0, 1.0],
];

/// Aᵀ (2×4): output transform (Lavin & Gray's convention — note the
/// trailing −1, which pairs with Bᵀ's `d1 − d3` row).
const AT: [[f32; 4]; 2] = [[1.0, 1.0, 1.0, 0.0], [0.0, 1.0, -1.0, -1.0]];

/// Whether a layer is eligible for this Winograd variant.
pub fn supports_winograd(layer: &ConvLayer) -> bool {
    layer.groups == 1 && layer.kernel == 3 && layer.stride == 1
}

/// The shape of each of the 16 per-tile-position GEMMs for a batch.
///
/// Returns `None` for layers the F(2,3) lowering does not apply to.
pub fn winograd_gemm(layer: &ConvLayer, batch: usize) -> Option<GemmShape> {
    if !supports_winograd(layer) {
        return None;
    }
    let out = layer.output_size();
    let tiles = out.div_ceil(2);
    Some(GemmShape::new(
        batch * tiles * tiles,
        layer.in_channels,
        layer.out_channels,
    ))
}

/// 4×4 input transform of one tile: `Bᵀ d B`.
fn transform_input_tile(d: &[[f32; 4]; 4]) -> [[f32; 4]; 4] {
    let mut tmp = [[0.0f32; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            tmp[i][j] = (0..4).map(|k| BT[i][k] * d[k][j]).sum();
        }
    }
    let mut out = [[0.0f32; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = (0..4).map(|k| tmp[i][k] * BT[j][k]).sum();
        }
    }
    out
}

/// 4×4 filter transform of one 3×3 kernel: `G g Gᵀ`.
fn transform_filter(g: &[[f32; 3]; 3]) -> [[f32; 4]; 4] {
    let mut tmp = [[0.0f32; 3]; 4];
    for i in 0..4 {
        for j in 0..3 {
            tmp[i][j] = (0..3).map(|k| G[i][k] * g[k][j]).sum();
        }
    }
    let mut out = [[0.0f32; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = (0..3).map(|k| tmp[i][k] * G[j][k]).sum();
        }
    }
    out
}

/// 2×2 output transform of one accumulated tile: `Aᵀ m A`.
fn transform_output_tile(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    let mut tmp = [[0.0f32; 4]; 2];
    for i in 0..2 {
        for j in 0..4 {
            tmp[i][j] = (0..4).map(|k| AT[i][k] * m[k][j]).sum();
        }
    }
    let mut out = [[0.0f32; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = (0..4).map(|k| tmp[i][k] * AT[j][k]).sum();
        }
    }
    out
}

/// Winograd convolution through 16 batched GEMMs.
///
/// Layouts match [`crate::conv`]: input NCHW flat, weights
/// `[ky][kx][c_in][c_out]` flat, output `[batch·out², c_out]` row-major.
/// Panics if the layer is not Winograd-eligible.
#[allow(clippy::needless_range_loop)] // index arithmetic mirrors the maths
pub fn winograd_conv(
    layer: &ConvLayer,
    batch: usize,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
) {
    assert!(
        supports_winograd(layer),
        "layer is not Winograd F(2,3) eligible"
    );
    let shape = winograd_gemm(layer, batch).expect("eligible layer has a Winograd GEMM");
    let (cin, cout) = (layer.in_channels, layer.out_channels);
    let (h, p) = (layer.input_size, layer.padding);
    let out = layer.output_size();
    let tiles = out.div_ceil(2);

    // Transform the filters once: u[pos][cin][cout].
    let mut u = vec![0.0f32; 16 * cin * cout];
    for ic in 0..cin {
        for oc in 0..cout {
            let mut g = [[0.0f32; 3]; 3];
            for ky in 0..3 {
                for kx in 0..3 {
                    g[ky][kx] = weights[((ky * 3 + kx) * cin + ic) * cout + oc];
                }
            }
            let t = transform_filter(&g);
            for (pos, value) in t.iter().flatten().enumerate() {
                u[(pos * cin + ic) * cout + oc] = *value;
            }
        }
    }

    // Transform the input tiles: v[pos][tile_row][cin].
    let m = shape.m; // batch * tiles * tiles
    let mut v = vec![0.0f32; 16 * m * cin];
    for b in 0..batch {
        for ty in 0..tiles {
            for tx in 0..tiles {
                let row = (b * tiles + ty) * tiles + tx;
                for ic in 0..cin {
                    let mut d = [[0.0f32; 4]; 4];
                    for dy in 0..4 {
                        let iy = (ty * 2 + dy) as isize - p as isize;
                        for dx in 0..4 {
                            let ix = (tx * 2 + dx) as isize - p as isize;
                            d[dy][dx] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < h as isize
                            {
                                input[((b * cin + ic) * h + iy as usize) * h + ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                    let t = transform_input_tile(&d);
                    for (pos, value) in t.iter().flatten().enumerate() {
                        v[(pos * m + row) * cin + ic] = *value;
                    }
                }
            }
        }
    }

    // 16 independent GEMMs: w[pos] = v[pos] (m x cin) * u[pos] (cin x cout).
    let mut acc = vec![0.0f32; 16 * m * cout];
    for pos in 0..16 {
        let vm = &v[pos * m * cin..(pos + 1) * m * cin];
        let um = &u[pos * cin * cout..(pos + 1) * cin * cout];
        let am = &mut acc[pos * m * cout..(pos + 1) * m * cout];
        reference_gemm(shape, vm, um, am);
    }

    // Inverse transform into the output layout.
    for b in 0..batch {
        for ty in 0..tiles {
            for tx in 0..tiles {
                let row = (b * tiles + ty) * tiles + tx;
                for oc in 0..cout {
                    let mut mtile = [[0.0f32; 4]; 4];
                    for (pos, slot) in mtile.iter_mut().flatten().enumerate() {
                        *slot = acc[(pos * m + row) * cout + oc];
                    }
                    let y = transform_output_tile(&mtile);
                    for dy in 0..2 {
                        let oy = ty * 2 + dy;
                        if oy >= out {
                            continue;
                        }
                        for dx in 0..2 {
                            let ox = tx * 2 + dx;
                            if ox >= out {
                                continue;
                            }
                            output[((b * out + oy) * out + ox) * cout + oc] = y[dy][dx];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{direct_conv, input_len, output_len, weight_len};

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_add(seed)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z ^= z >> 31;
                ((z % 1000) as f32 / 500.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn eligibility() {
        assert!(supports_winograd(&ConvLayer::standard(3, 8, 3, 1, 1, 16)));
        assert!(!supports_winograd(&ConvLayer::standard(3, 8, 3, 2, 1, 16))); // stride
        assert!(!supports_winograd(&ConvLayer::standard(3, 8, 1, 1, 0, 16))); // 1x1
        assert!(!supports_winograd(&ConvLayer::depthwise(8, 3, 1, 1, 16))); // grouped
        assert!(winograd_gemm(&ConvLayer::standard(3, 8, 1, 1, 0, 16), 1).is_none());
    }

    #[test]
    fn winograd_gemm_shape_differs_from_im2col() {
        let layer = ConvLayer::standard(64, 64, 3, 1, 1, 56);
        let wino = winograd_gemm(&layer, 1).unwrap();
        let im2col = layer.im2col_gemm(1).unwrap();
        assert_eq!(wino, GemmShape::new(28 * 28, 64, 64));
        assert_eq!(im2col, GemmShape::new(56 * 56, 576, 64));
        assert_ne!(wino, im2col);
    }

    #[test]
    fn matches_direct_conv_on_even_sizes() {
        let layer = ConvLayer::standard(3, 5, 3, 1, 1, 8);
        for batch in [1usize, 2] {
            let input = filled(input_len(&layer, batch), 1);
            let weights = filled(weight_len(&layer), 2);
            let mut direct = vec![0.0f32; output_len(&layer, batch)];
            let mut wino = vec![0.0f32; output_len(&layer, batch)];
            direct_conv(&layer, batch, &input, &weights, &mut direct);
            winograd_conv(&layer, batch, &input, &weights, &mut wino);
            let err = direct
                .iter()
                .zip(&wino)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 1e-4, "batch {batch}: err {err}");
        }
    }

    #[test]
    fn matches_direct_conv_on_odd_sizes_with_partial_tiles() {
        // 7x7 output: the last tile row/col is partial.
        let layer = ConvLayer::standard(2, 3, 3, 1, 1, 7);
        let input = filled(input_len(&layer, 1), 9);
        let weights = filled(weight_len(&layer), 10);
        let mut direct = vec![0.0f32; output_len(&layer, 1)];
        let mut wino = vec![0.0f32; output_len(&layer, 1)];
        direct_conv(&layer, 1, &input, &weights, &mut direct);
        winograd_conv(&layer, 1, &input, &weights, &mut wino);
        let err = direct
            .iter()
            .zip(&wino)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn no_padding_variant_matches() {
        let layer = ConvLayer::standard(2, 2, 3, 1, 0, 10);
        let input = filled(input_len(&layer, 1), 4);
        let weights = filled(weight_len(&layer), 5);
        let mut direct = vec![0.0f32; output_len(&layer, 1)];
        let mut wino = vec![0.0f32; output_len(&layer, 1)];
        direct_conv(&layer, 1, &input, &weights, &mut direct);
        winograd_conv(&layer, 1, &input, &weights, &mut wino);
        let err = direct
            .iter()
            .zip(&wino)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn winograd_saves_multiplies() {
        // The point of F(2,3): 16 multiplies per 4 outputs instead of 36.
        let layer = ConvLayer::standard(64, 64, 3, 1, 1, 56);
        let wino = winograd_gemm(&layer, 1).unwrap();
        let im2col = layer.im2col_gemm(1).unwrap();
        let wino_macs = 16.0 * wino.flops() / 2.0;
        let im2col_macs = im2col.flops() / 2.0;
        let ratio = im2col_macs / wino_macs;
        assert!(
            (2.2..=2.3).contains(&ratio),
            "speedup ratio {ratio} should be 36/16"
        );
    }

    #[test]
    #[should_panic(expected = "not Winograd")]
    fn strided_layer_panics() {
        let layer = ConvLayer::standard(3, 3, 3, 2, 1, 8);
        let mut out = vec![0.0f32; output_len(&layer, 1)];
        winograd_conv(&layer, 1, &[0.0; 192], &[0.0; 81], &mut out);
    }
}
