//! Assembly of the paper's GEMM-shape dataset from the network models.
//!
//! The paper reports 78 VGG, 66 ResNet and 26 MobileNet unique (M, K, N)
//! combinations (170 in total). The exact shape lists are not recoverable
//! from the paper text, so we regenerate comparable populations: each
//! network's layers are lowered at several batch sizes, deduplicated, and
//! the population is deterministically trimmed to the paper's count
//! (smallest-first by a stable ordering, so reruns are identical). This
//! preserves exactly what the study needs — a realistic mixture of tall,
//! wide, tiny and huge GEMMs drawn from real networks, in the paper's
//! proportions.

use crate::models::{mobilenet_v2, resnet50, vgg16, NetworkModel};
use autokernel_gemm::GemmShape;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The deduplicated GEMM shapes of one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkShapes {
    /// Network name.
    pub network: String,
    /// Unique shapes, in deterministic (sorted) order.
    pub shapes: Vec<GemmShape>,
}

/// Lower every layer of `model` at each batch size and deduplicate.
pub fn unique_gemms(model: &NetworkModel, batches: &[usize]) -> Vec<GemmShape> {
    let mut set = BTreeSet::new();
    for &b in batches {
        for layer in &model.layers {
            if let Some(shape) = layer.gemm(b) {
                set.insert(shape);
            }
        }
    }
    set.into_iter().collect()
}

/// Deterministically trim a population to exactly `n` shapes, spreading
/// the selection across the sorted population (so small, medium and
/// large shapes all survive) rather than truncating one end.
fn trim_to(mut shapes: Vec<GemmShape>, n: usize) -> Vec<GemmShape> {
    assert!(
        shapes.len() >= n,
        "population of {} cannot be trimmed to {}",
        shapes.len(),
        n
    );
    if shapes.len() == n {
        return shapes;
    }
    // Evenly-spaced selection over the sorted order.
    let len = shapes.len();
    let picked: Vec<GemmShape> = (0..n).map(|i| shapes[i * len / n]).collect();
    shapes = picked;
    shapes
}

/// Batch sizes used per network (chosen so each population comfortably
/// covers the paper's count; documented in DESIGN.md).
pub const VGG_BATCHES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// ResNet batch sizes.
pub const RESNET_BATCHES: [usize; 4] = [1, 4, 16, 32];
/// MobileNet batch sizes.
pub const MOBILENET_BATCHES: [usize; 2] = [1, 16];

/// The paper's per-network shape counts.
pub const PAPER_COUNTS: [(&str, usize); 3] = [("VGG16", 78), ("ResNet50", 66), ("MobileNetV2", 26)];

/// Build the full 170-shape dataset with the paper's per-network counts.
pub fn paper_dataset() -> Vec<NetworkShapes> {
    let spec: [(NetworkModel, &[usize], usize); 3] = [
        (vgg16(), &VGG_BATCHES, 78),
        (resnet50(), &RESNET_BATCHES, 66),
        (mobilenet_v2(), &MOBILENET_BATCHES, 26),
    ];
    spec.into_iter()
        .map(|(model, batches, count)| NetworkShapes {
            network: model.name.clone(),
            shapes: trim_to(unique_gemms(&model, batches), count),
        })
        .collect()
}

/// All 170 shapes of the paper dataset, flattened in network order.
pub fn paper_shapes() -> Vec<GemmShape> {
    paper_dataset().into_iter().flat_map(|n| n.shapes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_counts_are_reproduced() {
        let ds = paper_dataset();
        for ((net, expect), got) in PAPER_COUNTS.iter().zip(&ds) {
            assert_eq!(got.network, *net);
            assert_eq!(got.shapes.len(), *expect, "{net}");
        }
        assert_eq!(paper_shapes().len(), 170);
    }

    #[test]
    fn shapes_are_unique_within_each_network() {
        for net in paper_dataset() {
            let set: HashSet<_> = net.shapes.iter().collect();
            assert_eq!(
                set.len(),
                net.shapes.len(),
                "{} has duplicates",
                net.network
            );
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = paper_shapes();
        let b = paper_shapes();
        assert_eq!(a, b);
    }

    #[test]
    fn populations_cover_paper_counts() {
        // The untrimmed populations must be at least as large as the
        // paper's counts (otherwise the batch sets need widening).
        assert!(unique_gemms(&vgg16(), &VGG_BATCHES).len() >= 78);
        assert!(unique_gemms(&resnet50(), &RESNET_BATCHES).len() >= 66);
        assert!(unique_gemms(&mobilenet_v2(), &MOBILENET_BATCHES).len() >= 26);
    }

    #[test]
    fn dataset_spans_orders_of_magnitude() {
        let shapes = paper_shapes();
        let ms: Vec<usize> = shapes.iter().map(|s| s.m).collect();
        let min = ms.iter().min().unwrap();
        let max = ms.iter().max().unwrap();
        assert!(*min <= 4, "expected tiny fully-connected Ms, min = {min}");
        assert!(*max >= 100_000, "expected huge im2col Ms, max = {max}");
        // K must include both 1x1 lowerings (K = C_in) and 3x3 (K = 9·C_in).
        let ks: HashSet<usize> = shapes.iter().map(|s| s.k).collect();
        assert!(
            ks.contains(&64) || ks.contains(&256),
            "1x1 lowering K missing"
        );
        assert!(
            ks.contains(&576) || ks.contains(&1152) || ks.contains(&27),
            "3x3 lowering K missing"
        );
    }

    #[test]
    fn unique_gemms_excludes_depthwise() {
        let shapes = unique_gemms(&mobilenet_v2(), &[1]);
        // Depthwise layers produce no GEMM: every K must be a MobileNet
        // channel width (1x1 pointwise / FC) or 27 (the 3x3 stem). A
        // depthwise lowering would contribute K = 9·C for hidden C.
        let channel_widths = [16, 24, 32, 64, 96, 144, 160, 192, 320, 384, 576, 960, 1280];
        for s in &shapes {
            assert!(
                s.k == 27 || channel_widths.contains(&s.k),
                "unexpected K {} (depthwise leak?)",
                s.k
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot be trimmed")]
    fn trim_rejects_undersized_population() {
        let _ = trim_to(vec![GemmShape::new(1, 1, 1)], 2);
    }
}
