//! Property tests: every lowering of a convolution computes the same
//! function, for arbitrary layer geometries.

use autokernel_workloads::conv::{direct_conv, im2col_conv, input_len, output_len, weight_len};
use autokernel_workloads::winograd::{supports_winograd, winograd_conv, winograd_gemm};
use autokernel_workloads::ConvLayer;
use proptest::prelude::*;

fn filled(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut z = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z ^= z >> 31;
            ((z % 2000) as f32 / 1000.0) - 1.0
        })
        .collect()
}

fn max_err(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Arbitrary standard conv layers whose geometry is valid (output >= 1).
fn arb_layer() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..5,
        1usize..7,
        prop_oneof![Just(1usize), Just(3), Just(5)],
        1usize..3,
        0usize..3,
        5usize..14,
    )
        .prop_filter_map("valid geometry", |(cin, cout, k, s, p, size)| {
            let layer = ConvLayer::standard(cin, cout, k, s, p, size);
            (size + 2 * p >= k).then_some(layer)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn im2col_equals_direct_for_any_geometry(layer in arb_layer(), batch in 1usize..3, seed: u64) {
        let input = filled(input_len(&layer, batch), seed);
        let weights = filled(weight_len(&layer), seed ^ 0xdead);
        let mut a = vec![0.0f32; output_len(&layer, batch)];
        let mut b = vec![0.0f32; output_len(&layer, batch)];
        direct_conv(&layer, batch, &input, &weights, &mut a);
        im2col_conv(&layer, batch, &input, &weights, &mut b);
        prop_assert!(max_err(&a, &b) < 1e-3, "layer {layer:?}");
    }

    #[test]
    fn winograd_equals_direct_when_eligible(
        cin in 1usize..5,
        cout in 1usize..6,
        pad in 0usize..2,
        size in 4usize..13,
        batch in 1usize..3,
        seed: u64,
    ) {
        let layer = ConvLayer::standard(cin, cout, 3, 1, pad, size);
        prop_assume!(size + 2 * pad >= 3);
        prop_assert!(supports_winograd(&layer));
        let input = filled(input_len(&layer, batch), seed);
        let weights = filled(weight_len(&layer), seed ^ 0xbeef);
        let mut a = vec![0.0f32; output_len(&layer, batch)];
        let mut b = vec![0.0f32; output_len(&layer, batch)];
        direct_conv(&layer, batch, &input, &weights, &mut a);
        winograd_conv(&layer, batch, &input, &weights, &mut b);
        prop_assert!(max_err(&a, &b) < 1e-3, "layer {layer:?}");
    }

    #[test]
    fn winograd_gemm_shape_consistent_with_tiling(
        cin in 1usize..64,
        cout in 1usize..64,
        size in 4usize..60,
        batch in 1usize..5,
    ) {
        let layer = ConvLayer::standard(cin, cout, 3, 1, 1, size);
        let g = winograd_gemm(&layer, batch).unwrap();
        let tiles = layer.output_size().div_ceil(2);
        prop_assert_eq!(g.m, batch * tiles * tiles);
        prop_assert_eq!(g.k, cin);
        prop_assert_eq!(g.n, cout);
    }
}
