//! Device descriptions parameterising the performance model.

use serde::{Deserialize, Serialize};

/// Broad device class, mirroring `sycl::info::device_type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceType {
    /// Discrete or integrated GPU.
    Gpu,
    /// Embedded / mobile accelerator.
    Accelerator,
    /// Host CPU.
    Cpu,
}

/// Architectural description of a simulated device.
///
/// The fields are the knobs the analytical model in [`crate::perf`]
/// consumes. Values for the shipped presets are taken from public spec
/// sheets; they need only be *relatively* right — the study operates on
/// per-shape-normalised performance, so only ratios between kernel
/// configurations matter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing/display name.
    pub name: String,
    /// Device class.
    pub device_type: DeviceType,
    /// Number of compute units (CUs / SMs / shader cores).
    pub compute_units: usize,
    /// SIMD lanes executing one hardware thread ("wave"/"warp" width).
    pub wave_width: usize,
    /// SIMD units per compute unit (GCN has 4).
    pub simds_per_cu: usize,
    /// Maximum waves resident per SIMD (GCN: 10).
    pub max_waves_per_simd: usize,
    /// Vector registers available per SIMD, per lane (GCN: 256 VGPRs).
    pub vgprs_per_simd: usize,
    /// Bytes of local/shared memory per compute unit.
    pub lds_bytes_per_cu: usize,
    /// Largest work-group the device accepts.
    pub max_work_group_size: usize,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Effective cache bandwidth in bytes/s (bounds well-reused traffic).
    pub cache_bandwidth: f64,
    /// Fixed per-launch overhead in seconds (driver + dispatch).
    pub launch_overhead: f64,
    /// DRAM round-trip latency in seconds, hidden by occupancy.
    pub mem_latency: f64,
}

impl DeviceSpec {
    /// The paper's benchmark platform: AMD R9 Nano (Fiji, GCN3).
    ///
    /// 64 CUs × 4 SIMD × 64 lanes at ~1.0 GHz ⇒ 8.19 TFLOP/s fp32 with
    /// 512 GB/s of HBM.
    pub fn amd_r9_nano() -> Self {
        DeviceSpec {
            name: "AMD R9 Nano (simulated)".into(),
            device_type: DeviceType::Gpu,
            compute_units: 64,
            wave_width: 64,
            simds_per_cu: 4,
            max_waves_per_simd: 10,
            vgprs_per_simd: 256,
            lds_bytes_per_cu: 64 * 1024,
            max_work_group_size: 256,
            peak_flops: 8.19e12,
            mem_bandwidth: 512.0e9,
            cache_bandwidth: 2.0e12,
            launch_overhead: 8.0e-6,
            mem_latency: 350.0e-9,
        }
    }

    /// A mid-range desktop GPU with narrower waves (NVIDIA-like: 32-wide
    /// warps, fewer but beefier SMs, GDDR-class bandwidth).
    pub fn desktop_gpu() -> Self {
        DeviceSpec {
            name: "Desktop GPU (simulated)".into(),
            device_type: DeviceType::Gpu,
            compute_units: 36,
            wave_width: 32,
            simds_per_cu: 4,
            max_waves_per_simd: 16,
            vgprs_per_simd: 256,
            lds_bytes_per_cu: 96 * 1024,
            max_work_group_size: 1024,
            peak_flops: 6.5e12,
            mem_bandwidth: 320.0e9,
            cache_bandwidth: 1.5e12,
            launch_overhead: 5.0e-6,
            mem_latency: 400.0e-9,
        }
    }

    /// An embedded accelerator (Mali-like): few cores, narrow SIMD,
    /// LPDDR bandwidth, proportionally cheap launches.
    pub fn embedded_accelerator() -> Self {
        DeviceSpec {
            name: "Embedded accelerator (simulated)".into(),
            device_type: DeviceType::Accelerator,
            compute_units: 12,
            wave_width: 16,
            simds_per_cu: 2,
            max_waves_per_simd: 6,
            vgprs_per_simd: 128,
            lds_bytes_per_cu: 32 * 1024,
            max_work_group_size: 256,
            peak_flops: 0.4e12,
            mem_bandwidth: 25.0e9,
            cache_bandwidth: 120.0e9,
            launch_overhead: 20.0e-6,
            mem_latency: 600.0e-9,
        }
    }

    /// A deliberately resource-starved edge DSP, the stress case for
    /// static analysis: 64 total lanes under a 128-item work-group
    /// limit and only 8 KiB of local memory per core. Large swathes of
    /// the GEMM configuration space are *statically unlaunchable* here
    /// — work-groups of 256 exceed the group limit, work-groups of 128
    /// exceed the lane count, and big staging tiles exceed LDS — which
    /// is exactly what the kernel-space analyzer exists to prove
    /// before a tuning sweep wastes time discovering it at submit.
    pub fn edge_dsp() -> Self {
        DeviceSpec {
            name: "Edge DSP (simulated)".into(),
            device_type: DeviceType::Accelerator,
            compute_units: 4,
            wave_width: 16,
            simds_per_cu: 1,
            max_waves_per_simd: 4,
            vgprs_per_simd: 64,
            lds_bytes_per_cu: 8 * 1024,
            max_work_group_size: 128,
            peak_flops: 0.05e12,
            mem_bandwidth: 8.0e9,
            cache_bandwidth: 40.0e9,
            launch_overhead: 30.0e-6,
            mem_latency: 800.0e-9,
        }
    }

    /// A host-CPU stand-in used by tests that need a non-GPU device.
    pub fn host_cpu() -> Self {
        DeviceSpec {
            name: "Host CPU (simulated)".into(),
            device_type: DeviceType::Cpu,
            compute_units: 8,
            wave_width: 8,
            simds_per_cu: 1,
            max_waves_per_simd: 2,
            vgprs_per_simd: 32,
            lds_bytes_per_cu: 32 * 1024,
            max_work_group_size: 256,
            peak_flops: 0.5e12,
            mem_bandwidth: 40.0e9,
            cache_bandwidth: 400.0e9,
            launch_overhead: 0.5e-6,
            mem_latency: 90.0e-9,
        }
    }

    /// Start a builder seeded from this spec, for describing custom
    /// hardware ("new accelerator arrives, tweak the knobs, re-tune").
    pub fn customize(self) -> DeviceSpecBuilder {
        DeviceSpecBuilder { spec: self }
    }

    /// Total waves the device can keep resident.
    pub fn max_resident_waves(&self) -> usize {
        self.compute_units * self.simds_per_cu * self.max_waves_per_simd
    }

    /// Total SIMD lanes on the device.
    pub fn total_lanes(&self) -> usize {
        self.compute_units * self.simds_per_cu * self.wave_width
    }

    /// Machine-balance point in FLOP/byte: arithmetic intensity below
    /// this is memory-bound on this device.
    pub fn machine_balance(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }
}

/// Builder for custom device descriptions, seeded from a preset.
///
/// `build` validates the spec: every capacity must be positive, the
/// work-group limit must hold at least one wave.
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    spec: DeviceSpec,
}

impl DeviceSpecBuilder {
    /// Set the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Set the compute-unit count.
    pub fn compute_units(mut self, n: usize) -> Self {
        self.spec.compute_units = n;
        self
    }

    /// Set the SIMD wave width.
    pub fn wave_width(mut self, n: usize) -> Self {
        self.spec.wave_width = n;
        self
    }

    /// Set peak fp32 throughput in FLOP/s.
    pub fn peak_flops(mut self, f: f64) -> Self {
        self.spec.peak_flops = f;
        self
    }

    /// Set DRAM bandwidth in bytes/s.
    pub fn mem_bandwidth(mut self, b: f64) -> Self {
        self.spec.mem_bandwidth = b;
        self
    }

    /// Set the per-launch overhead in seconds.
    pub fn launch_overhead(mut self, s: f64) -> Self {
        self.spec.launch_overhead = s;
        self
    }

    /// Set the vector-register file size per SIMD.
    pub fn vgprs_per_simd(mut self, n: usize) -> Self {
        self.spec.vgprs_per_simd = n;
        self
    }

    /// Set local-memory bytes per compute unit.
    pub fn lds_bytes_per_cu(mut self, n: usize) -> Self {
        self.spec.lds_bytes_per_cu = n;
        self
    }

    /// Validate and produce the spec.
    pub fn build(self) -> Result<DeviceSpec, String> {
        let s = &self.spec;
        if s.compute_units == 0
            || s.wave_width == 0
            || s.simds_per_cu == 0
            || s.max_waves_per_simd == 0
            || s.vgprs_per_simd == 0
            || s.max_work_group_size == 0
        {
            return Err("all device capacities must be positive".into());
        }
        if s.peak_flops <= 0.0 || s.mem_bandwidth <= 0.0 || s.cache_bandwidth <= 0.0 {
            return Err("throughputs must be positive".into());
        }
        if s.launch_overhead < 0.0 || s.mem_latency < 0.0 {
            return Err("latencies cannot be negative".into());
        }
        if s.max_work_group_size < s.wave_width {
            return Err("work-group limit must hold at least one wave".into());
        }
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_customises_and_validates() {
        let custom = DeviceSpec::amd_r9_nano()
            .customize()
            .name("MI-custom")
            .compute_units(120)
            .peak_flops(20.0e12)
            .mem_bandwidth(1.6e12)
            .build()
            .unwrap();
        assert_eq!(custom.name, "MI-custom");
        assert_eq!(custom.compute_units, 120);
        assert!((custom.machine_balance() - 12.5).abs() < 1e-9);
        // Untouched fields keep the preset values.
        assert_eq!(custom.wave_width, 64);
    }

    #[test]
    fn builder_rejects_degenerate_specs() {
        assert!(DeviceSpec::amd_r9_nano()
            .customize()
            .compute_units(0)
            .build()
            .is_err());
        assert!(DeviceSpec::amd_r9_nano()
            .customize()
            .peak_flops(0.0)
            .build()
            .is_err());
        assert!(DeviceSpec::amd_r9_nano()
            .customize()
            .launch_overhead(-1.0)
            .build()
            .is_err());
        assert!(DeviceSpec::amd_r9_nano()
            .customize()
            .wave_width(512)
            .build()
            .is_err());
    }

    #[test]
    fn r9_nano_matches_public_specs() {
        let d = DeviceSpec::amd_r9_nano();
        assert_eq!(d.compute_units, 64);
        assert_eq!(d.wave_width, 64);
        // 4096 shader lanes.
        assert_eq!(d.total_lanes(), 64 * 4 * 64);
        // ~16 FLOP/byte machine balance (8.19 TF / 512 GB/s).
        assert!((d.machine_balance() - 16.0).abs() < 0.5);
    }

    #[test]
    fn presets_have_sane_relationships() {
        let nano = DeviceSpec::amd_r9_nano();
        let desktop = DeviceSpec::desktop_gpu();
        let embedded = DeviceSpec::embedded_accelerator();
        assert!(nano.peak_flops > desktop.peak_flops);
        assert!(desktop.peak_flops > embedded.peak_flops);
        assert!(embedded.mem_bandwidth < desktop.mem_bandwidth);
        assert_eq!(embedded.device_type, DeviceType::Accelerator);
    }

    #[test]
    fn resident_wave_budget() {
        let d = DeviceSpec::amd_r9_nano();
        assert_eq!(d.max_resident_waves(), 64 * 4 * 10);
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        let d = DeviceSpec::desktop_gpu();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
