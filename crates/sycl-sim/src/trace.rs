//! Execution-trace recording: collect completed events and export them
//! as a Chrome-trace (`chrome://tracing` / Perfetto) JSON timeline —
//! the profiling view a SYCL runtime would give you for a real run.

use crate::runtime::{CompletionStatus, Event};
use std::collections::BTreeMap;

/// How far down the resilient fallback chain a launch had to go before
/// it completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackLevel {
    /// The selector's own pick ran.
    Primary,
    /// The pick failed (or was quarantined); the Nth-ranked alternative
    /// shipped config ran instead (1 = first alternative tried).
    NextBest(u8),
    /// Every shipped config failed; the host-side reference GEMM ran.
    Reference,
}

impl FallbackLevel {
    /// Short stable label used in trace annotations
    /// (`primary` / `next_best_N` / `reference`).
    pub fn label(&self) -> String {
        match self {
            FallbackLevel::Primary => "primary".to_string(),
            FallbackLevel::NextBest(n) => format!("next_best_{n}"),
            FallbackLevel::Reference => "reference".to_string(),
        }
    }

    /// Whether the launch was served by anything other than the
    /// selector's pick.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, FallbackLevel::Primary)
    }
}

/// Which selection-service decision produced a kernel launch.
///
/// Produced by the selection layer upstream (autokernel-core's cached
/// selector) and attached to trace entries so a timeline shows not just
/// *what* ran but *why that kernel was chosen* — whether the decision
/// was served from the shape cache, how many failed attempts preceded
/// the completion, and how far down the fallback chain it landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDecision {
    /// Global index of the tiled configuration that served the launch
    /// (the selector's pick on the primary path, the substitute on a
    /// next-best fallback). When `fallback` is
    /// [`FallbackLevel::Reference`] no tiled configuration ran, so this
    /// holds the *selector's* pick for attribution.
    pub config_index: usize,
    /// Whether the decision came from the selection cache.
    pub cache_hit: bool,
    /// Failed launch attempts absorbed before this one completed.
    pub attempts: u32,
    /// Where on the fallback chain the completing launch sat.
    pub fallback: FallbackLevel,
    /// Index of the fleet device that served the launch, when a
    /// multi-device scheduler routed it (`None` for single-queue
    /// serving, which has no fleet to attribute across).
    pub device_tag: Option<u16>,
}

impl LaunchDecision {
    /// A plain decision: no failures, selector's pick ran directly.
    pub fn new(config_index: usize, cache_hit: bool) -> Self {
        LaunchDecision {
            config_index,
            cache_hit,
            attempts: 0,
            fallback: FallbackLevel::Primary,
            device_tag: None,
        }
    }

    /// Annotate with the retry/fallback outcome.
    pub fn with_resilience(mut self, attempts: u32, fallback: FallbackLevel) -> Self {
        self.attempts = attempts;
        self.fallback = fallback;
        self
    }

    /// Tag the decision with the fleet device that served it.
    pub fn with_device(mut self, device: u16) -> Self {
        self.device_tag = Some(device);
        self
    }
}

/// A recorded launch: queue label plus the completed event, optionally
/// annotated with the selector decision that produced it.
#[derive(Debug, Clone)]
struct TraceEntry {
    queue: String,
    event: Event,
    decision: Option<LaunchDecision>,
}

/// Collects events and renders timelines / summaries.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Record a completed event under a queue label.
    pub fn record(&mut self, queue: impl Into<String>, event: Event) {
        self.entries.push(TraceEntry {
            queue: queue.into(),
            event,
            decision: None,
        });
    }

    /// Record a completed event together with the selector decision
    /// that chose its kernel configuration.
    pub fn record_with_decision(
        &mut self,
        queue: impl Into<String>,
        event: Event,
        decision: LaunchDecision,
    ) {
        self.entries.push(TraceEntry {
            queue: queue.into(),
            event,
            decision: Some(decision),
        });
    }

    /// Number of entries carrying a [`LaunchDecision`].
    pub fn decided_launches(&self) -> usize {
        self.entries.iter().filter(|e| e.decision.is_some()).count()
    }

    /// Of the decision-annotated entries, how many were cache hits.
    pub fn cache_hit_launches(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.decision, Some(d) if d.cache_hit))
            .count()
    }

    /// Number of recorded events that are *failed* launches.
    pub fn failed_launches(&self) -> usize {
        self.entries.iter().filter(|e| e.event.is_failed()).count()
    }

    /// Of the decision-annotated entries, how many completed off the
    /// primary path (next-best config or reference fallback).
    pub fn degraded_launches(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.decision, Some(d) if d.fallback.is_degraded()))
            .count()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total simulated busy time across all recorded events.
    pub fn total_busy_s(&self) -> f64 {
        self.entries.iter().map(|e| e.event.duration_s()).sum()
    }

    /// Simulated makespan: latest end minus earliest start (0 if empty).
    pub fn makespan_s(&self) -> f64 {
        let start = self
            .entries
            .iter()
            .map(|e| e.event.start_s())
            .fold(f64::INFINITY, f64::min);
        let end = self
            .entries
            .iter()
            .map(|e| e.event.end_s())
            .fold(0.0f64, f64::max);
        if self.entries.is_empty() {
            0.0
        } else {
            end - start
        }
    }

    /// Summed duration per kernel name, sorted by name.
    pub fn per_kernel_totals(&self) -> BTreeMap<String, f64> {
        let mut totals = BTreeMap::new();
        for e in &self.entries {
            *totals
                .entry(e.event.kernel_name().to_string())
                .or_insert(0.0) += e.event.duration_s();
        }
        totals
    }

    /// Render as Chrome-trace JSON ("traceEvents" array of complete
    /// events; timestamps in microseconds, one pid per queue label).
    pub fn to_chrome_trace(&self) -> String {
        let mut queues: Vec<&str> = self.entries.iter().map(|e| e.queue.as_str()).collect();
        queues.sort_unstable();
        queues.dedup();
        let pid_of = |q: &str| queues.iter().position(|&x| x == q).unwrap_or(0) + 1;

        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let decision_args = match &e.decision {
                Some(d) => {
                    let device = match d.device_tag {
                        Some(tag) => format!(",\"device\":{tag}"),
                        None => String::new(),
                    };
                    format!(
                        ",\"config_index\":{},\"cache_hit\":{},\"attempts\":{},\"fallback\":{:?}{device}",
                        d.config_index,
                        d.cache_hit,
                        d.attempts,
                        d.fallback.label()
                    )
                }
                None => String::new(),
            };
            let status_args = match e.event.status() {
                CompletionStatus::Complete => String::new(),
                CompletionStatus::Failed(kind) => {
                    format!(",\"status\":\"failed\",\"fault\":{:?}", kind.label())
                }
            };
            // Failed launches render in their own category so Perfetto
            // colours them apart from completed kernels.
            let cat = if e.event.is_failed() {
                "kernel_fault"
            } else {
                "kernel"
            };
            out.push_str(&format!(
                "{{\"name\":{name:?},\"cat\":{cat:?},\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":1,\"args\":{{\"occupancy\":{occ:.3},\"utilization\":{util:.3}{decision_args}{status_args}}}}}",
                name = e.event.kernel_name(),
                ts = e.event.start_s() * 1e6,
                dur = e.event.duration_s() * 1e6,
                pid = pid_of(&e.queue),
                occ = e.event.cost().occupancy,
                util = e.event.cost().utilization,
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::perf::KernelProfile;
    use crate::runtime::{Buffer, Event, NDRange, Queue, SimKernel};
    use crate::Result;
    use std::sync::Arc;

    struct Noop {
        buf: Buffer<f32>,
    }
    impl SimKernel for Noop {
        fn name(&self) -> String {
            "noop".into()
        }
        fn profile(&self, _d: &DeviceSpec, _r: &NDRange) -> KernelProfile {
            KernelProfile {
                flops_per_item: 10.0,
                bytes_per_item: 4.0,
                cache_reuse: 0.0,
                registers_per_item: 8,
                lds_bytes_per_group: 0,
                coalescing: 1.0,
                useful_items: self.buf.len() as f64,
                ilp: 1.0,
            }
        }
        fn execute(&self, _r: &NDRange) -> Result<()> {
            Ok(())
        }
    }

    fn record_two() -> TraceRecorder {
        let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()));
        let k = Noop {
            buf: Buffer::from_vec(vec![0.0; 64]),
        };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let mut trace = TraceRecorder::new();
        trace.record("gpu0", queue.submit(&k, r).unwrap());
        trace.record("gpu0", queue.submit(&k, r).unwrap());
        trace
    }

    #[test]
    fn busy_time_and_makespan_agree_for_in_order_queue() {
        let trace = record_two();
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        // In-order queue with back-to-back submissions: makespan == busy.
        assert!((trace.total_busy_s() - trace.makespan_s()).abs() < 1e-15);
    }

    #[test]
    fn per_kernel_totals_aggregate() {
        let trace = record_two();
        let totals = trace.per_kernel_totals();
        assert_eq!(totals.len(), 1);
        assert!((totals["noop"] - trace.total_busy_s()).abs() < 1e-15);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let trace = record_two();
        let json = trace.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["pid"], 1);
        assert!(events[1]["ts"].as_f64().unwrap() >= events[0]["ts"].as_f64().unwrap());
        assert!(events[0]["args"]["occupancy"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn empty_trace_renders_and_measures_zero() {
        let trace = TraceRecorder::new();
        assert_eq!(trace.makespan_s(), 0.0);
        assert_eq!(trace.total_busy_s(), 0.0);
        let parsed: serde_json::Value = serde_json::from_str(&trace.to_chrome_trace()).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn decisions_flow_into_chrome_trace_args() {
        let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()));
        let k = Noop {
            buf: Buffer::from_vec(vec![0.0; 64]),
        };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let mut trace = TraceRecorder::new();
        trace.record_with_decision(
            "serve",
            queue.submit(&k, r).unwrap(),
            LaunchDecision::new(137, false),
        );
        trace.record_with_decision(
            "serve",
            queue.submit(&k, r).unwrap(),
            LaunchDecision::new(137, true).with_resilience(2, FallbackLevel::NextBest(1)),
        );
        trace.record("serve", queue.submit(&k, r).unwrap());
        assert_eq!(trace.decided_launches(), 2);
        assert_eq!(trace.cache_hit_launches(), 1);
        assert_eq!(trace.degraded_launches(), 1);
        let parsed: serde_json::Value = serde_json::from_str(&trace.to_chrome_trace()).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events[0]["args"]["config_index"], 137);
        assert_eq!(events[0]["args"]["cache_hit"], false);
        assert_eq!(events[0]["args"]["attempts"], 0);
        assert_eq!(events[0]["args"]["fallback"], "primary");
        assert_eq!(events[1]["args"]["cache_hit"], true);
        assert_eq!(events[1]["args"]["attempts"], 2);
        assert_eq!(events[1]["args"]["fallback"], "next_best_1");
        assert!(events[2]["args"]["config_index"].is_null());
    }

    #[test]
    fn device_tags_flow_into_chrome_trace_args() {
        let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()));
        let k = Noop {
            buf: Buffer::from_vec(vec![0.0; 64]),
        };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let mut trace = TraceRecorder::new();
        trace.record_with_decision(
            "fleet",
            queue.submit(&k, r).unwrap(),
            LaunchDecision::new(7, false).with_device(2),
        );
        trace.record_with_decision(
            "fleet",
            queue.submit(&k, r).unwrap(),
            LaunchDecision::new(7, true),
        );
        let parsed: serde_json::Value = serde_json::from_str(&trace.to_chrome_trace()).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events[0]["args"]["device"], 2);
        assert!(events[1]["args"]["device"].is_null());
    }

    #[test]
    fn failed_events_render_with_fault_annotations() {
        use crate::fault::FaultKind;
        let mut trace = TraceRecorder::new();
        trace.record(
            "serve",
            Event::failed("gemm_bad".into(), 1.0e-3, 1.5e-3, FaultKind::KernelTimeout),
        );
        let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()));
        let k = Noop {
            buf: Buffer::from_vec(vec![0.0; 64]),
        };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        trace.record("serve", queue.submit(&k, r).unwrap());
        assert_eq!(trace.failed_launches(), 1);
        let parsed: serde_json::Value = serde_json::from_str(&trace.to_chrome_trace()).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events[0]["cat"], "kernel_fault");
        assert_eq!(events[0]["args"]["status"], "failed");
        assert_eq!(events[0]["args"]["fault"], "kernel_timeout");
        assert_eq!(events[1]["cat"], "kernel");
        assert!(events[1]["args"]["status"].is_null());
    }

    #[test]
    fn fallback_labels_are_stable() {
        assert_eq!(FallbackLevel::Primary.label(), "primary");
        assert_eq!(FallbackLevel::NextBest(3).label(), "next_best_3");
        assert_eq!(FallbackLevel::Reference.label(), "reference");
        assert!(!FallbackLevel::Primary.is_degraded());
        assert!(FallbackLevel::Reference.is_degraded());
    }

    #[test]
    fn distinct_queues_get_distinct_pids() {
        let queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()));
        let k = Noop {
            buf: Buffer::from_vec(vec![0.0; 64]),
        };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let mut trace = TraceRecorder::new();
        trace.record("a", queue.submit(&k, r).unwrap());
        trace.record("b", queue.submit(&k, r).unwrap());
        let parsed: serde_json::Value = serde_json::from_str(&trace.to_chrome_trace()).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_ne!(events[0]["pid"], events[1]["pid"]);
    }
}
