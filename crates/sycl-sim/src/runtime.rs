//! SYCL-like runtime objects: platform, queue, buffer, ND-range, event.
//!
//! Semantics mirror the subset of SYCL the study uses: in-order queues
//! with profiling enabled, 2-D ND-range dispatch, and buffers shared
//! between host and "device". Kernel bodies execute on the host (rayon
//! parallel, real results); event timestamps come from the analytical
//! device model, advancing a per-queue simulated clock.

use crate::device::DeviceSpec;
use crate::perf::{self, KernelCost, KernelProfile};
use crate::{Result, SimError};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;

/// A two-dimensional ND-range: global dispatch size and work-group size.
///
/// As in SYCL, the global size must be a multiple of the local size in
/// each dimension; use [`NDRange::padded`] to round a useful size up.
///
/// ```
/// use autokernel_sycl_sim::NDRange;
/// let r = NDRange::padded([100, 3], [64, 1]).unwrap();
/// assert_eq!(r.global(), [128, 3]);
/// assert!(NDRange::new([65, 1], [64, 1]).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NDRange {
    global: [usize; 2],
    local: [usize; 2],
}

impl NDRange {
    /// Create a range, validating divisibility and non-emptiness.
    pub fn new(global: [usize; 2], local: [usize; 2]) -> Result<Self> {
        if global[0] == 0 || global[1] == 0 || local[0] == 0 || local[1] == 0 {
            return Err(SimError::BadRange("zero-sized range".into()));
        }
        if !global[0].is_multiple_of(local[0]) || !global[1].is_multiple_of(local[1]) {
            return Err(SimError::BadRange(format!(
                "global {:?} not a multiple of local {:?}",
                global, local
            )));
        }
        Ok(NDRange { global, local })
    }

    /// Round a useful size up to work-group multiples (the usual way
    /// GEMM launches are constructed).
    pub fn padded(useful: [usize; 2], local: [usize; 2]) -> Result<Self> {
        if local[0] == 0 || local[1] == 0 {
            return Err(SimError::BadRange("zero-sized work-group".into()));
        }
        let g0 = useful[0].max(1).div_ceil(local[0]) * local[0];
        let g1 = useful[1].max(1).div_ceil(local[1]) * local[1];
        NDRange::new([g0, g1], local)
    }

    /// Global extents.
    pub fn global(&self) -> [usize; 2] {
        self.global
    }

    /// Work-group extents.
    pub fn local(&self) -> [usize; 2] {
        self.local
    }

    /// Total dispatched work-items.
    pub fn global_size(&self) -> usize {
        self.global[0] * self.global[1]
    }

    /// Work-items per work-group.
    pub fn local_size(&self) -> usize {
        self.local[0] * self.local[1]
    }

    /// Number of work-groups dispatched.
    pub fn n_groups(&self) -> usize {
        (self.global[0] / self.local[0]) * (self.global[1] / self.local[1])
    }
}

/// A shared host/device buffer, SYCL-style.
///
/// Cloning is shallow (the clone aliases the same storage), matching
/// SYCL buffer semantics where copies refer to the same memory object.
#[derive(Debug, Clone)]
pub struct Buffer<T> {
    data: Arc<RwLock<Vec<T>>>,
}

impl<T: Clone + Send + Sync> Buffer<T> {
    /// Create a buffer owning `data`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Buffer {
            data: Arc::new(RwLock::new(data)),
        }
    }

    /// Create a zero-initialised buffer of `len` default elements.
    pub fn new_filled(len: usize, value: T) -> Self {
        Buffer::from_vec(vec![value; len])
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read accessor (shared).
    pub fn read(&self) -> RwLockReadGuard<'_, Vec<T>> {
        self.data.read()
    }

    /// Write accessor (exclusive).
    pub fn write(&self) -> RwLockWriteGuard<'_, Vec<T>> {
        self.data.write()
    }

    /// Copy the contents out to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.read().clone()
    }
}

/// A kernel the simulated runtime can launch.
///
/// Implementations do two things: *execute* on the host (producing real,
/// checkable results) and *profile* themselves so the device model can
/// price the launch.
pub trait SimKernel: Send + Sync {
    /// Human-readable kernel name (shows up in event records).
    fn name(&self) -> String;

    /// Resource/traffic description for the device model.
    fn profile(&self, device: &DeviceSpec, range: &NDRange) -> KernelProfile;

    /// Run the kernel body on the host for the given range.
    fn execute(&self, range: &NDRange) -> Result<()>;

    /// Seed folded into the deterministic timing noise, so distinct
    /// kernel configurations land on distinct noise samples.
    fn noise_seed(&self) -> u64 {
        0
    }
}

/// A completed launch with simulated profiling information, the analogue
/// of a SYCL event with `info::event_profiling`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kernel_name: String,
    start_s: f64,
    end_s: f64,
    cost: KernelCost,
}

impl Event {
    /// Simulated submission-to-completion duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Simulated completion timestamp on the queue's clock.
    pub fn end_s(&self) -> f64 {
        self.end_s
    }

    /// Simulated start timestamp on the queue's clock.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// The device model's cost breakdown for this launch.
    pub fn cost(&self) -> &KernelCost {
        &self.cost
    }

    /// Kernel name recorded at submit time.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }
}

/// A device execution context: queues created from the same context
/// share the device's timeline, so their launches serialise against
/// each other — the contention a real single device imposes on
/// concurrent SYCL queues.
#[derive(Clone)]
pub struct Context {
    device: Arc<DeviceSpec>,
    clock_s: Arc<Mutex<f64>>,
}

impl Context {
    /// Create a context for `device` with its clock at zero.
    pub fn new(device: Arc<DeviceSpec>) -> Self {
        Context {
            device,
            clock_s: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Create an executing queue sharing this context's timeline.
    pub fn create_queue(&self) -> Queue {
        Queue {
            device: self.device.clone(),
            clock_s: self.clock_s.clone(),
            noise_amplitude: 0.03,
            execute_host: true,
        }
    }

    /// Create a timing-only queue sharing this context's timeline.
    pub fn create_timing_queue(&self) -> Queue {
        Queue {
            execute_host: false,
            ..self.create_queue()
        }
    }

    /// The context's device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Current simulated time on the shared device clock.
    pub fn now_s(&self) -> f64 {
        *self.clock_s.lock()
    }
}

/// An in-order queue bound to one device.
pub struct Queue {
    device: Arc<DeviceSpec>,
    clock_s: Arc<Mutex<f64>>,
    /// Noise amplitude applied to modelled durations (0 disables).
    noise_amplitude: f64,
    /// When false, kernel bodies are skipped and only timing is modelled
    /// (used for large benchmark sweeps where results are not consumed).
    execute_host: bool,
}

impl Queue {
    /// Create a profiling queue on `device` that really executes kernel
    /// bodies on the host (with its own private timeline; use
    /// [`Context`] to share a timeline between queues).
    pub fn new(device: Arc<DeviceSpec>) -> Self {
        Context::new(device).create_queue()
    }

    /// A timing-only queue: kernels are priced by the model but their
    /// host bodies are not run. Benchmark sweeps over the full 640-config
    /// grid use this, exactly as a dry-run profiler would.
    pub fn timing_only(device: Arc<DeviceSpec>) -> Self {
        Queue {
            execute_host: false,
            ..Queue::new(device)
        }
    }

    /// Override the deterministic-noise amplitude (default 2 %).
    pub fn with_noise(mut self, amplitude: f64) -> Self {
        self.noise_amplitude = amplitude.max(0.0);
        self
    }

    /// The device this queue targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Submit a kernel over `range`; returns its completion event.
    pub fn submit(&self, kernel: &dyn SimKernel, range: NDRange) -> Result<Event> {
        self.submit_after(kernel, range, &[])
    }

    /// Submit with explicit event dependencies: the launch starts no
    /// earlier than every dependency's completion.
    pub fn submit_after(
        &self,
        kernel: &dyn SimKernel,
        range: NDRange,
        deps: &[Event],
    ) -> Result<Event> {
        if range.local_size() > self.device.max_work_group_size {
            return Err(SimError::BadLaunch(format!(
                "work-group of {} exceeds device limit {}",
                range.local_size(),
                self.device.max_work_group_size
            )));
        }
        if self.execute_host {
            kernel.execute(&range)?;
        }
        let profile = kernel.profile(&self.device, &range);
        let (cost, duration) = self.price(&profile, &range, kernel.noise_seed());

        let mut clock = self.clock_s.lock();
        let dep_end = deps.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
        let start = clock.max(dep_end);
        let end = start + duration;
        *clock = end;
        Ok(Event {
            kernel_name: kernel.name(),
            start_s: start,
            end_s: end,
            cost,
        })
    }

    /// Price a launch without submitting it: the cost breakdown and the
    /// noised duration an actual submission of the same (profile, range,
    /// seed) would report. Large benchmark sweeps use this directly so
    /// they need not materialise operand buffers.
    pub fn price(
        &self,
        profile: &KernelProfile,
        range: &NDRange,
        noise_seed: u64,
    ) -> (KernelCost, f64) {
        let cost = perf::estimate_cost(&self.device, profile, range);
        let noise = if self.noise_amplitude > 0.0 {
            let seed = noise_seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(range.global_size() as u64)
                .wrapping_add((range.local()[0] as u64) << 32)
                .wrapping_add(fxhash(self.device.name.as_bytes()));
            perf::deterministic_noise(seed, self.noise_amplitude)
        } else {
            1.0
        };
        (cost, cost.total_s * noise)
    }

    /// Current simulated time on this queue.
    pub fn now_s(&self) -> f64 {
        *self.clock_s.lock()
    }
}

/// Tiny FNV-style hash for stable string → u64 mapping.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A platform enumerating the available simulated devices, the analogue
/// of `sycl::platform`.
#[derive(Clone)]
pub struct Platform {
    devices: Vec<Arc<DeviceSpec>>,
}

impl Platform {
    /// The standard simulated platform: R9 Nano, a desktop GPU and an
    /// embedded accelerator.
    pub fn standard() -> Self {
        Platform {
            devices: vec![
                Arc::new(DeviceSpec::amd_r9_nano()),
                Arc::new(DeviceSpec::desktop_gpu()),
                Arc::new(DeviceSpec::embedded_accelerator()),
                Arc::new(DeviceSpec::host_cpu()),
            ],
        }
    }

    /// A platform exposing exactly the given devices.
    pub fn with_devices(devices: Vec<DeviceSpec>) -> Self {
        Platform {
            devices: devices.into_iter().map(Arc::new).collect(),
        }
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<DeviceSpec>] {
        &self.devices
    }

    /// First device of the requested type.
    pub fn device_by_type(&self, ty: crate::DeviceType) -> Result<Arc<DeviceSpec>> {
        self.devices
            .iter()
            .find(|d| d.device_type == ty)
            .cloned()
            .ok_or_else(|| SimError::NoSuchDevice(format!("{ty:?}")))
    }

    /// Device whose name contains `needle` (case-insensitive).
    pub fn device_by_name(&self, needle: &str) -> Result<Arc<DeviceSpec>> {
        let lower = needle.to_lowercase();
        self.devices
            .iter()
            .find(|d| d.name.to_lowercase().contains(&lower))
            .cloned()
            .ok_or_else(|| SimError::NoSuchDevice(needle.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceType;

    /// A toy kernel doubling a buffer, for runtime-semantics tests.
    struct DoubleKernel {
        buf: Buffer<f32>,
    }

    impl SimKernel for DoubleKernel {
        fn name(&self) -> String {
            "double".into()
        }
        fn profile(&self, _device: &DeviceSpec, _range: &NDRange) -> KernelProfile {
            KernelProfile {
                flops_per_item: 1.0,
                bytes_per_item: 8.0,
                cache_reuse: 0.0,
                registers_per_item: 8,
                lds_bytes_per_group: 0,
                coalescing: 1.0,
                useful_items: self.buf.len() as f64,
                ilp: 1.0,
            }
        }
        fn execute(&self, range: &NDRange) -> Result<()> {
            let mut data = self.buf.write();
            let n = data.len();
            for i in 0..range.global_size().min(n) {
                data[i] *= 2.0;
            }
            Ok(())
        }
    }

    #[test]
    fn ndrange_validation() {
        assert!(NDRange::new([64, 64], [8, 8]).is_ok());
        assert!(NDRange::new([65, 64], [8, 8]).is_err());
        assert!(NDRange::new([0, 64], [8, 8]).is_err());
        assert!(NDRange::new([64, 64], [0, 8]).is_err());
    }

    #[test]
    fn ndrange_padding() {
        let r = NDRange::padded([100, 3], [64, 1]).unwrap();
        assert_eq!(r.global(), [128, 3]);
        assert_eq!(r.n_groups(), 2 * 3);
        // Degenerate useful sizes still produce a valid launch.
        let r = NDRange::padded([0, 0], [8, 8]).unwrap();
        assert_eq!(r.global(), [8, 8]);
    }

    #[test]
    fn queue_executes_kernel_bodies() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let queue = Queue::new(dev);
        let buf = Buffer::from_vec(vec![1.0f32; 64]);
        let k = DoubleKernel { buf: buf.clone() };
        let ev = queue
            .submit(&k, NDRange::new([64, 1], [64, 1]).unwrap())
            .unwrap();
        assert!(ev.duration_s() > 0.0);
        assert!(buf.to_vec().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn timing_only_queue_skips_execution() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let queue = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![1.0f32; 64]);
        let k = DoubleKernel { buf: buf.clone() };
        let ev = queue
            .submit(&k, NDRange::new([64, 1], [64, 1]).unwrap())
            .unwrap();
        assert!(ev.duration_s() > 0.0);
        assert!(buf.to_vec().iter().all(|&v| v == 1.0), "body must not run");
    }

    #[test]
    fn in_order_clock_advances_monotonically() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let queue = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![0.0f32; 64]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let e1 = queue.submit(&k, r).unwrap();
        let e2 = queue.submit(&k, r).unwrap();
        assert!(e2.start_s() >= e1.end_s());
        assert!((queue.now_s() - e2.end_s()).abs() < 1e-15);
    }

    #[test]
    fn dependencies_delay_start() {
        let platform = Platform::standard();
        let gpu = platform.device_by_type(DeviceType::Gpu).unwrap();
        let q1 = Queue::timing_only(gpu.clone());
        let q2 = Queue::timing_only(gpu);
        let buf = Buffer::from_vec(vec![0.0f32; 1024 * 1024]);
        let k = DoubleKernel { buf };
        let big = NDRange::new([1024, 1024], [16, 16]).unwrap();
        let dep = q1.submit(&k, big).unwrap();
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let e = q2.submit_after(&k, r, std::slice::from_ref(&dep)).unwrap();
        assert!(e.start_s() >= dep.end_s());
    }

    #[test]
    fn launch_rejected_when_group_too_large() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap(); // max group 256
        let queue = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![0.0f32; 4]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([512, 1], [512, 1]).unwrap();
        assert!(matches!(queue.submit(&k, r), Err(SimError::BadLaunch(_))));
    }

    #[test]
    fn buffers_are_shared_on_clone() {
        let a = Buffer::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        b.write()[0] = 9;
        assert_eq!(a.to_vec(), vec![9, 2, 3]);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn platform_lookup() {
        let p = Platform::standard();
        assert_eq!(p.devices().len(), 4);
        assert!(p.device_by_type(DeviceType::Accelerator).is_ok());
        assert!(p.device_by_name("NANO").is_ok());
        assert!(p.device_by_name("does-not-exist").is_err());
        let only_cpu = Platform::with_devices(vec![DeviceSpec::host_cpu()]);
        assert!(only_cpu.device_by_type(DeviceType::Gpu).is_err());
    }

    #[test]
    fn identical_submissions_have_identical_durations() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let q = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![0.0f32; 64]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let e1 = q.submit(&k, r).unwrap();
        let e2 = q.submit(&k, r).unwrap();
        assert!((e1.duration_s() - e2.duration_s()).abs() < 1e-18);
    }
}
