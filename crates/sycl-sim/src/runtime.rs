//! SYCL-like runtime objects: platform, queue, buffer, ND-range, event.
//!
//! Semantics mirror the subset of SYCL the study uses: in-order queues
//! with profiling enabled, 2-D ND-range dispatch, and buffers shared
//! between host and "device". Kernel bodies execute on the host (rayon
//! parallel, real results); event timestamps come from the analytical
//! device model, advancing a per-queue simulated clock.

use crate::device::DeviceSpec;
use crate::fault::{FaultError, FaultKind, FaultPlan};
use crate::perf::{self, KernelCost, KernelProfile};
use crate::{Result, SimError};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;

/// A two-dimensional ND-range: global dispatch size and work-group size.
///
/// As in SYCL, the global size must be a multiple of the local size in
/// each dimension; use [`NDRange::padded`] to round a useful size up.
///
/// ```
/// use autokernel_sycl_sim::NDRange;
/// let r = NDRange::padded([100, 3], [64, 1]).unwrap();
/// assert_eq!(r.global(), [128, 3]);
/// assert!(NDRange::new([65, 1], [64, 1]).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NDRange {
    global: [usize; 2],
    local: [usize; 2],
}

impl NDRange {
    /// Create a range, validating divisibility and non-emptiness.
    pub fn new(global: [usize; 2], local: [usize; 2]) -> Result<Self> {
        if global[0] == 0 || global[1] == 0 || local[0] == 0 || local[1] == 0 {
            return Err(SimError::BadRange("zero-sized range".into()));
        }
        if !global[0].is_multiple_of(local[0]) || !global[1].is_multiple_of(local[1]) {
            return Err(SimError::BadRange(format!(
                "global {:?} not a multiple of local {:?}",
                global, local
            )));
        }
        Ok(NDRange { global, local })
    }

    /// Round a useful size up to work-group multiples (the usual way
    /// GEMM launches are constructed).
    pub fn padded(useful: [usize; 2], local: [usize; 2]) -> Result<Self> {
        if local[0] == 0 || local[1] == 0 {
            return Err(SimError::BadRange("zero-sized work-group".into()));
        }
        let g0 = useful[0].max(1).div_ceil(local[0]) * local[0];
        let g1 = useful[1].max(1).div_ceil(local[1]) * local[1];
        NDRange::new([g0, g1], local)
    }

    /// Global extents.
    pub fn global(&self) -> [usize; 2] {
        self.global
    }

    /// Work-group extents.
    pub fn local(&self) -> [usize; 2] {
        self.local
    }

    /// Total dispatched work-items.
    pub fn global_size(&self) -> usize {
        self.global[0] * self.global[1]
    }

    /// Work-items per work-group.
    pub fn local_size(&self) -> usize {
        self.local[0] * self.local[1]
    }

    /// Number of work-groups dispatched.
    pub fn n_groups(&self) -> usize {
        (self.global[0] / self.local[0]) * (self.global[1] / self.local[1])
    }
}

/// A shared host/device buffer, SYCL-style.
///
/// Cloning is shallow (the clone aliases the same storage), matching
/// SYCL buffer semantics where copies refer to the same memory object.
#[derive(Debug, Clone)]
pub struct Buffer<T> {
    data: Arc<RwLock<Vec<T>>>,
}

impl<T: Clone + Send + Sync> Buffer<T> {
    /// Create a buffer owning `data`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Buffer {
            data: Arc::new(RwLock::new(data)),
        }
    }

    /// Create a zero-initialised buffer of `len` default elements.
    pub fn new_filled(len: usize, value: T) -> Self {
        Buffer::from_vec(vec![value; len])
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read accessor (shared).
    pub fn read(&self) -> RwLockReadGuard<'_, Vec<T>> {
        self.data.read()
    }

    /// Write accessor (exclusive).
    pub fn write(&self) -> RwLockWriteGuard<'_, Vec<T>> {
        self.data.write()
    }

    /// Copy the contents out to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.read().clone()
    }
}

/// A kernel the simulated runtime can launch.
///
/// Implementations do two things: *execute* on the host (producing real,
/// checkable results) and *profile* themselves so the device model can
/// price the launch.
pub trait SimKernel: Send + Sync {
    /// Human-readable kernel name (shows up in event records).
    fn name(&self) -> String;

    /// Resource/traffic description for the device model.
    fn profile(&self, device: &DeviceSpec, range: &NDRange) -> KernelProfile;

    /// Run the kernel body on the host for the given range.
    fn execute(&self, range: &NDRange) -> Result<()>;

    /// Seed folded into the deterministic timing noise, so distinct
    /// kernel configurations land on distinct noise samples.
    fn noise_seed(&self) -> u64 {
        0
    }
}

/// How a launch recorded by an [`Event`] ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompletionStatus {
    /// The kernel ran to completion.
    Complete,
    /// The launch died to an injected fault of the given kind; the
    /// event's duration is the device time the failure consumed.
    Failed(FaultKind),
}

impl CompletionStatus {
    /// Short stable label used in trace annotations.
    pub fn label(&self) -> &'static str {
        match self {
            CompletionStatus::Complete => "complete",
            CompletionStatus::Failed(_) => "failed",
        }
    }
}

/// Check a launch's resource demands against a device *before* pricing
/// it. Queues call this at submit time; selection layers can call it
/// directly to pre-screen a candidate configuration.
///
/// The checks themselves live in [`crate::resources::check_launch`],
/// the single resource model shared with the offline static analyzer —
/// this wrapper only lifts its rejection into [`SimError::Exhausted`].
pub fn validate_launch(
    device: &DeviceSpec,
    profile: &KernelProfile,
    range: &NDRange,
) -> Result<()> {
    crate::resources::check_launch(device, profile, range).map_err(SimError::Exhausted)
}

/// A completed launch with simulated profiling information, the analogue
/// of a SYCL event with `info::event_profiling`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kernel_name: String,
    start_s: f64,
    end_s: f64,
    cost: KernelCost,
    status: CompletionStatus,
}

impl Event {
    /// An event recording a *failed* launch: the span it occupied on the
    /// device clock with a zeroed cost breakdown (nothing useful ran).
    pub fn failed(kernel_name: String, start_s: f64, end_s: f64, kind: FaultKind) -> Self {
        Event {
            kernel_name,
            start_s,
            end_s,
            cost: KernelCost::default(),
            status: CompletionStatus::Failed(kind),
        }
    }

    /// How the launch ended.
    pub fn status(&self) -> CompletionStatus {
        self.status
    }

    /// Whether this event records a failed launch.
    pub fn is_failed(&self) -> bool {
        matches!(self.status, CompletionStatus::Failed(_))
    }

    /// Simulated submission-to-completion duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Simulated completion timestamp on the queue's clock.
    pub fn end_s(&self) -> f64 {
        self.end_s
    }

    /// Simulated start timestamp on the queue's clock.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// The device model's cost breakdown for this launch.
    pub fn cost(&self) -> &KernelCost {
        &self.cost
    }

    /// Kernel name recorded at submit time.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }
}

/// A device execution context: queues created from the same context
/// share the device's timeline, so their launches serialise against
/// each other — the contention a real single device imposes on
/// concurrent SYCL queues.
#[derive(Clone)]
pub struct Context {
    device: Arc<DeviceSpec>,
    clock_s: Arc<Mutex<f64>>,
}

impl Context {
    /// Create a context for `device` with its clock at zero.
    pub fn new(device: Arc<DeviceSpec>) -> Self {
        Context {
            device,
            clock_s: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Create an executing queue sharing this context's timeline.
    pub fn create_queue(&self) -> Queue {
        Queue {
            device: self.device.clone(),
            clock_s: self.clock_s.clone(),
            noise_amplitude: 0.03,
            execute_host: true,
            fault_plan: None,
        }
    }

    /// Create a timing-only queue sharing this context's timeline.
    pub fn create_timing_queue(&self) -> Queue {
        Queue {
            execute_host: false,
            ..self.create_queue()
        }
    }

    /// The context's device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Current simulated time on the shared device clock.
    pub fn now_s(&self) -> f64 {
        *self.clock_s.lock()
    }
}

/// A cheap read-only handle on a queue's (or context's) simulated
/// clock. Cloning shares the underlying clock, so a fleet scheduler can
/// hold one handle per device and read in-flight simulated time — or
/// compute a fleet makespan as the max over handles — without holding
/// the queues themselves.
#[derive(Clone)]
pub struct SimClock {
    clock_s: Arc<Mutex<f64>>,
}

impl SimClock {
    /// Current simulated time on the shared clock.
    pub fn now_s(&self) -> f64 {
        *self.clock_s.lock()
    }

    /// Whether two handles observe the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.clock_s, &other.clock_s)
    }

    /// The latest simulated time across a set of device clocks — the
    /// fleet makespan when each handle tracks one device's timeline.
    pub fn max_now_s(clocks: &[SimClock]) -> f64 {
        clocks.iter().map(SimClock::now_s).fold(0.0f64, f64::max)
    }
}

/// An in-order queue bound to one device.
///
/// Cloning is shallow in the ways that matter: the clone shares the
/// original's device, simulated clock, and fault plan, so a cloned
/// queue's submissions serialise on the same timeline.
#[derive(Clone)]
pub struct Queue {
    device: Arc<DeviceSpec>,
    clock_s: Arc<Mutex<f64>>,
    /// Noise amplitude applied to modelled durations (0 disables).
    noise_amplitude: f64,
    /// When false, kernel bodies are skipped and only timing is modelled
    /// (used for large benchmark sweeps where results are not consumed).
    execute_host: bool,
    /// Optional injected-fault schedule consulted at submit time.
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Queue {
    /// Create a profiling queue on `device` that really executes kernel
    /// bodies on the host (with its own private timeline; use
    /// [`Context`] to share a timeline between queues).
    pub fn new(device: Arc<DeviceSpec>) -> Self {
        Context::new(device).create_queue()
    }

    /// A timing-only queue: kernels are priced by the model but their
    /// host bodies are not run. Benchmark sweeps over the full 640-config
    /// grid use this, exactly as a dry-run profiler would.
    pub fn timing_only(device: Arc<DeviceSpec>) -> Self {
        Queue {
            execute_host: false,
            ..Queue::new(device)
        }
    }

    /// Override the deterministic-noise amplitude (default 2 %).
    pub fn with_noise(mut self, amplitude: f64) -> Self {
        self.noise_amplitude = amplitude.max(0.0);
        self
    }

    /// Attach a fault plan: every subsequent submission is adjudicated
    /// by `plan` before it runs. An inert plan (all rates zero, no
    /// doomed kernels) leaves behaviour bit-identical to no plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// A clone of this queue with fault injection disabled — same
    /// device, same shared clock. The resilient executor's terminal
    /// fallback runs here, modelling a host-side safe path that device
    /// faults cannot reach.
    pub fn without_faults(&self) -> Queue {
        Queue {
            fault_plan: None,
            ..self.clone()
        }
    }

    /// The fault plan attached to this queue, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// The device this queue targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Advance this queue's simulated clock by `seconds` — how a
    /// resilient caller models backoff between retries without
    /// sleeping the host thread.
    pub fn wait(&self, seconds: f64) {
        if seconds > 0.0 {
            let mut clock = self.clock_s.lock();
            *clock += seconds;
        }
    }

    /// Submit a kernel over `range`; returns its completion event.
    pub fn submit(&self, kernel: &dyn SimKernel, range: NDRange) -> Result<Event> {
        self.submit_after(kernel, range, &[])
    }

    /// Submit with explicit event dependencies: the launch starts no
    /// earlier than every dependency's completion.
    pub fn submit_after(
        &self,
        kernel: &dyn SimKernel,
        range: NDRange,
        deps: &[Event],
    ) -> Result<Event> {
        let profile = kernel.profile(&self.device, &range);
        validate_launch(&self.device, &profile, &range)?;
        if let Some(plan) = &self.fault_plan {
            let occupancy = perf::occupancy(&self.device, &profile, &range);
            let name = kernel.name();
            if let Some((kind, consumed, submission)) = plan.decide(&name, occupancy, &self.device)
            {
                // The failed launch still occupies the device: charge
                // the consumed time to the shared clock so retries and
                // fallbacks pay for the failure they recover from.
                let mut clock = self.clock_s.lock();
                let dep_end = deps.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
                let start = clock.max(dep_end);
                *clock = start + consumed;
                return Err(SimError::Fault(FaultError {
                    kind,
                    kernel: name,
                    submission,
                    at_s: start,
                    consumed_s: consumed,
                }));
            }
        }
        if self.execute_host {
            kernel.execute(&range)?;
        }
        let (cost, duration) = self.price_unchecked(&profile, &range, kernel.noise_seed());

        let mut clock = self.clock_s.lock();
        let dep_end = deps.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
        let start = clock.max(dep_end);
        let end = start + duration;
        *clock = end;
        Ok(Event {
            kernel_name: kernel.name(),
            start_s: start,
            end_s: end,
            cost,
            status: CompletionStatus::Complete,
        })
    }

    /// Price a launch without submitting it: the cost breakdown and the
    /// noised duration an actual submission of the same (profile, range,
    /// seed) would report. Large benchmark sweeps use this directly so
    /// they need not materialise operand buffers.
    ///
    /// Launches that `resources::check_launch` would refuse are rejected
    /// with the same [`SimError`] the submit path raises — a price for an
    /// unlaunchable kernel is fiction, not a benchmark.
    pub fn price(
        &self,
        profile: &KernelProfile,
        range: &NDRange,
        noise_seed: u64,
    ) -> Result<(KernelCost, f64)> {
        validate_launch(&self.device, profile, range)?;
        Ok(self.price_unchecked(profile, range, noise_seed))
    }

    /// Price without re-validating: the submit path calls this after its
    /// own `validate_launch` so the check runs exactly once per launch.
    ///
    /// Public for counterfactual accounting only (e.g. "what would the
    /// un-pruned benchmark sweep have charged for this entry"): the
    /// returned duration for an unlaunchable (profile, range) is fiction
    /// the device would never actually execute. Use [`Queue::price`]
    /// everywhere a real launch is being modelled.
    pub fn price_unchecked(
        &self,
        profile: &KernelProfile,
        range: &NDRange,
        noise_seed: u64,
    ) -> (KernelCost, f64) {
        let cost = perf::estimate_cost(&self.device, profile, range);
        let noise = if self.noise_amplitude > 0.0 {
            let seed = noise_seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(range.global_size() as u64)
                .wrapping_add((range.local()[0] as u64) << 32)
                .wrapping_add(fxhash(self.device.name.as_bytes()));
            perf::deterministic_noise(seed, self.noise_amplitude)
        } else {
            1.0
        };
        (cost, cost.total_s * noise)
    }

    /// Current simulated time on this queue.
    pub fn now_s(&self) -> f64 {
        *self.clock_s.lock()
    }

    /// A [`SimClock`] handle sharing this queue's timeline.
    pub fn clock(&self) -> SimClock {
        SimClock {
            clock_s: self.clock_s.clone(),
        }
    }
}

/// Tiny FNV-style hash for stable string → u64 mapping.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A platform enumerating the available simulated devices, the analogue
/// of `sycl::platform`.
#[derive(Clone)]
pub struct Platform {
    devices: Vec<Arc<DeviceSpec>>,
}

impl Platform {
    /// The standard simulated platform: R9 Nano, a desktop GPU and an
    /// embedded accelerator.
    pub fn standard() -> Self {
        Platform {
            devices: vec![
                Arc::new(DeviceSpec::amd_r9_nano()),
                Arc::new(DeviceSpec::desktop_gpu()),
                Arc::new(DeviceSpec::embedded_accelerator()),
                Arc::new(DeviceSpec::host_cpu()),
            ],
        }
    }

    /// A platform exposing exactly the given devices.
    pub fn with_devices(devices: Vec<DeviceSpec>) -> Self {
        Platform {
            devices: devices.into_iter().map(Arc::new).collect(),
        }
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<DeviceSpec>] {
        &self.devices
    }

    /// First device of the requested type.
    pub fn device_by_type(&self, ty: crate::DeviceType) -> Result<Arc<DeviceSpec>> {
        self.devices
            .iter()
            .find(|d| d.device_type == ty)
            .cloned()
            .ok_or_else(|| SimError::NoSuchDevice(format!("{ty:?}")))
    }

    /// Device whose name contains `needle` (case-insensitive).
    pub fn device_by_name(&self, needle: &str) -> Result<Arc<DeviceSpec>> {
        let lower = needle.to_lowercase();
        self.devices
            .iter()
            .find(|d| d.name.to_lowercase().contains(&lower))
            .cloned()
            .ok_or_else(|| SimError::NoSuchDevice(needle.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceType;

    /// A toy kernel doubling a buffer, for runtime-semantics tests.
    struct DoubleKernel {
        buf: Buffer<f32>,
    }

    impl SimKernel for DoubleKernel {
        fn name(&self) -> String {
            "double".into()
        }
        fn profile(&self, _device: &DeviceSpec, _range: &NDRange) -> KernelProfile {
            KernelProfile {
                flops_per_item: 1.0,
                bytes_per_item: 8.0,
                cache_reuse: 0.0,
                registers_per_item: 8,
                lds_bytes_per_group: 0,
                coalescing: 1.0,
                useful_items: self.buf.len() as f64,
                ilp: 1.0,
            }
        }
        fn execute(&self, range: &NDRange) -> Result<()> {
            let mut data = self.buf.write();
            let n = data.len();
            for i in 0..range.global_size().min(n) {
                data[i] *= 2.0;
            }
            Ok(())
        }
    }

    #[test]
    fn ndrange_validation() {
        assert!(NDRange::new([64, 64], [8, 8]).is_ok());
        assert!(NDRange::new([65, 64], [8, 8]).is_err());
        assert!(NDRange::new([0, 64], [8, 8]).is_err());
        assert!(NDRange::new([64, 64], [0, 8]).is_err());
    }

    #[test]
    fn ndrange_padding() {
        let r = NDRange::padded([100, 3], [64, 1]).unwrap();
        assert_eq!(r.global(), [128, 3]);
        assert_eq!(r.n_groups(), 2 * 3);
        // Degenerate useful sizes still produce a valid launch.
        let r = NDRange::padded([0, 0], [8, 8]).unwrap();
        assert_eq!(r.global(), [8, 8]);
    }

    #[test]
    fn queue_executes_kernel_bodies() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let queue = Queue::new(dev);
        let buf = Buffer::from_vec(vec![1.0f32; 64]);
        let k = DoubleKernel { buf: buf.clone() };
        let ev = queue
            .submit(&k, NDRange::new([64, 1], [64, 1]).unwrap())
            .unwrap();
        assert!(ev.duration_s() > 0.0);
        assert!(buf.to_vec().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn timing_only_queue_skips_execution() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let queue = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![1.0f32; 64]);
        let k = DoubleKernel { buf: buf.clone() };
        let ev = queue
            .submit(&k, NDRange::new([64, 1], [64, 1]).unwrap())
            .unwrap();
        assert!(ev.duration_s() > 0.0);
        assert!(buf.to_vec().iter().all(|&v| v == 1.0), "body must not run");
    }

    #[test]
    fn in_order_clock_advances_monotonically() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let queue = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![0.0f32; 64]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let e1 = queue.submit(&k, r).unwrap();
        let e2 = queue.submit(&k, r).unwrap();
        assert!(e2.start_s() >= e1.end_s());
        assert!((queue.now_s() - e2.end_s()).abs() < 1e-15);
    }

    #[test]
    fn dependencies_delay_start() {
        let platform = Platform::standard();
        let gpu = platform.device_by_type(DeviceType::Gpu).unwrap();
        let q1 = Queue::timing_only(gpu.clone());
        let q2 = Queue::timing_only(gpu);
        let buf = Buffer::from_vec(vec![0.0f32; 1024 * 1024]);
        let k = DoubleKernel { buf };
        let big = NDRange::new([1024, 1024], [16, 16]).unwrap();
        let dep = q1.submit(&k, big).unwrap();
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let e = q2.submit_after(&k, r, std::slice::from_ref(&dep)).unwrap();
        assert!(e.start_s() >= dep.end_s());
    }

    #[test]
    fn launch_rejected_when_group_too_large() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap(); // max group 256
        let queue = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![0.0f32; 4]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([512, 1], [512, 1]).unwrap();
        match queue.submit(&k, r) {
            Err(SimError::Exhausted(e)) => {
                assert_eq!(e.resource, crate::ResourceKind::WorkGroupSize);
                assert_eq!(e.requested, 512);
                assert_eq!(e.limit, 256);
            }
            other => panic!("expected resource exhaustion, got {other:?}"),
        }
    }

    /// A kernel claiming more LDS per group than any device offers.
    struct LdsHogKernel;

    impl SimKernel for LdsHogKernel {
        fn name(&self) -> String {
            "lds_hog".into()
        }
        fn profile(&self, _device: &DeviceSpec, _range: &NDRange) -> KernelProfile {
            KernelProfile {
                flops_per_item: 1.0,
                bytes_per_item: 4.0,
                cache_reuse: 0.0,
                registers_per_item: 8,
                lds_bytes_per_group: 1 << 30,
                coalescing: 1.0,
                useful_items: 64.0,
                ilp: 1.0,
            }
        }
        fn execute(&self, _range: &NDRange) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn launch_rejected_when_lds_exceeds_device() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap();
        let queue = Queue::timing_only(dev);
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        match queue.submit(&LdsHogKernel, r) {
            Err(SimError::Exhausted(e)) => assert_eq!(e.resource, crate::ResourceKind::Lds),
            other => panic!("expected LDS exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_injects_and_charges_the_clock() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap();
        let plan = Arc::new(FaultPlan::new(3).doom_kernels_matching("double"));
        let queue = Queue::timing_only(dev).with_fault_plan(plan);
        let buf = Buffer::from_vec(vec![0.0f32; 64]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let before = queue.now_s();
        match queue.submit(&k, r) {
            Err(SimError::Fault(f)) => {
                assert_eq!(f.kind, FaultKind::ResourceStarvation);
                assert!(f.consumed_s > 0.0);
                assert!((queue.now_s() - (before + f.consumed_s)).abs() < 1e-15);
            }
            other => panic!("expected injected fault, got {other:?}"),
        }
        // The safe clone shares the clock but not the plan.
        let safe = queue.without_faults();
        assert!(safe.fault_plan().is_none());
        assert!(safe.submit(&k, r).is_ok());
        assert!((safe.now_s() - queue.now_s()).abs() < 1e-15, "shared clock");
    }

    #[test]
    fn inert_fault_plan_is_bit_identical_to_no_plan() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap();
        let plain = Queue::timing_only(dev.clone());
        let guarded = Queue::timing_only(dev).with_fault_plan(Arc::new(FaultPlan::none()));
        let buf = Buffer::from_vec(vec![0.0f32; 64]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        for _ in 0..10 {
            let a = plain.submit(&k, r).unwrap();
            let b = guarded.submit(&k, r).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn clock_handles_share_the_queue_timeline() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap();
        let queue = Queue::timing_only(dev.clone());
        let handle = queue.clock();
        assert_eq!(handle.now_s(), 0.0);
        queue.wait(2.5e-3);
        assert!((handle.now_s() - 2.5e-3).abs() < 1e-15);
        assert!(handle.same_clock(&queue.clock()));
        assert!(handle.same_clock(&queue.without_faults().clock()));
        let other = Queue::timing_only(dev);
        assert!(!handle.same_clock(&other.clock()));
        other.wait(7.0e-3);
        let makespan = SimClock::max_now_s(&[handle, other.clock()]);
        assert!((makespan - 7.0e-3).abs() < 1e-15);
    }

    #[test]
    fn queue_wait_advances_the_clock() {
        let platform = Platform::standard();
        let dev = platform.device_by_name("nano").unwrap();
        let queue = Queue::timing_only(dev);
        let t0 = queue.now_s();
        queue.wait(1.5e-3);
        assert!((queue.now_s() - (t0 + 1.5e-3)).abs() < 1e-15);
        queue.wait(-1.0); // negative waits are ignored
        assert!((queue.now_s() - (t0 + 1.5e-3)).abs() < 1e-15);
    }

    #[test]
    fn failed_event_reports_status() {
        let ev = Event::failed("k".into(), 1.0, 1.5, FaultKind::DeviceLost);
        assert!(ev.is_failed());
        assert_eq!(ev.status(), CompletionStatus::Failed(FaultKind::DeviceLost));
        assert_eq!(ev.status().label(), "failed");
        assert!((ev.duration_s() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn buffers_are_shared_on_clone() {
        let a = Buffer::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        b.write()[0] = 9;
        assert_eq!(a.to_vec(), vec![9, 2, 3]);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn platform_lookup() {
        let p = Platform::standard();
        assert_eq!(p.devices().len(), 4);
        assert!(p.device_by_type(DeviceType::Accelerator).is_ok());
        assert!(p.device_by_name("NANO").is_ok());
        assert!(p.device_by_name("does-not-exist").is_err());
        let only_cpu = Platform::with_devices(vec![DeviceSpec::host_cpu()]);
        assert!(only_cpu.device_by_type(DeviceType::Gpu).is_err());
    }

    #[test]
    fn identical_submissions_have_identical_durations() {
        let platform = Platform::standard();
        let dev = platform.device_by_type(DeviceType::Gpu).unwrap();
        let q = Queue::timing_only(dev);
        let buf = Buffer::from_vec(vec![0.0f32; 64]);
        let k = DoubleKernel { buf };
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        let e1 = q.submit(&k, r).unwrap();
        let e2 = q.submit(&k, r).unwrap();
        assert!((e1.duration_s() - e2.duration_s()).abs() < 1e-18);
    }
}
