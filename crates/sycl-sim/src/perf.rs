//! Analytical GPU performance model primitives.
//!
//! A kernel describes itself to the model with a [`KernelProfile`]
//! (per-work-item resources and traffic); [`estimate_cost`] combines that
//! with a [`DeviceSpec`] and an ND-range into a [`KernelCost`] using the
//! mechanisms that dominate real GPU GEMM performance:
//!
//! 1. **Tile quantisation** — padded vs. useful work items.
//! 2. **Occupancy** — resident waves bounded by register and LDS use;
//!    low occupancy exposes memory latency.
//! 3. **Coalescing** — how many distinct memory transactions a wave
//!    issues per logical load.
//! 4. **Roofline** — execution time is the max of compute time and
//!    memory time, plus launch overhead.
//!
//! The model is *deterministic*: a hashed ±2 % perturbation stands in for
//! measurement noise so that near-ties between configurations resolve the
//! way they do on hardware (consistently, but not by clean arithmetic).

use crate::device::DeviceSpec;
use crate::runtime::NDRange;
use serde::{Deserialize, Serialize};

/// Per-work-item resource and traffic description of a kernel, the
/// kernel-specific input to the analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Floating-point operations one work-item performs.
    pub flops_per_item: f64,
    /// Bytes of DRAM traffic one work-item causes *before* coalescing
    /// and cache-reuse corrections.
    pub bytes_per_item: f64,
    /// Fraction of the raw traffic served from cache/LDS (0..1).
    pub cache_reuse: f64,
    /// Vector registers one work-item needs.
    pub registers_per_item: usize,
    /// Bytes of local memory one work-group needs.
    pub lds_bytes_per_group: usize,
    /// Efficiency of memory coalescing in (0, 1]: 1 = fully coalesced.
    pub coalescing: f64,
    /// Useful work-items (before padding to work-group multiples).
    pub useful_items: f64,
    /// Instruction-level parallelism factor in (0, 1]: how well the
    /// inner loop keeps the SIMDs fed at full occupancy.
    pub ilp: f64,
}

/// The model's verdict for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelCost {
    /// Total estimated execution time in seconds.
    pub total_s: f64,
    /// Compute component (occupancy/utilisation corrected).
    pub compute_s: f64,
    /// Memory component (coalescing/reuse corrected).
    pub memory_s: f64,
    /// Fixed launch overhead.
    pub overhead_s: f64,
    /// Achieved occupancy in (0, 1].
    pub occupancy: f64,
    /// Useful fraction of dispatched work-items in (0, 1].
    pub utilization: f64,
}

impl KernelCost {
    /// FLOP/s achieved for the *useful* work.
    pub fn achieved_flops(&self, useful_flops: f64) -> f64 {
        if self.total_s > 0.0 {
            useful_flops / self.total_s
        } else {
            0.0
        }
    }
}

/// Occupancy (fraction of the maximum resident waves) achievable given
/// per-item register demand and per-group LDS demand.
pub fn occupancy(device: &DeviceSpec, profile: &KernelProfile, range: &NDRange) -> f64 {
    let group_items = range.local_size().max(1);
    let waves_per_group = group_items.div_ceil(device.wave_width).max(1);

    // Register limit: waves per SIMD such that waves * regs <= file size.
    let regs = profile.registers_per_item.max(1);
    let waves_by_regs = (device.vgprs_per_simd / regs)
        .max(1)
        .min(device.max_waves_per_simd);

    // LDS limit: groups per CU bounded by LDS; each group is
    // `waves_per_group` waves spread over the CU's SIMDs.
    let waves_by_lds = if profile.lds_bytes_per_group > 0 {
        let groups_per_cu = (device.lds_bytes_per_cu / profile.lds_bytes_per_group.max(1)).max(1);
        let waves_per_cu = groups_per_cu * waves_per_group;
        (waves_per_cu.div_ceil(device.simds_per_cu))
            .max(1)
            .min(device.max_waves_per_simd)
    } else {
        device.max_waves_per_simd
    };

    let waves = waves_by_regs.min(waves_by_lds).max(1);
    waves as f64 / device.max_waves_per_simd as f64
}

/// Latency-hiding effectiveness: with few resident waves, memory latency
/// leaks into execution time. Saturates towards 1 as occupancy rises.
/// Public so the analytical scorer in `autokernel-analyze` ranks with
/// the same saturation curve the simulator prices with.
pub fn latency_hiding(occ: f64, ilp: f64) -> f64 {
    // Effective parallelism = waves * ILP; the curve is the classic
    // occupancy-throughput saturation 1 - exp(-k x).
    let x = (occ * ilp * 10.0).max(1e-3);
    1.0 - (-x / 2.5).exp()
}

/// Wave-granularity utilisation of the dispatched range: padding work
/// items to work-group multiples wastes lanes.
pub fn utilization(profile: &KernelProfile, range: &NDRange) -> f64 {
    let dispatched = range.global_size() as f64;
    if dispatched <= 0.0 {
        return 0.0;
    }
    (profile.useful_items / dispatched).clamp(0.0, 1.0)
}

/// Parallelism saturation: a dispatch much smaller than the device
/// cannot use all compute units. Public for the analytical scorer.
pub fn device_fill(device: &DeviceSpec, range: &NDRange) -> f64 {
    let lanes_needed = range.global_size() as f64;
    let lanes_available = device.total_lanes() as f64;
    (lanes_needed / lanes_available).clamp(1e-6, 1.0)
}

/// Combine a profile, device and range into a cost estimate.
pub fn estimate_cost(device: &DeviceSpec, profile: &KernelProfile, range: &NDRange) -> KernelCost {
    let occ = occupancy(device, profile, range);
    let util = utilization(profile, range).max(1e-6);
    let fill = device_fill(device, range);
    let hiding = latency_hiding(occ, profile.ilp);

    let dispatched_items = range.global_size() as f64;
    let total_flops = profile.flops_per_item * dispatched_items;

    // Compute: peak scaled by occupancy-dependent latency hiding, device
    // fill and ILP.
    let eff_flops = device.peak_flops * hiding * fill * profile.ilp.clamp(0.05, 1.0);
    let mut compute_s = total_flops / eff_flops.max(1.0);

    // Tail effect: the device executes resident-wave batches; a dispatch
    // needing 1.1× the resident capacity takes two nearly-full passes.
    // This quantisation is a major source of per-shape ranking changes
    // between otherwise similar configurations on real GPUs.
    let wave_capacity = (occ * device.max_resident_waves() as f64).max(1.0);
    let waves_needed = dispatched_items / device.wave_width as f64;
    let exact_passes = waves_needed / wave_capacity;
    if exact_passes >= 1.0 {
        compute_s *= exact_passes.ceil() / exact_passes;
    }

    // Memory: raw traffic reduced by cache reuse; DRAM part divided by
    // coalescing-scaled bandwidth, cached part by cache bandwidth.
    let raw_bytes = profile.bytes_per_item * dispatched_items;
    let reuse = profile.cache_reuse.clamp(0.0, 0.999);
    let dram_bytes = raw_bytes * (1.0 - reuse);
    let cache_bytes = raw_bytes * reuse;
    let coal = profile.coalescing.clamp(0.02, 1.0);
    let memory_s = dram_bytes / (device.mem_bandwidth * coal * fill.max(0.05))
        + cache_bytes / device.cache_bandwidth;

    // Uncovered latency for the first accesses when occupancy is low.
    let latency_s = device.mem_latency * (1.0 - hiding);

    let body = compute_s.max(memory_s) + latency_s;
    let total = body + device.launch_overhead;

    KernelCost {
        total_s: total,
        compute_s,
        memory_s,
        overhead_s: device.launch_overhead,
        occupancy: occ,
        utilization: util,
    }
}

/// Deterministic noise in `[1-amplitude, 1+amplitude]` derived from a
/// seed, standing in for run-to-run measurement variance.
pub fn deterministic_noise(seed: u64, amplitude: f64) -> f64 {
    // SplitMix64 finaliser — well mixed, cheap, dependency-free.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    1.0 + amplitude * (2.0 * unit - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            flops_per_item: 2048.0,
            bytes_per_item: 512.0,
            cache_reuse: 0.5,
            registers_per_item: 32,
            lds_bytes_per_group: 0,
            coalescing: 1.0,
            useful_items: 256.0 * 256.0,
            ilp: 0.8,
        }
    }

    fn range() -> NDRange {
        NDRange::new([256, 256], [16, 16]).unwrap()
    }

    #[test]
    fn occupancy_falls_with_register_pressure() {
        let d = DeviceSpec::amd_r9_nano();
        let r = range();
        let mut light = profile();
        light.registers_per_item = 16;
        let mut heavy = profile();
        heavy.registers_per_item = 128;
        assert!(occupancy(&d, &light, &r) > occupancy(&d, &heavy, &r));
    }

    #[test]
    fn occupancy_bounded_by_lds() {
        let d = DeviceSpec::amd_r9_nano();
        let r = range();
        let mut p = profile();
        p.registers_per_item = 8; // register-unconstrained
        p.lds_bytes_per_group = 64 * 1024; // one group per CU
        let occ = occupancy(&d, &p, &r);
        assert!(occ < 1.0, "full LDS must limit occupancy, got {occ}");
    }

    #[test]
    fn cost_increases_with_lower_coalescing() {
        let d = DeviceSpec::amd_r9_nano();
        let r = range();
        let mut good = profile();
        good.coalescing = 1.0;
        // Make the kernel memory-bound so coalescing matters.
        good.flops_per_item = 16.0;
        let mut bad = good.clone();
        bad.coalescing = 0.25;
        let cg = estimate_cost(&d, &good, &r);
        let cb = estimate_cost(&d, &bad, &r);
        assert!(
            cb.total_s > cg.total_s * 1.5,
            "{} vs {}",
            cb.total_s,
            cg.total_s
        );
    }

    #[test]
    fn roofline_memory_bound_vs_compute_bound() {
        let d = DeviceSpec::amd_r9_nano();
        let r = range();
        let mut mem = profile();
        mem.flops_per_item = 4.0;
        mem.bytes_per_item = 4096.0;
        mem.cache_reuse = 0.0;
        let c = estimate_cost(&d, &mem, &r);
        assert!(c.memory_s > c.compute_s);

        let mut comp = profile();
        comp.flops_per_item = 65536.0;
        comp.bytes_per_item = 8.0;
        let c2 = estimate_cost(&d, &comp, &r);
        assert!(c2.compute_s > c2.memory_s);
    }

    #[test]
    fn small_launches_dominated_by_overhead() {
        let d = DeviceSpec::amd_r9_nano();
        let tiny = NDRange::new([8, 8], [8, 8]).unwrap();
        let mut p = profile();
        p.useful_items = 64.0;
        p.flops_per_item = 8.0;
        p.bytes_per_item = 8.0;
        let c = estimate_cost(&d, &p, &tiny);
        assert!(
            c.overhead_s / c.total_s > 0.5,
            "overhead should dominate tiny launches"
        );
    }

    #[test]
    fn utilization_reflects_padding() {
        let mut p = profile();
        p.useful_items = 100.0;
        let r = NDRange::new([128, 1], [64, 1]).unwrap();
        assert!((utilization(&p, &r) - 100.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for seed in 0..2000u64 {
            let n = deterministic_noise(seed, 0.02);
            assert!((0.98..=1.02).contains(&n), "noise {n} out of band");
            assert_eq!(n, deterministic_noise(seed, 0.02));
        }
        // Different seeds produce different noise almost always.
        assert_ne!(deterministic_noise(1, 0.02), deterministic_noise(2, 0.02));
    }

    #[test]
    fn bigger_device_is_faster_on_big_uniform_work() {
        let nano = DeviceSpec::amd_r9_nano();
        let emb = DeviceSpec::embedded_accelerator();
        let r = NDRange::new([1024, 1024], [16, 16]).unwrap();
        let mut p = profile();
        p.useful_items = (1024 * 1024) as f64;
        let c_nano = estimate_cost(&nano, &p, &r);
        let c_emb = estimate_cost(&emb, &p, &r);
        assert!(c_nano.total_s < c_emb.total_s);
    }
}
