//! # autokernel-sycl-sim
//!
//! A SYCL-like heterogeneous runtime with *simulated* device timing.
//!
//! The paper benchmarks SYCL kernels on an AMD R9 Nano GPU. Rust has no
//! SYCL implementation and this reproduction has no GPU, so this crate
//! substitutes both:
//!
//! - the **runtime** ([`runtime`]) mirrors the SYCL concepts the study
//!   needs — platforms, devices, in-order queues, buffers, ND-range
//!   kernel dispatch and profiled events — executing kernel bodies on the
//!   host (so results are real and checkable), while
//! - the **device model** ([`perf`], [`device`]) supplies the *timing* an
//!   event reports, from an analytical GPU performance model
//!   (occupancy from register pressure, memory coalescing, tile
//!   quantisation, roofline combination) parameterised by a
//!   [`device::DeviceSpec`].
//!
//! Three device specs ship with the crate: an AMD R9 Nano-like GPU (the
//! paper's benchmark platform), a larger desktop GPU, and an embedded
//! accelerator, supporting the paper's "range of heterogeneous devices"
//! claim.

#![warn(missing_docs)]

pub mod device;
pub mod fault;
pub mod feedback;
pub mod perf;
pub mod resources;
pub mod runtime;
pub mod trace;

pub use device::{DeviceSpec, DeviceType};
pub use fault::{FaultError, FaultKind, FaultPlan};
pub use feedback::LaunchMeasurement;
pub use perf::{KernelCost, KernelProfile};
pub use resources::{check_launch, footprint, ResourceFootprint};
pub use runtime::{
    validate_launch, Buffer, CompletionStatus, Context, Event, NDRange, Platform, Queue, SimClock,
    SimKernel,
};
pub use trace::{FallbackLevel, LaunchDecision, TraceRecorder};

use serde::{Deserialize, Serialize};

/// Which device capacity a launch over-subscribed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Work-group size above `DeviceSpec::max_work_group_size`.
    WorkGroupSize,
    /// Work-group size above the device's total SIMD lane count.
    Lanes,
    /// Per-group local memory above `DeviceSpec::lds_bytes_per_cu`.
    Lds,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceKind::WorkGroupSize => write!(f, "work-group size"),
            ResourceKind::Lanes => write!(f, "SIMD lanes"),
            ResourceKind::Lds => write!(f, "local memory bytes"),
        }
    }
}

/// A launch rejected because a configuration demands more of a device
/// resource than the device has — the typed replacement for the old
/// stringly `BadLaunch` work-group check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceExhaustion {
    /// The over-subscribed resource.
    pub resource: ResourceKind,
    /// What the launch asked for.
    pub requested: usize,
    /// What the device offers.
    pub limit: usize,
}

impl std::fmt::Display for ResourceExhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} exceeds device limit {}",
            self.resource, self.requested, self.limit
        )
    }
}

/// Errors produced by the simulated runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No device of the requested type exists on the platform.
    NoSuchDevice(String),
    /// An ND-range was invalid (zero-sized, or global not a multiple of
    /// local).
    BadRange(String),
    /// Kernel rejected the launch configuration (e.g. operand buffers
    /// disagreeing with the problem shape).
    BadLaunch(String),
    /// The launch over-subscribes a device resource (work-group limit,
    /// lane count, local memory) — rejected at submit time.
    Exhausted(ResourceExhaustion),
    /// An injected runtime fault (see [`fault::FaultPlan`]).
    Fault(FaultError),
}

impl SimError {
    /// Whether retrying the *same* launch may succeed: injected
    /// transient faults are retryable, structural rejections
    /// (bad ranges, resource exhaustion) are not.
    pub fn is_transient(&self) -> bool {
        match self {
            SimError::Fault(f) => f.kind.is_transient(),
            _ => false,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchDevice(s) => write!(f, "no such device: {s}"),
            SimError::BadRange(s) => write!(f, "bad nd-range: {s}"),
            SimError::BadLaunch(s) => write!(f, "bad launch: {s}"),
            SimError::Exhausted(e) => write!(f, "resource exhausted: {e}"),
            SimError::Fault(e) => write!(f, "injected fault: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SimError>;
