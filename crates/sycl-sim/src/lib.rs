//! # autokernel-sycl-sim
//!
//! A SYCL-like heterogeneous runtime with *simulated* device timing.
//!
//! The paper benchmarks SYCL kernels on an AMD R9 Nano GPU. Rust has no
//! SYCL implementation and this reproduction has no GPU, so this crate
//! substitutes both:
//!
//! - the **runtime** ([`runtime`]) mirrors the SYCL concepts the study
//!   needs — platforms, devices, in-order queues, buffers, ND-range
//!   kernel dispatch and profiled events — executing kernel bodies on the
//!   host (so results are real and checkable), while
//! - the **device model** ([`perf`], [`device`]) supplies the *timing* an
//!   event reports, from an analytical GPU performance model
//!   (occupancy from register pressure, memory coalescing, tile
//!   quantisation, roofline combination) parameterised by a
//!   [`device::DeviceSpec`].
//!
//! Three device specs ship with the crate: an AMD R9 Nano-like GPU (the
//! paper's benchmark platform), a larger desktop GPU, and an embedded
//! accelerator, supporting the paper's "range of heterogeneous devices"
//! claim.

#![warn(missing_docs)]

pub mod device;
pub mod perf;
pub mod runtime;
pub mod trace;

pub use device::{DeviceSpec, DeviceType};
pub use perf::{KernelCost, KernelProfile};
pub use runtime::{Buffer, Context, Event, NDRange, Platform, Queue, SimKernel};
pub use trace::{LaunchDecision, TraceRecorder};

/// Errors produced by the simulated runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No device of the requested type exists on the platform.
    NoSuchDevice(String),
    /// An ND-range was invalid (zero-sized, or local exceeding device
    /// limits).
    BadRange(String),
    /// Kernel rejected the launch configuration.
    BadLaunch(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchDevice(s) => write!(f, "no such device: {s}"),
            SimError::BadRange(s) => write!(f, "bad nd-range: {s}"),
            SimError::BadLaunch(s) => write!(f, "bad launch: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SimError>;
