//! The device resource model: the single source of truth for whether a
//! launch *fits* a device.
//!
//! Both the runtime ([`crate::runtime::validate_launch`], consulted at
//! submit time) and the offline static analyzer (`autokernel-analyze`)
//! answer the same question — does this (profile, range) combination
//! over-subscribe the device? Before this module existed the answer
//! lived inside the runtime only, so an analyzer would inevitably drift
//! from what the queue actually rejects. Now there is exactly one
//! implementation: [`check_launch`]. The runtime wraps its error in
//! [`crate::SimError::Exhausted`]; the analyzer records it as an
//! `Invalid` verdict. A property test in the workspace root asserts the
//! two agree on every kernel configuration.
//!
//! [`footprint`] additionally summarises the launch's static resource
//! demands (work-group size, LDS bytes, registers, estimated occupancy)
//! for analysis passes that reason about *degradation* and *dominance*
//! rather than hard validity.

use crate::device::DeviceSpec;
use crate::perf::{self, KernelProfile};
use crate::runtime::NDRange;
use crate::{ResourceExhaustion, ResourceKind};
use serde::{Deserialize, Serialize};

/// The static resource demands of one launch, plus the occupancy the
/// device model predicts for it. Everything here is computable without
/// running (or even pricing) the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceFootprint {
    /// Work-items per work-group the launch dispatches.
    pub work_group_size: usize,
    /// Bytes of local memory one work-group stages.
    pub lds_bytes_per_group: usize,
    /// Vector registers one work-item needs.
    pub registers_per_item: usize,
    /// Fraction of the device's resident-wave capacity the launch
    /// achieves (the latency-hiding budget), in (0, 1].
    pub occupancy: f64,
}

/// Compute the static [`ResourceFootprint`] of a launch.
pub fn footprint(
    device: &DeviceSpec,
    profile: &KernelProfile,
    range: &NDRange,
) -> ResourceFootprint {
    ResourceFootprint {
        work_group_size: range.local_size(),
        lds_bytes_per_group: profile.lds_bytes_per_group,
        registers_per_item: profile.registers_per_item,
        occupancy: perf::occupancy(device, profile, range),
    }
}

/// Check a launch's resource demands against a device: work-group size
/// against the device's group limit and total SIMD lane count, and
/// per-group local memory against the LDS capacity of a compute unit.
///
/// This is the shared validity predicate — the runtime calls it at
/// submit time (via [`crate::runtime::validate_launch`]) and the static
/// analyzer calls it offline, so a configuration the analyzer marks
/// `Invalid` is exactly a configuration the queue would reject.
pub fn check_launch(
    device: &DeviceSpec,
    profile: &KernelProfile,
    range: &NDRange,
) -> Result<(), ResourceExhaustion> {
    let local = range.local_size();
    if local > device.max_work_group_size {
        return Err(ResourceExhaustion {
            resource: ResourceKind::WorkGroupSize,
            requested: local,
            limit: device.max_work_group_size,
        });
    }
    if local > device.total_lanes() {
        return Err(ResourceExhaustion {
            resource: ResourceKind::Lanes,
            requested: local,
            limit: device.total_lanes(),
        });
    }
    if profile.lds_bytes_per_group > device.lds_bytes_per_cu {
        return Err(ResourceExhaustion {
            resource: ResourceKind::Lds,
            requested: profile.lds_bytes_per_group,
            limit: device.lds_bytes_per_cu,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(regs: usize, lds: usize) -> KernelProfile {
        KernelProfile {
            flops_per_item: 1.0,
            bytes_per_item: 4.0,
            cache_reuse: 0.0,
            registers_per_item: regs,
            lds_bytes_per_group: lds,
            coalescing: 1.0,
            useful_items: 64.0,
            ilp: 1.0,
        }
    }

    #[test]
    fn accepts_modest_launches() {
        let d = DeviceSpec::amd_r9_nano();
        let r = NDRange::new([64, 1], [64, 1]).unwrap();
        assert!(check_launch(&d, &profile(16, 1024), &r).is_ok());
    }

    #[test]
    fn rejects_each_resource_with_the_right_kind() {
        let d = DeviceSpec::amd_r9_nano(); // group limit 256, 64 KiB LDS
        let big_group = NDRange::new([512, 1], [512, 1]).unwrap();
        let e = check_launch(&d, &profile(16, 0), &big_group).unwrap_err();
        assert_eq!(e.resource, ResourceKind::WorkGroupSize);
        assert_eq!((e.requested, e.limit), (512, 256));

        let ok_group = NDRange::new([64, 1], [64, 1]).unwrap();
        let e = check_launch(&d, &profile(16, 1 << 30), &ok_group).unwrap_err();
        assert_eq!(e.resource, ResourceKind::Lds);

        // A device whose lane count is below its work-group limit
        // exposes the Lanes check.
        let tiny = DeviceSpec::edge_dsp();
        assert!(tiny.total_lanes() < tiny.max_work_group_size);
        let mid = NDRange::new([128, 1], [128, 1]).unwrap();
        let e = check_launch(&tiny, &profile(16, 0), &mid).unwrap_err();
        assert_eq!(e.resource, ResourceKind::Lanes);
    }

    #[test]
    fn footprint_reports_static_demands() {
        let d = DeviceSpec::amd_r9_nano();
        let r = NDRange::new([128, 32], [16, 16]).unwrap();
        let fp = footprint(&d, &profile(32, 4096), &r);
        assert_eq!(fp.work_group_size, 256);
        assert_eq!(fp.lds_bytes_per_group, 4096);
        assert_eq!(fp.registers_per_item, 32);
        assert!(fp.occupancy > 0.0 && fp.occupancy <= 1.0);
        assert_eq!(fp.occupancy, perf::occupancy(&d, &profile(32, 4096), &r));
    }
}
