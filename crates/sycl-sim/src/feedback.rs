//! Timing feedback surface for closed-loop consumers.
//!
//! A SYCL profiling event reports when a launch started and finished.
//! An adaptive selection layer wants exactly that signal, but as a
//! plain value it can ship across threads and store in per-arm
//! statistics without keeping the [`Event`] (and its cost breakdown)
//! alive. [`LaunchMeasurement`] is that value: what ran, how long it
//! occupied the simulated device, and whether it actually completed.
//! The runtime stays ignorant of *why* anyone wants the numbers — the
//! shape and configuration a measurement belongs to are the caller's
//! business (see `core::online`).

use crate::runtime::Event;
use serde::{Deserialize, Serialize};

/// One launch's timing outcome, the unit of reward feedback for
/// closed-loop kernel selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchMeasurement {
    /// Kernel name recorded at submit time.
    pub kernel_name: String,
    /// Simulated submission-to-completion duration in seconds. For a
    /// failed launch this is the span the failure occupied the device.
    pub duration_s: f64,
    /// Completion timestamp on the queue clock; orders measurements
    /// from queues sharing a context.
    pub end_s: f64,
    /// Whether the launch ran to completion.
    pub completed: bool,
}

impl Event {
    /// This event's timing outcome as a detached [`LaunchMeasurement`].
    pub fn measurement(&self) -> LaunchMeasurement {
        LaunchMeasurement {
            kernel_name: self.kernel_name().to_string(),
            duration_s: self.duration_s(),
            end_s: self.end_s(),
            completed: !self.is_failed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    #[test]
    fn measurement_mirrors_event() {
        let ev = Event::failed("gemm_x".into(), 1.0, 1.5, FaultKind::TransientLaunch);
        let m = ev.measurement();
        assert_eq!(m.kernel_name, "gemm_x");
        assert!((m.duration_s - 0.5).abs() < 1e-12);
        assert!((m.end_s - 1.5).abs() < 1e-12);
        assert!(!m.completed);
    }
}
