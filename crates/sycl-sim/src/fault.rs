//! Deterministic fault injection for the simulated runtime.
//!
//! A real SYCL stack serving a fixed set of pre-compiled kernels must
//! survive the runtime pick being *wrong for the device*: launches that
//! fail transiently under driver pressure, devices that drop off the
//! bus, kernels that hang past their deadline, and configurations whose
//! register/LDS appetite starves the scheduler. A [`FaultPlan`] injects
//! exactly those failure modes at [`crate::Queue::submit`] time —
//! deterministically, from a seed, so every test run and trace is
//! reproducible.
//!
//! Determinism model: the plan keeps a submission counter; the fault
//! decision for submission *n* of kernel *k* is a pure hash of
//! `(seed, n, k)`. A single-queue workload therefore replays its exact
//! fault sequence given the same seed; concurrent queues sharing one
//! plan see a deterministic *set* of faults whose assignment to threads
//! follows the interleaving. A plan with every rate at zero injects
//! nothing and leaves the runtime's behaviour bit-identical to running
//! with no plan attached.

use crate::device::DeviceSpec;
use crate::perf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The failure modes the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The launch failed before the kernel ran (driver/dispatch error);
    /// retrying the same launch may succeed.
    TransientLaunch,
    /// The device dropped and reset; in-flight work is lost, but the
    /// device comes back after a reset interval, so a retry may succeed.
    DeviceLost,
    /// The kernel ran past the watchdog and was killed after consuming
    /// its full timeout budget. Retryable, but expensive.
    KernelTimeout,
    /// The configuration's resource appetite (registers/LDS-driven
    /// occupancy below the plan's floor, or an explicitly doomed
    /// kernel) starves the scheduler every time: retrying the same
    /// configuration can never succeed.
    ResourceStarvation,
}

impl FaultKind {
    /// Whether retrying the identical launch can succeed.
    pub fn is_transient(&self) -> bool {
        !matches!(self, FaultKind::ResourceStarvation)
    }

    /// Short stable label used in trace annotations.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TransientLaunch => "transient_launch",
            FaultKind::DeviceLost => "device_lost",
            FaultKind::KernelTimeout => "kernel_timeout",
            FaultKind::ResourceStarvation => "resource_starvation",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// An injected fault, carried inside [`crate::SimError::Fault`].
///
/// Records *when* on the simulated clock the failure happened and how
/// much device time the failed launch consumed, so failed attempts can
/// be rendered into traces next to successful ones.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultError {
    /// The injected failure mode.
    pub kind: FaultKind,
    /// Name of the kernel whose launch failed.
    pub kernel: String,
    /// Global submission index (per plan) at which the fault fired.
    pub submission: u64,
    /// Simulated time the failed launch started.
    pub at_s: f64,
    /// Simulated device time the failure consumed (launch overhead for
    /// rejected launches, the watchdog budget for timeouts).
    pub consumed_s: f64,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} (submission {}, {:.1} us consumed)",
            self.kind,
            self.kernel,
            self.submission,
            self.consumed_s * 1e6
        )
    }
}

/// A deterministic, seedable schedule of injected faults.
///
/// Attach one to a queue with [`crate::Queue::with_fault_plan`]. Rates
/// are per-submission probabilities evaluated in order (transient,
/// device-lost, timeout) from a single uniform draw, so the sum of the
/// rates must stay ≤ 1. Independently of the rates:
///
/// * kernels whose name contains a [`FaultPlan::doom_kernels_matching`]
///   substring always fail with [`FaultKind::ResourceStarvation`] — the
///   hook for "this shipped configuration is permanently broken on this
///   device";
/// * when [`FaultPlan::with_min_occupancy`] is set, any launch whose
///   modelled occupancy (from the `DeviceSpec`'s VGPR/LDS data) falls
///   below the floor fails the same way — resource exhaustion derived
///   from the device model rather than scripted by name.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    device_lost_rate: f64,
    timeout_rate: f64,
    /// Watchdog budget a timed-out kernel burns, in simulated seconds.
    timeout_s: f64,
    /// Device reset interval consumed by a device-lost event.
    reset_s: f64,
    /// Occupancy floor below which launches starve (0 disables).
    min_occupancy: f64,
    /// Kernel-name substrings that always starve.
    doomed: Vec<String>,
    /// Submission index before which the plan injects nothing — a
    /// device that degrades *mid-stream* (thermal event, driver update)
    /// rather than from its first launch.
    onset: u64,
    submissions: AtomicU64,
}

impl FaultPlan {
    /// A plan injecting nothing — attaching it is bit-identical to
    /// running with no plan.
    pub fn none() -> Self {
        FaultPlan::new(0)
    }

    /// An empty plan with the given seed; set rates with the builder
    /// methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            device_lost_rate: 0.0,
            timeout_rate: 0.0,
            timeout_s: 2.0e-3,
            reset_s: 500.0e-6,
            min_occupancy: 0.0,
            doomed: Vec::new(),
            onset: 0,
            submissions: AtomicU64::new(0),
        }
    }

    /// Probability of a transient launch failure per submission.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability of a device-lost event per submission.
    pub fn with_device_lost_rate(mut self, rate: f64) -> Self {
        self.device_lost_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability of a kernel timeout per submission.
    pub fn with_timeout_rate(mut self, rate: f64) -> Self {
        self.timeout_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Simulated watchdog budget a timed-out kernel consumes.
    pub fn with_timeout_duration(mut self, seconds: f64) -> Self {
        self.timeout_s = seconds.max(0.0);
        self
    }

    /// Occupancy floor: launches whose modelled occupancy on the target
    /// device falls below `floor` always fail with
    /// [`FaultKind::ResourceStarvation`].
    pub fn with_min_occupancy(mut self, floor: f64) -> Self {
        self.min_occupancy = floor.clamp(0.0, 1.0);
        self
    }

    /// Permanently fail every kernel whose name contains `substring`.
    pub fn doom_kernels_matching(mut self, substring: impl Into<String>) -> Self {
        self.doomed.push(substring.into());
        self
    }

    /// Hold every injection back until the plan has adjudicated
    /// `submission` launches: the first `submission` submissions behave
    /// as if the plan were inert, then the configured rates, dooms and
    /// occupancy floor apply. Models a device that is healthy when the
    /// stream starts and fault-saturates mid-stream.
    pub fn with_onset(mut self, submission: u64) -> Self {
        self.onset = submission;
        self
    }

    /// Total submissions this plan has adjudicated.
    pub fn submissions(&self) -> u64 {
        self.submissions.load(Ordering::Relaxed)
    }

    /// Whether this plan can ever inject anything.
    pub fn is_inert(&self) -> bool {
        self.transient_rate == 0.0
            && self.device_lost_rate == 0.0
            && self.timeout_rate == 0.0
            && self.min_occupancy == 0.0
            && self.doomed.is_empty()
    }

    /// Adjudicate one submission: `None` lets the launch proceed,
    /// `Some((kind, consumed_s))` fails it after consuming the given
    /// simulated device time. Called by the queue under its own clock.
    pub fn decide(
        &self,
        kernel: &str,
        occupancy: f64,
        device: &DeviceSpec,
    ) -> Option<(FaultKind, f64, u64)> {
        let submission = self.submissions.fetch_add(1, Ordering::Relaxed);
        if submission < self.onset {
            return None;
        }
        if self.doomed.iter().any(|d| kernel.contains(d.as_str())) {
            return Some((
                FaultKind::ResourceStarvation,
                device.launch_overhead,
                submission,
            ));
        }
        if self.min_occupancy > 0.0 && occupancy < self.min_occupancy {
            return Some((
                FaultKind::ResourceStarvation,
                device.launch_overhead,
                submission,
            ));
        }
        let total = self.transient_rate + self.device_lost_rate + self.timeout_rate;
        if total <= 0.0 {
            return None;
        }
        let u = uniform(self.seed, submission, kernel);
        if u < self.transient_rate {
            Some((
                FaultKind::TransientLaunch,
                device.launch_overhead,
                submission,
            ))
        } else if u < self.transient_rate + self.device_lost_rate {
            Some((FaultKind::DeviceLost, self.reset_s, submission))
        } else if u < total {
            Some((FaultKind::KernelTimeout, self.timeout_s, submission))
        } else {
            None
        }
    }

    /// Modelled occupancy helper so callers outside the queue (tests,
    /// examples) can ask "would this launch starve?" without submitting.
    pub fn would_starve(
        &self,
        device: &DeviceSpec,
        profile: &crate::perf::KernelProfile,
        range: &crate::runtime::NDRange,
        kernel: &str,
    ) -> bool {
        if self.doomed.iter().any(|d| kernel.contains(d.as_str())) {
            return true;
        }
        self.min_occupancy > 0.0 && perf::occupancy(device, profile, range) < self.min_occupancy
    }
}

/// Uniform [0, 1) draw from `(seed, submission, kernel)` via the
/// SplitMix64 finaliser — the same mixer the timing noise uses.
fn uniform(seed: u64, submission: u64, kernel: &str) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in kernel.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut z = h
        .wrapping_add(submission.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nano() -> DeviceSpec {
        DeviceSpec::amd_r9_nano()
    }

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for _ in 0..500 {
            assert!(plan.decide("k", 0.5, &nano()).is_none());
        }
        assert_eq!(plan.submissions(), 500);
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let mk = || {
            FaultPlan::new(7)
                .with_transient_rate(0.3)
                .with_timeout_rate(0.1)
        };
        let a: Vec<_> = {
            let p = mk();
            (0..200)
                .map(|_| p.decide("gemm_x", 0.5, &nano()).map(|(k, ..)| k))
                .collect()
        };
        let b: Vec<_> = {
            let p = mk();
            (0..200)
                .map(|_| p.decide("gemm_x", 0.5, &nano()).map(|(k, ..)| k))
                .collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|f| f.is_some()));
        assert!(a.iter().any(|f| f.is_none()));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::new(11).with_transient_rate(0.3);
        let n = 4000;
        let faults = (0..n)
            .filter(|_| plan.decide("gemm_y", 0.5, &nano()).is_some())
            .count();
        let rate = faults as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn doomed_kernels_always_starve() {
        let plan = FaultPlan::new(1).doom_kernels_matching("T8x8A8_WG128x1");
        for _ in 0..50 {
            let f = plan.decide("gemm_T8x8A8_WG128x1_64x64x64", 0.9, &nano());
            assert_eq!(f.map(|(k, ..)| k), Some(FaultKind::ResourceStarvation));
            assert!(plan
                .decide("gemm_T1x1A1_WG8x8_64x64x64", 0.9, &nano())
                .is_none());
        }
    }

    #[test]
    fn onset_delays_injection_until_the_threshold_submission() {
        let plan = FaultPlan::new(5)
            .doom_kernels_matching("gemm")
            .with_onset(10);
        for i in 0..10 {
            assert!(
                plan.decide("gemm_x", 0.5, &nano()).is_none(),
                "submission {i} precedes the onset"
            );
        }
        for _ in 10..20 {
            assert_eq!(
                plan.decide("gemm_x", 0.5, &nano()).map(|(k, ..)| k),
                Some(FaultKind::ResourceStarvation)
            );
        }
    }

    #[test]
    fn occupancy_floor_starves_low_occupancy_launches() {
        let plan = FaultPlan::new(1).with_min_occupancy(0.2);
        assert_eq!(
            plan.decide("k", 0.1, &nano()).map(|(k, ..)| k),
            Some(FaultKind::ResourceStarvation)
        );
        assert!(plan.decide("k", 0.3, &nano()).is_none());
    }

    #[test]
    fn transient_kinds_are_retryable_and_starvation_is_not() {
        assert!(FaultKind::TransientLaunch.is_transient());
        assert!(FaultKind::DeviceLost.is_transient());
        assert!(FaultKind::KernelTimeout.is_transient());
        assert!(!FaultKind::ResourceStarvation.is_transient());
    }

    #[test]
    fn fault_error_formats_with_kind_and_kernel() {
        let e = FaultError {
            kind: FaultKind::KernelTimeout,
            kernel: "gemm_z".into(),
            submission: 3,
            at_s: 1.0,
            consumed_s: 2.0e-3,
        };
        let s = e.to_string();
        assert!(s.contains("kernel_timeout") && s.contains("gemm_z"), "{s}");
    }
}
