//! Concurrency tests: the runtime must behave under parallel submission
//! from many host threads (libraries tune from thread pools).

use autokernel_sycl_sim::perf::KernelProfile;
use autokernel_sycl_sim::{Buffer, DeviceSpec, NDRange, Queue, SimKernel};
use std::sync::Arc;

struct AddOne {
    buf: Buffer<u32>,
}

impl SimKernel for AddOne {
    fn name(&self) -> String {
        "add_one".into()
    }
    fn profile(&self, _d: &DeviceSpec, _r: &NDRange) -> KernelProfile {
        KernelProfile {
            flops_per_item: 1.0,
            bytes_per_item: 8.0,
            cache_reuse: 0.0,
            registers_per_item: 8,
            lds_bytes_per_group: 0,
            coalescing: 1.0,
            useful_items: self.buf.len() as f64,
            ilp: 1.0,
        }
    }
    fn execute(&self, _r: &NDRange) -> autokernel_sycl_sim::Result<()> {
        let mut data = self.buf.write();
        for v in data.iter_mut() {
            *v += 1;
        }
        Ok(())
    }
}

#[test]
fn parallel_submissions_serialise_on_the_in_order_queue() {
    let queue = Arc::new(Queue::new(Arc::new(DeviceSpec::amd_r9_nano())));
    let buf = Buffer::from_vec(vec![0u32; 256]);
    let range = NDRange::new([256, 1], [64, 1]).unwrap();
    let n_threads = 8;
    let per_thread = 25;

    crossbeam::thread::scope(|s| {
        for _ in 0..n_threads {
            let queue = Arc::clone(&queue);
            let buf = buf.clone();
            s.spawn(move |_| {
                let kernel = AddOne { buf };
                for _ in 0..per_thread {
                    queue.submit(&kernel, range).unwrap();
                }
            });
        }
    })
    .unwrap();

    // Every increment must be visible (buffer writes are exclusive).
    let expect = (n_threads * per_thread) as u32;
    assert!(buf.to_vec().iter().all(|&v| v == expect));

    // The simulated clock advanced by exactly the sum of all launches:
    // identical launches have identical durations on this queue.
    let kernel = AddOne {
        buf: Buffer::from_vec(vec![0u32; 256]),
    };
    let probe = Queue::new(Arc::new(DeviceSpec::amd_r9_nano()));
    let one = probe.submit(&kernel, range).unwrap().duration_s();
    let total = queue.now_s();
    let runs = (n_threads * per_thread) as f64;
    assert!(
        (total - one * runs).abs() < 1e-9 * total,
        "clock {total} vs {runs} x {one}"
    );
}

#[test]
fn events_from_parallel_submissions_do_not_overlap() {
    let queue = Arc::new(Queue::timing_only(Arc::new(DeviceSpec::desktop_gpu())));
    let range = NDRange::new([128, 1], [64, 1]).unwrap();

    let events: Vec<_> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let queue = Arc::clone(&queue);
                s.spawn(move |_| {
                    let kernel = AddOne {
                        buf: Buffer::from_vec(vec![0u32; 128]),
                    };
                    (0..20)
                        .map(|_| queue.submit(&kernel, range).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
    .unwrap();

    let mut sorted = events;
    sorted.sort_by(|a, b| a.start_s().partial_cmp(&b.start_s()).unwrap());
    for pair in sorted.windows(2) {
        assert!(
            pair[1].start_s() >= pair[0].end_s() - 1e-15,
            "events overlap: {}..{} then {}..{}",
            pair[0].start_s(),
            pair[0].end_s(),
            pair[1].start_s(),
            pair[1].end_s()
        );
    }
}

#[test]
fn queues_sharing_a_context_serialise_against_each_other() {
    use autokernel_sycl_sim::Context;
    let ctx = Context::new(Arc::new(DeviceSpec::amd_r9_nano()));
    let q1 = ctx.create_timing_queue();
    let q2 = ctx.create_timing_queue();
    let kernel = AddOne {
        buf: Buffer::from_vec(vec![0u32; 128]),
    };
    let range = NDRange::new([128, 1], [64, 1]).unwrap();

    let e1 = q1.submit(&kernel, range).unwrap();
    let e2 = q2.submit(&kernel, range).unwrap();
    // The second launch (on a *different* queue) starts after the first:
    // one device, one timeline.
    assert!(e2.start_s() >= e1.end_s() - 1e-18);
    assert!((ctx.now_s() - e2.end_s()).abs() < 1e-18);
}

#[test]
fn independent_queues_have_independent_timelines() {
    let device = Arc::new(DeviceSpec::amd_r9_nano());
    let q1 = Queue::timing_only(device.clone());
    let q2 = Queue::timing_only(device);
    let kernel = AddOne {
        buf: Buffer::from_vec(vec![0u32; 128]),
    };
    let range = NDRange::new([128, 1], [64, 1]).unwrap();
    let e1 = q1.submit(&kernel, range).unwrap();
    let e2 = q2.submit(&kernel, range).unwrap();
    // Both start at t=0 on their own clocks.
    assert_eq!(e1.start_s(), 0.0);
    assert_eq!(e2.start_s(), 0.0);
}
