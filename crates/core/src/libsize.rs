//! Library-size and build-time modelling — the cost the whole study
//! exists to control: "Supporting many different kernel instantiations
//! in these libraries adds complexity and a cost in terms of library
//! size and build times."
//!
//! A SYCL library carries one intermediate-representation blob per
//! *compile-time* kernel instantiation (tile parameters); work-group
//! shape is a runtime argument and costs nothing. The model below uses
//! representative per-instantiation constants so pruning decisions can
//! be expressed in bytes and seconds, not just counts.

use autokernel_gemm::KernelConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-instantiation cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibrarySizeModel {
    /// Bytes of embedded IR + host stubs per compile-time kernel.
    pub bytes_per_kernel: usize,
    /// Fixed library overhead in bytes (runtime, headers, dispatch).
    pub base_bytes: usize,
    /// Device-compiler seconds per compile-time kernel.
    pub build_seconds_per_kernel: f64,
}

impl Default for LibrarySizeModel {
    /// Representative constants for a SPIR-V-carrying SYCL library:
    /// ~48 KiB of IR + stubs per GEMM instantiation, 640 KiB of fixed
    /// overhead, ~2.5 s of device compilation per instantiation.
    fn default() -> Self {
        LibrarySizeModel {
            bytes_per_kernel: 48 * 1024,
            base_bytes: 640 * 1024,
            build_seconds_per_kernel: 2.5,
        }
    }
}

/// The distinct compile-time tile variants among a set of configuration
/// indices (work-group shape deduplicated away).
pub fn compile_time_variants(configs: &[usize]) -> BTreeSet<(usize, usize, usize)> {
    configs
        .iter()
        .filter_map(|&i| KernelConfig::from_index(i))
        .map(|c| (c.tile_rows, c.tile_cols, c.acc_depth))
        .collect()
}

/// A size/build comparison between shipping everything and shipping a
/// pruned set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeReport {
    /// Compile-time variants in the full space (64).
    pub full_variants: usize,
    /// Compile-time variants actually shipped.
    pub shipped_variants: usize,
    /// Library bytes when shipping everything.
    pub full_bytes: usize,
    /// Library bytes when shipping the pruned set.
    pub shipped_bytes: usize,
    /// Build seconds when shipping everything.
    pub full_build_s: f64,
    /// Build seconds when shipping the pruned set.
    pub shipped_build_s: f64,
}

impl SizeReport {
    /// Size reduction factor of the kernel section (>= 1).
    pub fn kernel_section_shrink(&self) -> f64 {
        let full = self.full_variants.max(1) as f64;
        full / self.shipped_variants.max(1) as f64
    }
}

impl LibrarySizeModel {
    /// Bytes for a library shipping `variants` compile-time kernels.
    pub fn library_bytes(&self, variants: usize) -> usize {
        self.base_bytes + variants * self.bytes_per_kernel
    }

    /// Build seconds for `variants` compile-time kernels.
    pub fn build_seconds(&self, variants: usize) -> f64 {
        variants as f64 * self.build_seconds_per_kernel
    }

    /// Compare the full space against a shipped configuration set.
    pub fn report(&self, shipped_configs: &[usize]) -> SizeReport {
        let full = KernelConfig::compile_time_variants().len();
        let shipped = compile_time_variants(shipped_configs).len();
        SizeReport {
            full_variants: full,
            shipped_variants: shipped,
            full_bytes: self.library_bytes(full),
            shipped_bytes: self.library_bytes(shipped),
            full_build_s: self.build_seconds(full),
            shipped_build_s: self.build_seconds(shipped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_deduplicate_work_groups() {
        // Configs 0..9 are tile (1,1,1) with the ten work-group shapes:
        // one compile-time variant.
        let configs: Vec<usize> = (0..10).collect();
        assert_eq!(compile_time_variants(&configs).len(), 1);
        // Adding config 10 ((1,1,2) x first wg) adds a second variant.
        let mut more = configs;
        more.push(10);
        assert_eq!(compile_time_variants(&more).len(), 2);
    }

    #[test]
    fn report_shrinks_with_pruning() {
        let model = LibrarySizeModel::default();
        let shipped = vec![0usize, 10, 640 - 1];
        let report = model.report(&shipped);
        assert_eq!(report.full_variants, 64);
        assert_eq!(report.shipped_variants, 3);
        assert!(report.shipped_bytes < report.full_bytes);
        assert!(report.shipped_build_s < report.full_build_s);
        assert!((report.kernel_section_shrink() - 64.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_and_build_are_affine_in_variants() {
        let model = LibrarySizeModel::default();
        let d = model.library_bytes(10) - model.library_bytes(9);
        assert_eq!(d, model.bytes_per_kernel);
        assert_eq!(model.library_bytes(0), model.base_bytes);
        assert_eq!(model.build_seconds(0), 0.0);
    }

    #[test]
    fn invalid_indices_are_ignored() {
        assert!(compile_time_variants(&[99999]).is_empty());
    }
}
