//! Runtime kernel selection: classifiers mapping a GEMM shape to one of
//! the shipped configurations (Section IV / Table I of the paper).
//!
//! Feature handling matters here. The paper's released code feeds the
//! raw matrix sizes straight into scikit-learn classifiers with no
//! scaling — harmless for trees and forests (they are invariant to
//! monotone feature transforms) but crippling for the RBF SVM, whose
//! kernel distances explode on 10⁰..10⁶-magnitude features; that is why
//! Table I shows the radial SVM collapsing to ~55 %. [`FeatureSpace`]
//! makes the choice explicit: [`FeatureSpace::RawSizes`] reproduces the
//! paper's setup, [`FeatureSpace::ScaledLog`] is the fixed variant the
//! `ablation_features` bench compares against.

use crate::dataset::PerformanceDataset;
use crate::{CoreError, Result};
use autokernel_analyze::AnalyticalScorer;
use autokernel_gemm::{GemmShape, KernelConfig};
use autokernel_mlkit::preprocess::StandardScaler;
use autokernel_mlkit::tree::{DecisionTreeClassifier, TreeParams};
use autokernel_mlkit::{KNearestNeighbors, Matrix, RandomForestClassifier, Svc, SvmKernel};
use autokernel_sycl_sim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// The six classifiers compared in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// CART decision tree — the paper's deployment recommendation.
    DecisionTree,
    /// Random forest ensemble.
    RandomForest,
    /// 1-nearest-neighbour.
    OneNearestNeighbor,
    /// 3-nearest-neighbours.
    ThreeNearestNeighbors,
    /// Linear-kernel SVM.
    LinearSvm,
    /// RBF-kernel SVM.
    RadialSvm,
}

impl SelectorKind {
    /// All kinds in Table I order.
    pub fn all() -> [SelectorKind; 6] {
        [
            SelectorKind::DecisionTree,
            SelectorKind::RandomForest,
            SelectorKind::OneNearestNeighbor,
            SelectorKind::ThreeNearestNeighbors,
            SelectorKind::LinearSvm,
            SelectorKind::RadialSvm,
        ]
    }

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorKind::DecisionTree => "DecisionTree",
            SelectorKind::RandomForest => "RandomForest",
            SelectorKind::OneNearestNeighbor => "1NearestNeighbor",
            SelectorKind::ThreeNearestNeighbors => "3NearestNeighbors",
            SelectorKind::LinearSvm => "LinearSVM",
            SelectorKind::RadialSvm => "RadialSVM",
        }
    }
}

/// Feature representation given to the classifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSpace {
    /// Raw `(m, k, n)` — the paper's setup (scikit-learn defaults, no
    /// preprocessing). Scale-sensitive classifiers suffer.
    RawSizes,
    /// Standardised `log₂(m, k, n)` — the sensible engineering choice.
    ScaledLog,
}

enum Model {
    Tree(DecisionTreeClassifier),
    Forest(RandomForestClassifier),
    Knn(KNearestNeighbors),
    Svm(Svc),
}

/// A trained runtime selector: shape in, shipped configuration out.
pub struct Selector {
    kind: SelectorKind,
    space: FeatureSpace,
    configs: Vec<usize>,
    scaler: Option<StandardScaler>,
    /// Internal standardisation applied before the model for linear
    /// SVMs only: liblinear-class solvers are robust to feature scale,
    /// and the simplified SMO here needs equivalent conditioning to
    /// converge on raw size features. The RBF kernel does NOT get this
    /// (its scale sensitivity is intrinsic to the kernel and is exactly
    /// what Table I exposes).
    precondition: Option<StandardScaler>,
    model: Model,
}

impl Selector {
    /// Train a paper-faithful selector ([`FeatureSpace::RawSizes`]).
    pub fn train(
        kind: SelectorKind,
        ds: &PerformanceDataset,
        train: &[usize],
        configs: &[usize],
        seed: u64,
    ) -> Result<Selector> {
        Self::train_in_space(kind, ds, train, configs, seed, FeatureSpace::RawSizes)
    }

    /// Train a selector with an explicit feature representation.
    ///
    /// Labels are the best shipped configuration per training shape.
    // lint:allow-fn(no-alloc) training is offline; the decide path never runs it
    pub fn train_in_space(
        kind: SelectorKind,
        ds: &PerformanceDataset,
        train: &[usize],
        configs: &[usize],
        seed: u64,
        space: FeatureSpace,
    ) -> Result<Selector> {
        if configs.is_empty() || train.is_empty() {
            return Err(CoreError::Dataset(
                "empty training set or config set".into(),
            ));
        }
        let labels: Vec<usize> = train
            .iter()
            .map(|&i| {
                ds.best_config_among(i, configs)
                    .map(|(_, cfg)| cfg)
                    .ok_or_else(|| {
                        CoreError::Dataset(format!("no best config for training row {i}"))
                    })
            })
            .collect::<Result<_>>()?;

        let (mut x, scaler) = match space {
            FeatureSpace::RawSizes => (ds.raw_features_of(train), None),
            FeatureSpace::ScaledLog => {
                let mut scaler = StandardScaler::new();
                let x = scaler.fit_transform(&ds.features_of(train))?;
                (x, Some(scaler))
            }
        };

        let precondition = if kind == SelectorKind::LinearSvm {
            let mut pre = StandardScaler::new();
            x = pre.fit_transform(&x)?;
            Some(pre)
        } else {
            None
        };

        let model = match kind {
            SelectorKind::DecisionTree => {
                let mut clf = DecisionTreeClassifier::new(TreeParams {
                    min_samples_leaf: 1,
                    ..TreeParams::default()
                });
                clf.fit(&x, &labels)?;
                Model::Tree(clf)
            }
            SelectorKind::RandomForest => {
                let mut rf = RandomForestClassifier::new(100, seed);
                rf.fit(&x, &labels)?;
                Model::Forest(rf)
            }
            SelectorKind::OneNearestNeighbor => {
                let mut knn = KNearestNeighbors::new(1);
                knn.fit(&x, &labels)?;
                Model::Knn(knn)
            }
            SelectorKind::ThreeNearestNeighbors => {
                let mut knn = KNearestNeighbors::new(3.min(train.len()));
                knn.fit(&x, &labels)?;
                Model::Knn(knn)
            }
            SelectorKind::LinearSvm => {
                let mut svm = Svc::new(SvmKernel::Linear, 10.0, seed).with_max_passes(20);
                svm.fit(&x, &labels)?;
                Model::Svm(svm)
            }
            SelectorKind::RadialSvm => {
                // gamma = 1/n_features, scikit-learn's historical "auto"
                // default (what the paper's era of sklearn used).
                let gamma = 1.0 / x.cols() as f64;
                let mut svm = Svc::new(SvmKernel::Rbf { gamma }, 10.0, seed);
                svm.fit(&x, &labels)?;
                Model::Svm(svm)
            }
        };
        Ok(Selector {
            kind,
            space,
            configs: configs.to_vec(),
            scaler,
            precondition,
            model,
        })
    }

    fn apply_precondition(&self, m: Matrix) -> Result<Matrix> {
        match &self.precondition {
            Some(pre) => Ok(pre.transform(&m)?),
            None => Ok(m),
        }
    }

    // lint:allow-fn(no-alloc) model-run path: executes once per distinct shape
    // (cache misses only), and the Matrix API takes owned rows
    fn featurise_shape(&self, shape: &GemmShape) -> Result<Matrix> {
        let raw = match self.space {
            FeatureSpace::RawSizes => shape.features(),
            FeatureSpace::ScaledLog => shape.log_features(),
        };
        let m = Matrix::from_rows(&[raw.to_vec()])?;
        let m = match &self.scaler {
            Some(s) => s.transform(&m)?,
            None => m,
        };
        self.apply_precondition(m)
    }

    fn featurise_rows(&self, ds: &PerformanceDataset, rows: &[usize]) -> Result<Matrix> {
        let m = match self.space {
            FeatureSpace::RawSizes => ds.raw_features_of(rows),
            FeatureSpace::ScaledLog => ds.features_of(rows),
        };
        let m = match &self.scaler {
            Some(s) => s.transform(&m)?,
            None => m,
        };
        self.apply_precondition(m)
    }

    /// Select a configuration index for a batch of dataset rows.
    pub fn select_rows(&self, ds: &PerformanceDataset, rows: &[usize]) -> Result<Vec<usize>> {
        let x = self.featurise_rows(ds, rows)?;
        self.predict(&x)
    }

    /// Select a configuration for one arbitrary shape.
    pub fn select_shape(&self, shape: &GemmShape) -> Result<usize> {
        let x = self.featurise_shape(shape)?;
        Ok(self.predict(&x)?[0])
    }

    /// [`Selector::select_shape`] in the decide path's native `u16`
    /// currency (the 640-point space fits; an out-of-space model
    /// output is the typed [`crate::CoreError::BadConfigIndex`]).
    pub fn select_shape_u16(&self, shape: &GemmShape) -> Result<u16> {
        let config = self.select_shape(shape)?;
        u16::try_from(config).map_err(|_| crate::CoreError::BadConfigIndex(config))
    }

    /// Select configurations for many arbitrary shapes in parallel.
    ///
    /// Equivalent to mapping [`Selector::select_shape`] over `shapes`
    /// (the models are immutable after training, so per-shape inference
    /// is embarrassingly parallel); output order matches input order.
    pub fn select_batch(&self, shapes: &[GemmShape]) -> Result<Vec<usize>> {
        use rayon::prelude::*;
        shapes.par_iter().map(|s| self.select_shape(s)).collect()
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let preds = match &self.model {
            Model::Tree(m) => m.predict(x)?,
            Model::Forest(m) => m.predict(x)?,
            Model::Knn(m) => m.predict(x)?,
            Model::Svm(m) => m.predict(x)?,
        };
        Ok(preds)
    }

    /// The shipped configuration set this selector chooses from.
    pub fn configs(&self) -> &[usize] {
        &self.configs
    }

    /// The classifier family.
    pub fn kind(&self) -> SelectorKind {
        self.kind
    }

    /// The feature representation this selector was trained in.
    pub fn feature_space(&self) -> FeatureSpace {
        self.space
    }

    /// Borrow the underlying decision tree, when this selector is one
    /// (used by the deployment codegen).
    pub fn as_tree(&self) -> Option<&DecisionTreeClassifier> {
        match &self.model {
            Model::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// The feature scaler, if the space uses one.
    pub fn scaler(&self) -> Option<&StandardScaler> {
        self.scaler.as_ref()
    }
}

/// Zero-benchmark cold-start selector: ranks candidates with the
/// analytical roofline scorer ([`AnalyticalScorer`]) instead of a
/// trained classifier, so a never-profiled device gets sane picks with
/// **zero** benchmark launches and no training data. Drop-in where a
/// trained [`Selector`] (or `CachedSelector`) sits today: it exposes
/// the same `select_shape`/`configs` surface.
///
/// Selection is allocation-free arithmetic over the candidate set —
/// O(candidates) per pick, well under a microsecond for a shipped set
/// of six.
pub struct AnalyticalSelector {
    scorer: AnalyticalScorer,
    configs: Vec<usize>,
}

impl AnalyticalSelector {
    /// Cold-start selector over the **full** 640-config space on
    /// `device`.
    // lint:allow-fn(no-alloc) construction is offline; the decide path never runs it
    pub fn new(device: &DeviceSpec) -> Self {
        let scorer = AnalyticalScorer::new(device);
        let configs: Vec<usize> = (0..scorer.len()).collect();
        AnalyticalSelector { scorer, configs }
    }

    /// Cold-start selector restricted to `candidates` (e.g. the shipped
    /// set of an existing pipeline, for head-to-head comparison with
    /// the learned classifiers). Indices outside the 640-config space
    /// are rejected; an empty candidate set is rejected.
    // lint:allow-fn(no-alloc) construction is offline; the decide path never runs it
    pub fn with_candidates(device: &DeviceSpec, candidates: &[usize]) -> Result<Self> {
        if candidates.is_empty() {
            return Err(CoreError::NoLaunchableConfig);
        }
        for &c in candidates {
            if c >= KernelConfig::count() {
                return Err(CoreError::BadConfigIndex(c));
            }
        }
        Ok(AnalyticalSelector {
            scorer: AnalyticalScorer::new(device),
            configs: candidates.to_vec(),
        })
    }

    /// Select the analytically best launchable candidate for `shape`.
    /// Errors with [`CoreError::NoLaunchableConfig`] when the device
    /// rejects every candidate.
    pub fn select_shape(&self, shape: &GemmShape) -> Result<usize> {
        self.scorer
            .pick_among(shape, &self.configs)
            .ok_or(CoreError::NoLaunchableConfig)
    }

    /// The candidate configuration set this selector chooses from.
    pub fn configs(&self) -> &[usize] {
        &self.configs
    }

    /// The underlying analytical scorer.
    pub fn scorer(&self) -> &AnalyticalScorer {
        &self.scorer
    }

    /// The device this selector models.
    pub fn device(&self) -> &DeviceSpec {
        self.scorer.device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> PerformanceDataset {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
    }

    #[test]
    fn every_kind_trains_and_predicts_within_shipped_set() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = crate::prune::PruneMethod::TopN
            .select(&ds, &train, 5, 0)
            .unwrap();
        for space in [FeatureSpace::RawSizes, FeatureSpace::ScaledLog] {
            for kind in SelectorKind::all() {
                let sel = Selector::train_in_space(kind, &ds, &train, &configs, 1, space).unwrap();
                let preds = sel.select_rows(&ds, &train).unwrap();
                assert_eq!(preds.len(), train.len());
                for p in preds {
                    assert!(
                        configs.contains(&p),
                        "{} predicted unshipped config {p}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn tree_memorises_training_data() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = crate::prune::PruneMethod::TopN
            .select(&ds, &train, 6, 0)
            .unwrap();
        let sel = Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap();
        let preds = sel.select_rows(&ds, &train).unwrap();
        for (&row, &pred) in train.iter().zip(&preds) {
            let best = ds.best_config_among(row, &configs).unwrap().1;
            assert_eq!(pred, best, "tree should fit its own training data");
        }
    }

    #[test]
    fn tree_invariant_to_feature_space() {
        // Monotone transforms never change an axis-aligned tree's training
        // predictions.
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = crate::prune::PruneMethod::TopN
            .select(&ds, &train, 5, 0)
            .unwrap();
        let raw = Selector::train_in_space(
            SelectorKind::DecisionTree,
            &ds,
            &train,
            &configs,
            0,
            FeatureSpace::RawSizes,
        )
        .unwrap();
        let log = Selector::train_in_space(
            SelectorKind::DecisionTree,
            &ds,
            &train,
            &configs,
            0,
            FeatureSpace::ScaledLog,
        )
        .unwrap();
        assert_eq!(
            raw.select_rows(&ds, &train).unwrap(),
            log.select_rows(&ds, &train).unwrap()
        );
    }

    #[test]
    fn select_shape_single_consistent_with_batch() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = crate::prune::PruneMethod::TopN
            .select(&ds, &train, 4, 0)
            .unwrap();
        for space in [FeatureSpace::RawSizes, FeatureSpace::ScaledLog] {
            let sel = Selector::train_in_space(
                SelectorKind::DecisionTree,
                &ds,
                &train,
                &configs,
                0,
                space,
            )
            .unwrap();
            let batch = sel.select_rows(&ds, &[3]).unwrap();
            let single = sel.select_shape(&ds.shapes[3]).unwrap();
            assert_eq!(batch[0], single);
        }
    }

    #[test]
    fn select_batch_matches_sequential_selection() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = crate::prune::PruneMethod::TopN
            .select(&ds, &train, 5, 0)
            .unwrap();
        let sel = Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap();
        let shapes: Vec<GemmShape> = (1..=40).map(|i| GemmShape::new(i * 13, 96, 48)).collect();
        let batch = sel.select_batch(&shapes).unwrap();
        let sequential: Vec<usize> = shapes
            .iter()
            .map(|s| sel.select_shape(s).unwrap())
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn rejects_empty_inputs() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        assert!(Selector::train(SelectorKind::DecisionTree, &ds, &train, &[], 0).is_err());
        assert!(Selector::train(SelectorKind::DecisionTree, &ds, &[], &[1], 0).is_err());
    }

    #[test]
    fn as_tree_only_for_trees() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = crate::prune::PruneMethod::TopN
            .select(&ds, &train, 4, 0)
            .unwrap();
        let tree = Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap();
        assert!(tree.as_tree().is_some());
        let knn =
            Selector::train(SelectorKind::OneNearestNeighbor, &ds, &train, &configs, 0).unwrap();
        assert!(knn.as_tree().is_none());
    }

    #[test]
    fn analytical_selector_picks_within_candidates_with_zero_launches() {
        let device = DeviceSpec::amd_r9_nano();
        let candidates = [0, 17, 300, 512, 639];
        let sel = AnalyticalSelector::with_candidates(&device, &candidates).unwrap();
        for shape in [
            GemmShape::new(64, 64, 64),
            GemmShape::new(12544, 27, 64),
            GemmShape::new(1, 4096, 1000),
        ] {
            let pick = sel.select_shape(&shape).unwrap();
            assert!(candidates.contains(&pick));
        }
        assert_eq!(sel.configs(), &candidates);
    }

    #[test]
    fn analytical_selector_full_space_matches_scorer_top_pick() {
        let device = DeviceSpec::amd_r9_nano();
        let sel = AnalyticalSelector::new(&device);
        let shape = GemmShape::new(784, 1152, 128);
        let pick = sel.select_shape(&shape).unwrap();
        let top = sel.scorer().rank_all(&shape)[0].0;
        assert_eq!(pick, top);
    }

    #[test]
    fn analytical_selector_rejects_bad_inputs() {
        let device = DeviceSpec::amd_r9_nano();
        assert!(matches!(
            AnalyticalSelector::with_candidates(&device, &[]),
            Err(CoreError::NoLaunchableConfig)
        ));
        assert!(matches!(
            AnalyticalSelector::with_candidates(&device, &[9999]),
            Err(CoreError::BadConfigIndex(9999))
        ));
    }

    #[test]
    fn analytical_selector_errors_when_nothing_can_launch() {
        // The edge DSP rejects large work-groups; find some rejected
        // configs and restrict the selector to them.
        let device = DeviceSpec::edge_dsp();
        let probe = AnalyticalScorer::new(&device);
        let rejected: Vec<usize> = (0..probe.len()).filter(|&i| !probe.launchable(i)).collect();
        assert!(!rejected.is_empty());
        let sel = AnalyticalSelector::with_candidates(&device, &rejected[..4]).unwrap();
        assert!(matches!(
            sel.select_shape(&GemmShape::new(256, 256, 256)),
            Err(CoreError::NoLaunchableConfig)
        ));
    }

    #[test]
    fn kind_names_match_table_one() {
        let names: Vec<&str> = SelectorKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "DecisionTree",
                "RandomForest",
                "1NearestNeighbor",
                "3NearestNeighbors",
                "LinearSVM",
                "RadialSVM"
            ]
        );
    }
}
