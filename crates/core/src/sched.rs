//! Multi-device sharded serving: one scheduler, N per-device stacks.
//!
//! A single [`ResilientExecutor`] serves one queue; real deployments
//! run the same model zoo across a heterogeneous fleet. This module
//! adds the front door: a [`ShardedScheduler`] that accepts a stream of
//! GEMM requests and shards selection + launch traffic across any
//! number of [`DeviceShard`]s, each a full `CachedSelector` →
//! `OnlineSelector` → `ResilientExecutor` stack on its own simulated
//! device (built with [`crate::TuningPipeline::device_executor`] /
//! [`crate::TuningPipeline::device_adaptive_executor`]).
//!
//! The scheduler's mechanics, in the order a request experiences them:
//!
//! 1. **Batching** — same-shape requests are coalesced into one batch
//!    (up to [`SchedConfig::batch_window`]). A batch routes once and
//!    decides once: the first launch warms the owning shard's shape
//!    cache, its siblings are O(1) hits, so the selector cost is
//!    amortised over the whole batch.
//! 2. **Routing** — a pluggable [`RoutingPolicy`]: round-robin,
//!    least-loaded by in-flight simulated time (device clock plus the
//!    wave's planned backlog), or perf-aware, which additionally
//!    discounts each device by its shipped-set fitness from the static
//!    [`KernelSpaceAnalyzer`](autokernel_analyze::KernelSpaceAnalyzer)
//!    — a device whose shipped configurations mostly cannot launch is
//!    priced slower and routed less. Peak throughput is only the
//!    cold-start prior: once a device has served work, planning uses
//!    its measured effective rate (completed FLOPs over elapsed device
//!    time), which folds in the kernel inefficiencies and fallback
//!    slowness no static model sees.
//! 3. **Bounded queues + backpressure + stealing** — each device
//!    accepts at most [`SchedConfig::queue_capacity`] batches per wave.
//!    When the policy's choice is full, the batch is *stolen* by the
//!    device with the most free capacity; when every queue is full, the
//!    remainder of the stream waits for the next wave (backpressure).
//! 4. **Failure drain** — a shard turns unhealthy when its fallback
//!    chain is fully quarantined (every ranked config's breaker open),
//!    when it melts down mid-wave ([`SchedConfig::meltdown_threshold`]
//!    consecutive reference-GEMM degradations), or — if
//!    [`SchedConfig::fail_on_drift`] is set — when its online layer's
//!    drift detector trips. Its unexecuted batches are *rebalanced* to
//!    the survivors on the next wave. The last live shard is never
//!    drained, and the resilient executor's terminal reference rung
//!    cannot fail, so the scheduler drops nothing: every request
//!    completes.
//!
//! Determinism: waves are planned on one thread from device clocks
//! that only move between waves, and each device's launch sequence is
//! executed in batch order by a single worker. Routing therefore
//! depends only on the request stream, the seed and the shard
//! configuration — never on how the worker threads interleave — which
//! `tests/sharded_scheduler.rs` pins with a property test comparing
//! parallel and sequential execution of random streams.

pub mod deque;

use crate::online::OnlineSelector;
use crate::resilient::{LaunchReport, ResilientExecutor};
use crate::sched::deque::StealDeque;
use crate::{CoreError, Result};
use autokernel_analyze::SpaceAnalysis;
use autokernel_gemm::GemmShape;
use autokernel_sycl_sim::trace::TraceRecorder;
use autokernel_sycl_sim::{Buffer, Event, LaunchDecision, SimClock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// How the scheduler picks a device for each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Rotate over the live shards in index order (the seed offsets the
    /// starting point). Ignores load and device speed.
    RoundRobin,
    /// Send the batch to the shard with the least in-flight simulated
    /// time: its device clock plus the backlog already planned onto it
    /// this wave, plus the batch's estimated cost at the device's peak
    /// throughput.
    LeastLoaded,
    /// [`RoutingPolicy::LeastLoaded`], with each device's throughput
    /// discounted by its shipped-set fitness ([`DeviceShard::fitness`])
    /// — static analysis steering traffic away from devices that would
    /// serve it on fallback rungs.
    PerfAware,
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Device-picking policy.
    pub policy: RoutingPolicy,
    /// Maximum batches a device accepts per wave (≥ 1). Smaller values
    /// mean earlier stealing and more backpressure waves.
    pub queue_capacity: usize,
    /// Maximum same-shape requests coalesced into one batch (≥ 1).
    pub batch_window: usize,
    /// Seed offsetting the round-robin cursor, so distinct schedulers
    /// spread load differently but each replays deterministically.
    pub seed: u64,
    /// Execute each wave's per-device queues on worker threads. Routing
    /// is identical either way; `false` is for debugging and for the
    /// determinism property test.
    pub parallel: bool,
    /// Consecutive reference-GEMM degradations that mark a device
    /// melted down mid-wave (≥ 1).
    pub meltdown_threshold: u32,
    /// Treat an online layer's drift trip as device failure and drain
    /// the shard. Off by default: drift usually means the bandit is
    /// *re-learning* the device, not that the device is gone.
    pub fail_on_drift: bool,
    /// Execute waves with work stealing: each shard worker drains its
    /// own queue and then steals still-pending batches from busy
    /// siblings through a Chase–Lev deque ([`deque::StealDeque`]),
    /// instead of idling at the wave barrier. Routing, admission and
    /// scheduling telemetry are identical either way — only which
    /// device *executes* a planned batch (and therefore the makespan)
    /// may differ, which `tests/sharded_scheduler.rs` pins with a
    /// property test. Requires `parallel`; off by default so replay
    /// stays strictly deterministic.
    pub stealing: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: RoutingPolicy::LeastLoaded,
            queue_capacity: 4,
            batch_window: 8,
            seed: 0,
            parallel: true,
            meltdown_threshold: 3,
            fail_on_drift: false,
            stealing: false,
        }
    }
}

/// One GEMM serving request: a shape plus its operand buffers
/// (`C = A · B`). Buffers clone shallowly, SYCL-style.
#[derive(Clone)]
pub struct GemmRequest {
    /// The problem shape.
    pub shape: GemmShape,
    /// Left operand, `m × k`.
    pub a: Buffer<f32>,
    /// Right operand, `k × n`.
    pub b: Buffer<f32>,
    /// Output, `m × n`.
    pub c: Buffer<f32>,
    /// Scheduling class (priority tier / tenant class). Requests only
    /// coalesce into a shared batch when shape *and* class agree, so a
    /// low-priority request can never ride a high-priority batch's
    /// admission decision. 0 by default.
    pub class: u16,
}

impl GemmRequest {
    /// A request carrying existing operands (class 0).
    pub fn new(shape: GemmShape, a: Buffer<f32>, b: Buffer<f32>, c: Buffer<f32>) -> Self {
        GemmRequest {
            shape,
            a,
            b,
            c,
            class: 0,
        }
    }

    /// A request with freshly allocated zero operands — the convenient
    /// form for timing-only serving, where kernel bodies never run.
    pub fn zeroed(shape: GemmShape) -> Self {
        GemmRequest {
            shape,
            a: Buffer::new_filled(shape.m * shape.k, 0.0),
            b: Buffer::new_filled(shape.k * shape.n, 0.0),
            c: Buffer::new_filled(shape.m * shape.n, 0.0),
            class: 0,
        }
    }

    /// The same request in a different scheduling class.
    pub fn with_class(mut self, class: u16) -> Self {
        self.class = class;
        self
    }
}

/// One device's serving stack inside the fleet.
pub struct DeviceShard {
    label: String,
    executor: ResilientExecutor,
    online: Option<Arc<OnlineSelector>>,
    /// Shipped-set fitness on this device in `[0, 1]`, consumed by
    /// [`RoutingPolicy::PerfAware`]. Defaults to 1 (no discount).
    fitness: f64,
    clock: SimClock,
    peak_flops: f64,
    launch_overhead_s: f64,
}

impl DeviceShard {
    /// Wrap an executor as a fleet shard. The shard reads its device
    /// model (peak throughput, launch overhead, clock) from the
    /// executor's queue.
    pub fn new(label: impl Into<String>, executor: ResilientExecutor) -> Self {
        let device = executor.queue().device();
        let peak_flops = device.peak_flops.max(1.0);
        let launch_overhead_s = device.launch_overhead.max(0.0);
        let clock = executor.queue().clock();
        let online = executor.online().cloned();
        DeviceShard {
            label: label.into(),
            executor,
            online,
            fitness: 1.0,
            clock,
            peak_flops,
            launch_overhead_s,
        }
    }

    /// Override the shipped-set fitness (clamped to `[0, 1]`).
    pub fn with_fitness(mut self, fitness: f64) -> Self {
        self.fitness = fitness.clamp(0.0, 1.0);
        self
    }

    /// Derive the fitness from a static analysis of this shard's device
    /// and the deployed shipped set — the
    /// [`SpaceAnalysis::shipped_fitness`] score the perf-aware policy
    /// was designed around.
    pub fn with_shipped_analysis(self, analysis: &SpaceAnalysis, shipped: &[usize]) -> Self {
        let fitness = analysis.shipped_fitness(shipped);
        self.with_fitness(fitness)
    }

    /// The shard's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The wrapped resilient executor.
    pub fn executor(&self) -> &ResilientExecutor {
        &self.executor
    }

    /// The shipped-set fitness the perf-aware policy reads.
    pub fn fitness(&self) -> f64 {
        self.fitness
    }

    /// A handle on this device's simulated clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }
}

/// Fleet-level serving counters. Copy-snapshot semantics: read the
/// scheduler's [`ShardedScheduler::telemetry`] after a `serve` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedTelemetry {
    /// Batches assigned to a device by the routing policy.
    pub routed: u64,
    /// Requests coalesced into an already-open batch (the selector
    /// decisions the batching layer saved).
    pub batched: u64,
    /// Batches redirected because the policy's choice had no queue
    /// capacity left this wave.
    pub stolen: u64,
    /// Requests re-routed to surviving devices after their shard was
    /// drained mid-stream.
    pub rebalanced: u64,
    /// Requests completed across the fleet.
    pub served: u64,
    /// Scheduling waves executed.
    pub waves: u64,
}

/// One routing decision, for reporting and determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The batch's shape.
    pub shape: GemmShape,
    /// The batch's scheduling class.
    pub class: u16,
    /// Requests in the batch.
    pub requests: usize,
    /// Index of the shard that received it.
    pub device: usize,
    /// Whether the batch landed somewhere other than the policy's
    /// first choice (a steal).
    pub stolen: bool,
}

/// Per-device outcome of a `serve` call.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// The shard's label.
    pub label: String,
    /// Requests this device completed.
    pub served: u64,
    /// Batches this device executed.
    pub batches: u64,
    /// Launches that degraded all the way to the reference GEMM.
    pub reference_fallbacks: u64,
    /// Whether the shard was still live when the stream drained.
    pub healthy: bool,
    /// Simulated time this device's clock advanced during the call.
    pub busy_s: f64,
}

/// The outcome of serving one request stream.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Requests completed (always the full stream).
    pub served: usize,
    /// Requests lost (zero by construction: the reference rung cannot
    /// fail and drained queues are re-routed, never discarded).
    pub dropped: usize,
    /// Scheduling waves the stream needed.
    pub waves: usize,
    /// Fleet makespan: the largest simulated-time advance any device
    /// clock saw during the call.
    pub makespan_s: f64,
    /// Whether the whole fleet melted down at some point during the
    /// call and traffic was degraded onto a revived shard's
    /// reference-kernel path. The stream still completes (zero drops);
    /// this flag is the typed signal that it did so in degraded mode.
    pub fleet_degraded: bool,
    /// Every routing decision, in planning order.
    pub assignments: Vec<Assignment>,
    /// Per-device outcomes, in shard order.
    pub devices: Vec<DeviceReport>,
}

impl SchedReport {
    /// Served requests per simulated second — the fleet throughput the
    /// acceptance example compares against a single device.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.served as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

/// A same-shape, same-class run of requests, the unit of routing.
#[derive(Debug, Clone)]
struct Batch {
    shape: GemmShape,
    class: u16,
    requests: Vec<usize>,
}

/// What one device worker hands back after a wave.
struct WaveOutcome {
    served: u64,
    batches_done: u64,
    flops_done: f64,
    reference_fallbacks: u64,
    melted: bool,
    /// Batches the worker abandoned after melting down.
    leftovers: Vec<Batch>,
    /// Trace items in launch order: absorbed-failure events, then the
    /// completing event with its decision.
    trace: Vec<(Event, Option<LaunchDecision>)>,
}

impl WaveOutcome {
    fn empty() -> Self {
        WaveOutcome {
            served: 0,
            batches_done: 0,
            flops_done: 0.0,
            reference_fallbacks: 0,
            melted: false,
            leftovers: Vec::new(),
            trace: Vec::new(),
        }
    }
}

struct ShardState {
    shard: DeviceShard,
    alive: bool,
    served: u64,
    batches: u64,
    reference_fallbacks: u64,
    /// Simulated cost planned onto this device in the current wave.
    planned_s: f64,
    /// FLOPs this device has completed under the scheduler, and its
    /// clock reading when it joined: together they give the *measured*
    /// effective throughput the planner prefers over the static peak
    /// once the device has history.
    flops_done: f64,
    clock_origin: f64,
    /// Monotonic stamp of the moment this shard was last condemned
    /// (0 = never): the all-dead revive picks the *most recently*
    /// condemned shard, deterministically.
    condemned_seq: u64,
}

/// The fleet front door: shards a request stream across device stacks.
///
/// See the module docs for the full mechanics. `serve` may be called
/// repeatedly; breaker, bandit, cache and health state persist between
/// calls, exactly like a long-running serving process.
pub struct ShardedScheduler {
    shards: Vec<ShardState>,
    config: SchedConfig,
    telemetry: SchedTelemetry,
    rr_cursor: usize,
    /// Source of `ShardState::condemned_seq` stamps.
    condemn_counter: u64,
}

impl ShardedScheduler {
    /// Build a scheduler over at least one shard.
    pub fn new(shards: Vec<DeviceShard>, config: SchedConfig) -> Result<Self> {
        if shards.is_empty() {
            return Err(CoreError::Dataset(
                "sharded scheduler needs at least one device shard".into(),
            ));
        }
        let rr_cursor = (config.seed % shards.len().max(1) as u64) as usize;
        Ok(ShardedScheduler {
            shards: shards
                .into_iter()
                .map(|shard| {
                    let clock_origin = shard.clock.now_s();
                    ShardState {
                        shard,
                        alive: true,
                        served: 0,
                        batches: 0,
                        reference_fallbacks: 0,
                        planned_s: 0.0,
                        flops_done: 0.0,
                        clock_origin,
                        condemned_seq: 0,
                    }
                })
                .collect(),
            config,
            telemetry: SchedTelemetry::default(),
            rr_cursor,
            condemn_counter: 0,
        })
    }

    /// The configured policy and knobs.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Fleet counters accumulated over every `serve` call so far.
    pub fn telemetry(&self) -> SchedTelemetry {
        self.telemetry
    }

    /// Shard labels in index order.
    pub fn labels(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.shard.label.clone()).collect()
    }

    /// Whether the shard at `index` is still receiving traffic.
    pub fn is_healthy(&self, index: usize) -> bool {
        self.shards.get(index).is_some_and(|s| s.alive)
    }

    /// The shard at `index`, if any.
    pub fn shard(&self, index: usize) -> Option<&DeviceShard> {
        self.shards.get(index).map(|s| &s.shard)
    }

    /// Export every shard's durable state — measured cost model,
    /// health, condemnation stamp, and the nested
    /// online/cache/telemetry blocks — for `core::persist` snapshots.
    pub fn export_state(&self) -> crate::persist::FleetState {
        let shards = self
            .shards
            .iter()
            .map(|state| {
                let serving = state.shard.executor.selector();
                crate::persist::FleetShardState {
                    label: state.shard.label.clone(),
                    device_crc: crate::persist::device_fingerprint(
                        state.shard.executor.queue().device(),
                    ),
                    alive: state.alive,
                    served: state.served,
                    batches: state.batches,
                    reference_fallbacks: state.reference_fallbacks,
                    flops_done: state.flops_done,
                    elapsed_s: (state.shard.clock.now_s() - state.clock_origin).max(0.0),
                    condemned_seq: state.condemned_seq,
                    online: state.shard.online.as_ref().map(|o| o.export_state()),
                    cache: serving.cache().export_state(),
                    telemetry: serving.telemetry().export_state(),
                }
            })
            .collect();
        crate::persist::FleetState {
            condemn_counter: self.condemn_counter,
            shards,
        }
    }

    /// Apply a fleet snapshot to this scheduler. Shards match by label;
    /// every piece validates independently and a failure drops only
    /// that piece, returning its `fleet.<label>.<piece>` name. A
    /// snapshot shard whose device fingerprint differs from the live
    /// shard's is skipped wholesale (its learned state describes other
    /// silicon). Cost-model restore rewinds `clock_origin` so the
    /// measured throughput — completed FLOPs over elapsed device time —
    /// survives the restart instead of resetting to the static peak.
    /// If a restore would leave the whole fleet condemned, the most
    /// recently condemned shard is revived (the same never-drain-all
    /// invariant `serve` maintains) and `fleet.liveness` is reported.
    pub fn restore_state(&mut self, state: &crate::persist::FleetState) -> Vec<String> {
        let mut dropped = Vec::new();
        for saved in &state.shards {
            let Some(live) = self
                .shards
                .iter_mut()
                .find(|s| s.shard.label == saved.label)
            else {
                dropped.push(format!("fleet.{}", saved.label));
                continue;
            };
            let live_crc = crate::persist::device_fingerprint(live.shard.executor.queue().device());
            if live_crc != saved.device_crc {
                dropped.push(format!("fleet.{}.device", saved.label));
                continue;
            }
            if saved.flops_done.is_finite()
                && saved.flops_done >= 0.0
                && saved.elapsed_s.is_finite()
                && saved.elapsed_s >= 0.0
            {
                live.flops_done = saved.flops_done;
                live.clock_origin = live.shard.clock.now_s() - saved.elapsed_s;
            } else {
                dropped.push(format!("fleet.{}.cost-model", saved.label));
            }
            live.alive = saved.alive;
            live.served = saved.served;
            live.batches = saved.batches;
            live.reference_fallbacks = saved.reference_fallbacks;
            live.condemned_seq = saved.condemned_seq;
            match (&live.shard.online, &saved.online) {
                (Some(online), Some(saved_online))
                    if online.restore_state(saved_online).is_err() =>
                {
                    dropped.push(format!("fleet.{}.online", saved.label));
                }
                (Some(_), None) => dropped.push(format!("fleet.{}.online", saved.label)),
                _ => {}
            }
            let serving = live.shard.executor.selector();
            match serving
                .cache()
                .restore_state(&saved.cache, serving.selector().configs())
            {
                Ok(stats) if stats.entries_skipped == 0 && stats.bloom_restored => {}
                _ => dropped.push(format!("fleet.{}.cache", saved.label)),
            }
            if serving.telemetry().restore_state(&saved.telemetry).is_err() {
                dropped.push(format!("fleet.{}.telemetry", saved.label));
            }
        }
        self.condemn_counter = self.condemn_counter.max(state.condemn_counter);
        if self.shards.iter().all(|s| !s.alive) {
            if let Some(revived) = self.shards.iter_mut().max_by_key(|s| s.condemned_seq) {
                revived.alive = true;
            }
            dropped.push("fleet.liveness".to_string());
        }
        dropped
    }

    /// Serve a request stream to completion.
    pub fn serve(&mut self, requests: &[GemmRequest]) -> Result<SchedReport> {
        self.serve_inner(requests, None)
    }

    /// Serve a request stream, rendering every launch (including
    /// absorbed failures) into `trace` with the owning device's label
    /// and a device-tagged [`LaunchDecision`].
    pub fn serve_traced(
        &mut self,
        requests: &[GemmRequest],
        trace: &mut TraceRecorder,
    ) -> Result<SchedReport> {
        self.serve_inner(requests, Some(trace))
    }

    fn serve_inner(
        &mut self,
        requests: &[GemmRequest],
        mut trace: Option<&mut TraceRecorder>,
    ) -> Result<SchedReport> {
        // Per-call baselines: shard counters are cumulative across
        // `serve` calls, but each report covers only its own stream.
        let starts: Vec<(f64, u64, u64, u64)> = self
            .shards
            .iter()
            .map(|s| {
                (
                    s.shard.clock.now_s(),
                    s.served,
                    s.batches,
                    s.reference_fallbacks,
                )
            })
            .collect();
        let mut pending = self.coalesce(requests);
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut waves = 0usize;
        let mut served = 0usize;
        let mut fleet_degraded = false;

        while !pending.is_empty() {
            waves += 1;
            self.telemetry.waves += 1;

            // Defensive anti-spin guard: the revive invariant below
            // keeps at least one shard alive across waves, so a fully
            // dead fleet here is a logic error — surface it typed
            // instead of looping over empty waves forever.
            if self.shards.iter().all(|s| !s.alive) {
                return Err(CoreError::FleetMeltdown {
                    degraded: pending.iter().map(|b| b.requests.len()).sum(),
                });
            }

            // Plan phase (single-threaded): route batches onto bounded
            // per-device queues. Device clocks are quiescent here, so
            // the plan is a pure function of stream, seed and state.
            let mut wave_queues: Vec<Vec<Batch>> = self.shards.iter().map(|_| Vec::new()).collect();
            for state in &mut self.shards {
                state.planned_s = 0.0;
            }
            while let Some(batch) = pending.pop_front() {
                let Some((device, stolen)) = self.route(&batch, &wave_queues) else {
                    // Every live queue is full: backpressure. The rest
                    // of the stream waits for the next wave.
                    pending.push_front(batch);
                    break;
                };
                let cost = self.planned_cost(device, &batch);
                if let Some(state) = self.shards.get_mut(device) {
                    state.planned_s += cost;
                }
                assignments.push(Assignment {
                    shape: batch.shape,
                    class: batch.class,
                    requests: batch.requests.len(),
                    device,
                    stolen,
                });
                self.telemetry.routed += 1;
                if stolen {
                    self.telemetry.stolen += 1;
                }
                if let Some(queue) = wave_queues.get_mut(device) {
                    queue.push(batch);
                }
            }

            // Execute phase: one worker per device with work, each
            // draining its own queue in order.
            let outcomes = self.execute_wave(requests, &wave_queues)?;

            // Merge phase (single-threaded, shard order): counters,
            // traces, health transitions, rebalancing.
            let mut rebalanced: Vec<Batch> = Vec::new();
            for (index, (state, outcome)) in self.shards.iter_mut().zip(outcomes).enumerate() {
                state.served += outcome.served;
                state.batches += outcome.batches_done;
                state.flops_done += outcome.flops_done;
                state.reference_fallbacks += outcome.reference_fallbacks;
                served += outcome.served as usize;
                self.telemetry.served += outcome.served;
                if let Some(trace) = trace.as_deref_mut() {
                    for (event, decision) in outcome.trace {
                        match decision {
                            Some(d) => trace.record_with_decision(
                                state.shard.label.as_str(),
                                event,
                                d.with_device(index.min(u16::MAX as usize) as u16),
                            ),
                            None => trace.record(state.shard.label.as_str(), event),
                        }
                    }
                }
                if outcome.melted {
                    state.alive = false;
                    self.condemn_counter += 1;
                    state.condemned_seq = self.condemn_counter;
                }
                if !outcome.leftovers.is_empty() {
                    let moved: u64 = outcome
                        .leftovers
                        .iter()
                        .map(|b| b.requests.len() as u64)
                        .sum();
                    self.telemetry.rebalanced += moved;
                    rebalanced.extend(outcome.leftovers);
                }
            }

            // Post-wave health: a shard whose entire fallback chain is
            // quarantined (or whose drift detector tripped, when that
            // is configured as fatal) stops receiving traffic.
            for state in &mut self.shards {
                if !state.alive {
                    continue;
                }
                let ranking = state.shard.executor.ranking();
                if !ranking.is_empty() && state.shard.executor.quarantined().len() >= ranking.len()
                {
                    state.alive = false;
                }
                if self.config.fail_on_drift
                    && state
                        .shard
                        .online
                        .as_ref()
                        .is_some_and(|online| online.is_adaptive())
                {
                    state.alive = false;
                }
                if !state.alive {
                    self.condemn_counter += 1;
                    state.condemned_seq = self.condemn_counter;
                }
            }
            // Never drain the whole fleet: if nobody survived, the most
            // recently condemned shard (highest condemnation stamp —
            // deterministic, since condemnations happen on the
            // single-threaded merge path) is revived and the stream
            // degrades onto its reference-kernel rung, which cannot
            // fail. The report carries `fleet_degraded` as the typed
            // signal.
            if self.shards.iter().all(|s| !s.alive) {
                fleet_degraded = true;
                if let Some(state) = self.shards.iter_mut().max_by_key(|s| s.condemned_seq) {
                    state.alive = true;
                }
            }

            // Re-routed batches go to the head of the stream so drained
            // work is recovered before new work is admitted.
            for batch in rebalanced.into_iter().rev() {
                pending.push_front(batch);
            }
        }

        let devices = self
            .shards
            .iter()
            .zip(&starts)
            .map(
                |(state, &(start_s, served0, batches0, refs0))| DeviceReport {
                    label: state.shard.label.clone(),
                    served: state.served - served0,
                    batches: state.batches - batches0,
                    reference_fallbacks: state.reference_fallbacks - refs0,
                    healthy: state.alive,
                    busy_s: (state.shard.clock.now_s() - start_s).max(0.0),
                },
            )
            .collect::<Vec<_>>();
        let makespan_s = devices.iter().map(|d| d.busy_s).fold(0.0f64, f64::max);
        Ok(SchedReport {
            served,
            dropped: requests.len().saturating_sub(served),
            waves,
            makespan_s,
            fleet_degraded,
            assignments,
            devices,
        })
    }

    /// Coalesce the stream into same-shape, same-class batches,
    /// preserving first-arrival order and capping each batch at
    /// `batch_window`. Class is part of the key on purpose: a batch
    /// routes and is admitted as a unit, and a low-priority request
    /// must not inherit the admission a high-priority sibling earned.
    fn coalesce(&mut self, requests: &[GemmRequest]) -> VecDeque<Batch> {
        let window = self.config.batch_window.max(1);
        let mut order: Vec<Batch> = Vec::new();
        let mut open: HashMap<(GemmShape, u16), usize> = HashMap::new();
        for (index, request) in requests.iter().enumerate() {
            let key = (request.shape, request.class);
            let slot = open.get(&key).copied();
            match slot.and_then(|s| order.get_mut(s)) {
                Some(batch) if batch.requests.len() < window => {
                    batch.requests.push(index);
                    self.telemetry.batched += 1;
                }
                _ => {
                    open.insert(key, order.len());
                    order.push(Batch {
                        shape: request.shape,
                        class: request.class,
                        requests: vec![index],
                    });
                }
            }
        }
        order.into()
    }

    /// Pick a device for `batch`: the policy's choice if it has queue
    /// capacity, else a steal to the fullest-capacity survivor, else
    /// `None` (every live queue is full).
    fn route(&mut self, batch: &Batch, wave_queues: &[Vec<Batch>]) -> Option<(usize, bool)> {
        let capacity = self.config.queue_capacity.max(1);
        let alive: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i)
            .collect();
        if alive.is_empty() {
            return None;
        }
        let queued = |i: usize| wave_queues.get(i).map(Vec::len).unwrap_or(capacity);
        let preferred = match self.config.policy {
            RoutingPolicy::RoundRobin => {
                let pick = alive
                    .get(self.rr_cursor % alive.len())
                    .copied()
                    .unwrap_or(0);
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                pick
            }
            RoutingPolicy::LeastLoaded | RoutingPolicy::PerfAware => alive
                .iter()
                .copied()
                .map(|i| (i, self.load_after(i, batch)))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        if queued(preferred) < capacity {
            return Some((preferred, false));
        }
        // Steal: among the live devices with queue capacity left, the
        // one with the least projected load — the same metric the
        // least-loaded policy uses, so stolen work still lands where it
        // finishes soonest (ties to the lowest index: deterministic).
        alive
            .iter()
            .copied()
            .filter(|&i| queued(i) < capacity)
            .map(|i| (i, self.load_after(i, batch)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| (i, true))
    }

    /// Projected in-flight simulated time of shard `i` if it took
    /// `batch`: device clock + backlog planned this wave + the batch's
    /// estimated cost.
    fn load_after(&self, i: usize, batch: &Batch) -> f64 {
        match self.shards.get(i) {
            Some(state) => {
                state.shard.clock.now_s() + state.planned_s + self.estimate(state, batch)
            }
            None => f64::INFINITY,
        }
    }

    fn planned_cost(&self, i: usize, batch: &Batch) -> f64 {
        self.shards
            .get(i)
            .map(|state| self.estimate(state, batch))
            .unwrap_or(0.0)
    }

    /// Cost model for planning. Cold, it is static: FLOPs over the
    /// device's peak throughput (perf-aware: discounted by shipped-set
    /// fitness), plus per-launch overhead. Once the device has served
    /// work under this scheduler, the measured effective throughput —
    /// completed FLOPs over elapsed device time — replaces the peak:
    /// real devices achieve a workload-dependent fraction of peak, and
    /// the measured rate folds in exactly the kernel inefficiencies and
    /// fallback slowness the static model cannot see. Deliberately
    /// cruder than the simulator — it must be computable without
    /// touching the device.
    fn estimate(&self, state: &ShardState, batch: &Batch) -> f64 {
        let n = batch.requests.len() as f64;
        let elapsed = state.shard.clock.now_s() - state.clock_origin;
        let rate = if state.flops_done > 0.0 && elapsed > 0.0 {
            state.flops_done / elapsed
        } else {
            match self.config.policy {
                RoutingPolicy::PerfAware => state.shard.peak_flops * state.shard.fitness.max(0.05),
                _ => state.shard.peak_flops,
            }
        };
        n * (batch.shape.flops() / rate.max(1.0) + state.shard.launch_overhead_s)
    }

    /// Run one wave's per-device queues, in parallel or sequentially —
    /// the outcomes are identical because every cross-device
    /// interaction happens at the wave boundary.
    fn execute_wave(
        &self,
        requests: &[GemmRequest],
        wave_queues: &[Vec<Batch>],
    ) -> Result<Vec<WaveOutcome>> {
        let meltdown = self.config.meltdown_threshold.max(1);
        let collect_trace = true;
        if self.config.stealing && self.config.parallel {
            return self.execute_wave_stealing(requests, wave_queues, meltdown, collect_trace);
        }
        if self.config.parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(wave_queues)
                    .map(|(state, batches)| {
                        scope.spawn(move || {
                            run_worker(&state.shard, batches, requests, meltdown, collect_trace)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| {
                        handle.join().map_err(|_| {
                            CoreError::Dataset("scheduler worker thread died".into())
                        })?
                    })
                    .collect()
            })
        } else {
            self.shards
                .iter()
                .zip(wave_queues)
                .map(|(state, batches)| {
                    run_worker(&state.shard, batches, requests, meltdown, collect_trace)
                })
                .collect()
        }
    }

    /// Run one wave with work stealing: the wave's batches live in a
    /// flat arena, each shard gets a [`StealDeque`] of its planned
    /// arena indices (pushed in reverse, so the owner's LIFO pop drains
    /// its queue in planning order while thieves take its tail), and a
    /// worker that empties its own deque steals from its siblings in a
    /// deterministic victim order instead of idling at the barrier.
    /// Stolen batches execute on the *thief's* device stack and are
    /// attributed to it. A worker stops at meltdown; whatever nobody
    /// ended up executing is drained single-threaded after the scope
    /// and re-routed as leftovers — the same zero-drop invariant as the
    /// deterministic path.
    fn execute_wave_stealing(
        &self,
        requests: &[GemmRequest],
        wave_queues: &[Vec<Batch>],
        meltdown: u32,
        collect_trace: bool,
    ) -> Result<Vec<WaveOutcome>> {
        let arena: Vec<&Batch> = wave_queues.iter().flatten().collect();
        let mut next = 0usize;
        let deques: Vec<StealDeque> = wave_queues
            .iter()
            .map(|queue| {
                let deque = StealDeque::with_capacity(queue.len().max(1));
                let start = next;
                next += queue.len();
                for index in (start..next).rev() {
                    // Sized to the queue: a failed push is impossible,
                    // and ignoring it would surface as a leftover in
                    // the post-scope drain, not a lost request.
                    let _ = deque.push(index as u64);
                }
                deque
            })
            .collect();
        let shard_count = self.shards.len();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(index, state)| {
                    let deques = &deques;
                    let arena = &arena;
                    scope.spawn(move || -> Result<WaveOutcome> {
                        let mut outcome = WaveOutcome::empty();
                        let mut consecutive_reference = 0u32;
                        while !outcome.melted {
                            let item = deques.get(index).and_then(StealDeque::pop).or_else(|| {
                                (1..shard_count).find_map(|offset| {
                                    deques
                                        .get((index + offset) % shard_count)
                                        .and_then(StealDeque::steal)
                                })
                            });
                            let Some(item) = item else { break };
                            let Some(batch) = arena.get(item as usize) else {
                                break;
                            };
                            run_batch(
                                &state.shard,
                                batch,
                                requests,
                                meltdown,
                                collect_trace,
                                &mut consecutive_reference,
                                &mut outcome,
                            )?;
                        }
                        Ok(outcome)
                    })
                })
                .collect();
            let mut outcomes = handles
                .into_iter()
                .map(|handle| {
                    handle
                        .join()
                        .map_err(|_| CoreError::Dataset("scheduler worker thread died".into()))?
                })
                .collect::<Result<Vec<WaveOutcome>>>()?;
            // Anything still queued here had every eligible executor
            // melt down mid-wave: hand it back for re-routing.
            for (deque, outcome) in deques.iter().zip(&mut outcomes) {
                while let Some(item) = deque.pop() {
                    if let Some(batch) = arena.get(item as usize) {
                        outcome.leftovers.push((*batch).clone());
                    }
                }
            }
            Ok(outcomes)
        })
    }
}

/// Drain one device's wave queue. Single-threaded per device: the
/// shard's submission order (and therefore its simulated timeline and
/// fault sequence) is a pure function of the batches it was handed.
fn run_worker(
    shard: &DeviceShard,
    batches: &[Batch],
    requests: &[GemmRequest],
    meltdown_threshold: u32,
    collect_trace: bool,
) -> Result<WaveOutcome> {
    let mut outcome = WaveOutcome::empty();
    let mut consecutive_reference = 0u32;
    for (position, batch) in batches.iter().enumerate() {
        if outcome.melted {
            outcome
                .leftovers
                .extend(batches.iter().skip(position).cloned());
            break;
        }
        run_batch(
            shard,
            batch,
            requests,
            meltdown_threshold,
            collect_trace,
            &mut consecutive_reference,
            &mut outcome,
        )?;
    }
    Ok(outcome)
}

/// Execute one batch on `shard`, accumulating into `outcome`. On
/// meltdown the batch's unserved tail is pushed onto
/// `outcome.leftovers` and `outcome.melted` is set — the caller stops
/// launching on this device *now*, not at the next batch boundary.
fn run_batch(
    shard: &DeviceShard,
    batch: &Batch,
    requests: &[GemmRequest],
    meltdown_threshold: u32,
    collect_trace: bool,
    consecutive_reference: &mut u32,
    outcome: &mut WaveOutcome,
) -> Result<()> {
    for (offset, &request_index) in batch.requests.iter().enumerate() {
        let request = requests.get(request_index).ok_or_else(|| {
            CoreError::Dataset(format!("request index {request_index} out of range"))
        })?;
        let report = shard
            .executor
            .launch(request.shape, &request.a, &request.b, &request.c)?;
        outcome.served += 1;
        outcome.flops_done += request.shape.flops();
        if is_reference(&report) {
            outcome.reference_fallbacks += 1;
            *consecutive_reference += 1;
        } else {
            *consecutive_reference = 0;
        }
        if collect_trace {
            for failure in &report.failures {
                if let Some(event) = &failure.event {
                    outcome.trace.push((event.clone(), None));
                }
            }
            outcome
                .trace
                .push((report.event.clone(), Some(report.decision)));
        }
        if *consecutive_reference >= meltdown_threshold {
            outcome.melted = true;
            let remaining: Vec<usize> = batch.requests.iter().skip(offset + 1).copied().collect();
            if !remaining.is_empty() {
                outcome.leftovers.push(Batch {
                    shape: batch.shape,
                    class: batch.class,
                    requests: remaining,
                });
            }
            return Ok(());
        }
    }
    outcome.batches_done += 1;
    Ok(())
}

fn is_reference(report: &LaunchReport) -> bool {
    matches!(
        report.decision.fallback,
        autokernel_sycl_sim::FallbackLevel::Reference
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, TuningPipeline};
    use crate::resilient::ResilientPolicy;
    use autokernel_sycl_sim::{DeviceSpec, FaultPlan, Queue};
    use std::sync::OnceLock;

    fn shapes() -> Vec<(GemmShape, String)> {
        [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
            (25088, 576, 128),
            (8, 25088, 4096),
            (128, 128, 1000),
            (3136, 576, 192),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect()
    }

    fn pipeline() -> &'static TuningPipeline {
        static PIPELINE: OnceLock<TuningPipeline> = OnceLock::new();
        PIPELINE.get_or_init(|| {
            TuningPipeline::run(
                &DeviceSpec::amd_r9_nano(),
                &shapes(),
                PipelineConfig::default(),
            )
            .expect("pipeline trains")
        })
    }

    fn shard_on(device: DeviceSpec, label: &str) -> DeviceShard {
        let queue = Queue::timing_only(Arc::new(device));
        let executor = pipeline()
            .device_executor(queue, ResilientPolicy::default())
            .expect("executor builds");
        DeviceShard::new(label, executor)
    }

    fn stream(n: usize) -> Vec<GemmRequest> {
        let pool: Vec<GemmShape> = shapes().into_iter().map(|(s, _)| s).collect();
        (0..n)
            .map(|i| GemmRequest::zeroed(pool[i % pool.len()]))
            .collect()
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(ShardedScheduler::new(Vec::new(), SchedConfig::default()).is_err());
    }

    #[test]
    fn round_robin_spreads_batches_over_both_devices() {
        let mut sched = ShardedScheduler::new(
            vec![
                shard_on(DeviceSpec::amd_r9_nano(), "nano-0"),
                shard_on(DeviceSpec::amd_r9_nano(), "nano-1"),
            ],
            SchedConfig {
                policy: RoutingPolicy::RoundRobin,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let report = sched.serve(&stream(8)).unwrap();
        assert_eq!(report.served, 8);
        assert_eq!(report.dropped, 0);
        let mut by_device = [0usize; 2];
        for a in &report.assignments {
            by_device[a.device] += a.requests;
        }
        assert_eq!(by_device, [4, 4]);
    }

    #[test]
    fn same_shape_requests_coalesce_into_one_batch() {
        let mut sched = ShardedScheduler::new(
            vec![shard_on(DeviceSpec::amd_r9_nano(), "nano")],
            SchedConfig {
                batch_window: 8,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let shape = GemmShape::new(256, 256, 256);
        let requests: Vec<GemmRequest> = (0..6).map(|_| GemmRequest::zeroed(shape)).collect();
        let report = sched.serve(&requests).unwrap();
        assert_eq!(report.served, 6);
        assert_eq!(report.assignments.len(), 1, "one batch, one decision");
        assert_eq!(sched.telemetry().batched, 5);
        // The batch warmed the shard's cache once; the siblings hit.
        let telemetry = sched.shard(0).unwrap().executor().selector().telemetry();
        assert_eq!(telemetry.misses(), 1);
        assert_eq!(telemetry.hits(), 5);
    }

    #[test]
    fn batch_window_caps_coalescing() {
        let mut sched = ShardedScheduler::new(
            vec![shard_on(DeviceSpec::amd_r9_nano(), "nano")],
            SchedConfig {
                batch_window: 2,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let shape = GemmShape::new(128, 128, 128);
        let requests: Vec<GemmRequest> = (0..5).map(|_| GemmRequest::zeroed(shape)).collect();
        let report = sched.serve(&requests).unwrap();
        assert_eq!(report.assignments.len(), 3, "ceil(5 / 2) batches");
        assert_eq!(sched.telemetry().batched, 2);
    }

    #[test]
    fn different_classes_never_share_a_batch() {
        let mut sched = ShardedScheduler::new(
            vec![shard_on(DeviceSpec::amd_r9_nano(), "nano")],
            SchedConfig {
                batch_window: 8,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let shape = GemmShape::new(256, 256, 256);
        // Interleaved priority classes on one shape: coalescing must
        // split them per class, not pool them under the shape alone.
        let requests: Vec<GemmRequest> = (0..6)
            .map(|i| GemmRequest::zeroed(shape).with_class((i % 2) as u16))
            .collect();
        let report = sched.serve(&requests).unwrap();
        assert_eq!(report.served, 6);
        assert_eq!(
            report.assignments.len(),
            2,
            "one batch per (shape, class), got {:?}",
            report.assignments
        );
        assert!(report
            .assignments
            .iter()
            .any(|a| a.class == 0 && a.requests == 3));
        assert!(report
            .assignments
            .iter()
            .any(|a| a.class == 1 && a.requests == 3));
    }

    #[test]
    fn full_queues_steal_then_backpressure() {
        // Capacity 1 per wave, least-loaded: the first batch fills the
        // fast device, the second steals to the slower one, the third
        // waits for the next wave.
        let mut sched = ShardedScheduler::new(
            vec![
                shard_on(DeviceSpec::amd_r9_nano(), "nano"),
                shard_on(DeviceSpec::edge_dsp(), "edge"),
            ],
            SchedConfig {
                policy: RoutingPolicy::LeastLoaded,
                queue_capacity: 1,
                batch_window: 1,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let shape = GemmShape::new(64, 64, 64);
        let requests: Vec<GemmRequest> = (0..6).map(|_| GemmRequest::zeroed(shape)).collect();
        let report = sched.serve(&requests).unwrap();
        assert_eq!(report.served, 6);
        assert!(report.waves >= 3, "capacity 1 x 2 devices forces waves");
        assert!(
            sched.telemetry().stolen >= 1,
            "the slow device got stolen work"
        );
    }

    #[test]
    fn perf_aware_discounts_unfit_devices() {
        // Same silicon, but one shard is declared unfit: perf-aware
        // routing must starve it.
        let fit = shard_on(DeviceSpec::amd_r9_nano(), "fit").with_fitness(1.0);
        let unfit = shard_on(DeviceSpec::amd_r9_nano(), "unfit").with_fitness(0.05);
        let mut sched = ShardedScheduler::new(
            vec![fit, unfit],
            SchedConfig {
                policy: RoutingPolicy::PerfAware,
                queue_capacity: 64,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let report = sched.serve(&stream(32)).unwrap();
        let fit_requests: usize = report
            .assignments
            .iter()
            .filter(|a| a.device == 0)
            .map(|a| a.requests)
            .sum();
        assert!(
            fit_requests > 32 / 2,
            "fit device should take most of the stream, got {fit_requests}/32"
        );
    }

    #[test]
    fn fitness_comes_from_static_analysis() {
        use autokernel_analyze::KernelSpaceAnalyzer;
        let analysis = KernelSpaceAnalyzer::new(DeviceSpec::edge_dsp())
            .analyze()
            .unwrap();
        let shard = shard_on(DeviceSpec::edge_dsp(), "edge")
            .with_shipped_analysis(&analysis, pipeline().shipped_configs());
        assert!(
            shard.fitness() < 1.0,
            "edge DSP rejects part of the nano-trained shipped set"
        );
    }

    #[test]
    fn doomed_device_drains_to_survivor_with_zero_drops() {
        let doomed_queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()))
            .with_fault_plan(Arc::new(FaultPlan::new(3).doom_kernels_matching("gemm_T")));
        let doomed_exec = pipeline()
            .device_executor(doomed_queue, ResilientPolicy::default())
            .unwrap();
        let mut sched = ShardedScheduler::new(
            vec![
                DeviceShard::new("doomed", doomed_exec),
                shard_on(DeviceSpec::amd_r9_nano(), "healthy"),
            ],
            SchedConfig {
                policy: RoutingPolicy::RoundRobin,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let report = sched.serve(&stream(24)).unwrap();
        assert_eq!(report.served, 24);
        assert_eq!(report.dropped, 0);
        assert!(!sched.is_healthy(0), "the doomed shard must be drained");
        assert!(sched.is_healthy(1));
        let healthy = &report.devices[1];
        assert!(healthy.served > 12, "survivor absorbed re-routed traffic");
    }

    #[test]
    fn last_shard_standing_is_never_drained() {
        let doomed_queue = Queue::timing_only(Arc::new(DeviceSpec::amd_r9_nano()))
            .with_fault_plan(Arc::new(FaultPlan::new(9).doom_kernels_matching("gemm_T")));
        let doomed_exec = pipeline()
            .device_executor(doomed_queue, ResilientPolicy::default())
            .unwrap();
        let mut sched = ShardedScheduler::new(
            vec![DeviceShard::new("only", doomed_exec)],
            SchedConfig::default(),
        )
        .unwrap();
        let report = sched.serve(&stream(8)).unwrap();
        assert_eq!(report.served, 8);
        assert_eq!(report.dropped, 0);
        assert!(sched.is_healthy(0), "sole survivor keeps serving");
        assert!(report.devices[0].reference_fallbacks > 0);
    }

    #[test]
    fn traced_serving_tags_devices() {
        let mut sched = ShardedScheduler::new(
            vec![
                shard_on(DeviceSpec::amd_r9_nano(), "nano-0"),
                shard_on(DeviceSpec::amd_r9_nano(), "nano-1"),
            ],
            SchedConfig {
                policy: RoutingPolicy::RoundRobin,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let mut trace = TraceRecorder::new();
        let report = sched.serve_traced(&stream(8), &mut trace).unwrap();
        assert_eq!(trace.decided_launches(), report.served);
        let json = trace.to_chrome_trace();
        assert!(json.contains("\"device\":0") && json.contains("\"device\":1"));
    }

    #[test]
    fn serve_accumulates_across_calls() {
        let mut sched = ShardedScheduler::new(
            vec![shard_on(DeviceSpec::amd_r9_nano(), "nano")],
            SchedConfig::default(),
        )
        .unwrap();
        sched.serve(&stream(4)).unwrap();
        let report = sched.serve(&stream(4)).unwrap();
        assert_eq!(report.served, 4, "per-call report");
        assert_eq!(sched.telemetry().served, 8, "telemetry is cumulative");
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput() > 0.0);
    }
}
