//! # autokernel-core
//!
//! The paper's contribution: machine-learning driven pruning of a kernel
//! configuration space and cheap runtime selection among the survivors.
//!
//! The pipeline, mirroring Sections II-IV of the paper:
//!
//! 1. [`dataset`] — benchmark every [`autokernel_gemm::KernelConfig`]
//!    (640) on every dataset GEMM shape, normalising each shape's
//!    timings to its best configuration (Figure 1 / Figure 2 data).
//! 2. [`prune`] — five strategies that shrink 640 configurations to a
//!    small shipped set: top-N by optimal count, k-means, PCA + k-means,
//!    HDBSCAN and a leaf-bounded decision-tree regression (Figure 4).
//! 3. [`select`] — six runtime classifiers mapping a GEMM shape to one of
//!    the shipped configurations (Table I).
//! 4. [`codegen`] — deployment: exporting the decision tree as nested
//!    `if` statements of plain Rust, the paper's argument for trees in
//!    low-latency libraries.
//! 5. [`pipeline`] — the end-to-end [`pipeline::TuningPipeline`], plus
//!    [`autotune`], the trial-run dynamic autotuner machine-learning
//!    frameworks traditionally use, as the baseline the introduction
//!    argues against.
//!
//! Extensions beyond the paper: [`regression`] implements the related
//! work's predictive-auto-tuning alternative (per-kernel boosted-tree
//! performance models, argmax selection), [`crossval`] adds k-fold
//! evaluation for the tiny-dataset regime the paper worries about, and
//! [`online`] closes the serving loop with bandit refinement and
//! Page–Hinkley drift detection over measured launch times, and
//! [`sched`] shards a serving stream across a fleet of per-device
//! executor stacks with batching, routing policies, bounded queues and
//! failure drain, and [`persist`] makes the learned serving state
//! durable: versioned checksummed snapshots written atomically at a
//! background cadence, restored corruption-tolerantly on startup, and
//! transplantable across devices for cross-device warm start.

#![warn(missing_docs)]

pub mod autotune;
pub mod cache;
pub mod codegen;
pub mod crossval;
pub mod dataset;
pub mod decide;
pub mod evaluate;
pub mod ingress;
pub mod libsize;
pub mod online;
pub mod persist;
pub mod pipeline;
pub mod prune;
pub mod regression;
pub mod report;
pub mod resilient;
pub mod sched;
pub mod select;

pub use cache::{
    BoundedCacheConfig, CachedSelector, CountingBloom, LatencyHistogram, SelectionOutcome,
    SelectionTelemetry, ShardedCache, TelemetrySnapshot,
};
pub use dataset::{PerformanceDataset, StaticPruneStats};
pub use decide::{ClusterTable, ShapeTable, NO_SLOT};
pub use ingress::{
    ClassReport, Ingress, IngressConfig, IngressReport, IngressRequest, Priority, ShedReason,
    SubmitOutcome, TenantQuota,
};
pub use online::{OnlineConfig, OnlineSelector, OnlineStats};
pub use persist::{
    RestoreOutcome, Snapshot, SnapshotError, SnapshotFault, SnapshotFaultInjector,
    SnapshotterConfig,
};
pub use pipeline::{PipelineConfig, TuningPipeline};
pub use prune::PruneMethod;
pub use regression::{RegressionParams, RegressionSelector};
pub use resilient::{
    BreakerState, CircuitBreaker, FailureRecord, LaunchReport, ResilientExecutor, ResilientPolicy,
};
pub use sched::deque::StealDeque;
pub use sched::{
    Assignment, DeviceReport, DeviceShard, GemmRequest, RoutingPolicy, SchedConfig, SchedReport,
    SchedTelemetry, ShardedScheduler,
};
pub use select::{AnalyticalSelector, FeatureSpace, Selector, SelectorKind};

/// Errors from the selection pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying ML estimator failure.
    Ml(autokernel_mlkit::MlError),
    /// Underlying simulator failure.
    Sim(autokernel_sycl_sim::SimError),
    /// Dataset construction or indexing problem.
    Dataset(String),
    /// A selector produced a configuration index outside the global
    /// 640-config space — a corrupted model artefact, not a user error.
    BadConfigIndex(usize),
    /// No configuration in the candidate set can launch on the target
    /// device (analytical cold-start selection over an empty or fully
    /// rejected set).
    NoLaunchableConfig,
    /// Every shard in the fleet has melted down: the scheduler degraded
    /// the leftover traffic to the reference-kernel path and reports it
    /// here instead of spinning or panicking.
    FleetMeltdown {
        /// Requests that still completed via the reference path.
        degraded: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::Dataset(s) => write!(f, "dataset error: {s}"),
            CoreError::BadConfigIndex(i) => {
                write!(f, "config index {i} outside the kernel configuration space")
            }
            CoreError::NoLaunchableConfig => {
                write!(
                    f,
                    "no candidate configuration can launch on the target device"
                )
            }
            CoreError::FleetMeltdown { degraded } => write!(
                f,
                "all shards melted down; {degraded} request(s) degraded to the reference kernel"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<autokernel_mlkit::MlError> for CoreError {
    fn from(e: autokernel_mlkit::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<autokernel_sycl_sim::SimError> for CoreError {
    fn from(e: autokernel_sycl_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
