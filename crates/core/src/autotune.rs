//! The baseline the paper's introduction argues against: *dynamic*
//! trial-run autotuning, as traditionally done inside machine-learning
//! frameworks — the first time an input size appears, every candidate
//! kernel is timed and the winner cached for subsequent runs.
//!
//! This is optimal in steady state but pays a large exploration cost
//! whenever the workload keeps changing (the "research" scenario of the
//! paper), which is exactly what the examples demonstrate against the
//! ML selector.

use autokernel_gemm::{model, GemmShape, KernelConfig};
use autokernel_sycl_sim::{DeviceSpec, Queue};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of one autotuner lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneDecision {
    /// Chosen configuration index.
    pub config: usize,
    /// Simulated seconds spent on trial runs for this call (0 on a
    /// cache hit).
    pub trial_cost_s: f64,
    /// Whether the decision came from the cache.
    pub cache_hit: bool,
}

/// First-use trial-run autotuner over a candidate configuration set.
pub struct DynamicAutotuner {
    queue: Queue,
    candidates: Vec<usize>,
    cache: HashMap<GemmShape, usize>,
}

impl DynamicAutotuner {
    /// Create an autotuner timing `candidates` (configuration indices)
    /// on `device`. An empty candidate list defaults to the full space.
    pub fn new(device: &DeviceSpec, candidates: Vec<usize>) -> Self {
        let candidates = if candidates.is_empty() {
            (0..KernelConfig::count()).collect()
        } else {
            candidates
        };
        DynamicAutotuner {
            queue: Queue::timing_only(Arc::new(device.clone())),
            candidates,
            cache: HashMap::new(),
        }
    }

    /// Decide a configuration for `shape`, running trials on first use.
    pub fn decide(&mut self, shape: GemmShape) -> AutotuneDecision {
        if let Some(&config) = self.cache.get(&shape) {
            return AutotuneDecision {
                config,
                trial_cost_s: 0.0,
                cache_hit: true,
            };
        }
        let mut best = (self.candidates[0], f64::INFINITY);
        let mut total = 0.0;
        for &cfg_idx in &self.candidates {
            let cfg = KernelConfig::from_index(cfg_idx).expect("valid candidate index");
            let range = model::launch_range(&cfg, &shape).expect("launchable");
            let profile = model::profile(&cfg, &shape, self.queue.device());
            // A candidate this device refuses to launch costs no trial
            // time and can never win the trial.
            let Ok((_, duration)) =
                self.queue
                    .price(&profile, &range, model::noise_seed(&cfg, &shape))
            else {
                continue;
            };
            total += duration;
            if duration < best.1 {
                best = (cfg_idx, duration);
            }
        }
        self.cache.insert(shape, best.0);
        AutotuneDecision {
            config: best.0,
            trial_cost_s: total,
            cache_hit: false,
        }
    }

    /// Simulated execution time of `config` on `shape` (used to account
    /// for the production run after the decision).
    pub fn run_cost(&self, shape: GemmShape, config: usize) -> f64 {
        let cfg = KernelConfig::from_index(config).expect("valid config index");
        let range = model::launch_range(&cfg, &shape).expect("launchable");
        let profile = model::profile(&cfg, &shape, self.queue.device());
        match self
            .queue
            .price(&profile, &range, model::noise_seed(&cfg, &shape))
        {
            Ok((_, duration)) => duration,
            // Unlaunchable here: infinite cost, never a sane production pick.
            Err(_) => f64::INFINITY,
        }
    }

    /// Number of shapes tuned so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The candidate set being trialled.
    pub fn candidates(&self) -> &[usize] {
        &self.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_pays_trials_second_use_is_free() {
        let mut at = DynamicAutotuner::new(&DeviceSpec::amd_r9_nano(), vec![0, 100, 616]);
        let shape = GemmShape::new(256, 256, 256);
        let d1 = at.decide(shape);
        assert!(!d1.cache_hit);
        assert!(d1.trial_cost_s > 0.0);
        let d2 = at.decide(shape);
        assert!(d2.cache_hit);
        assert_eq!(d2.trial_cost_s, 0.0);
        assert_eq!(d1.config, d2.config);
        assert_eq!(at.cache_len(), 1);
    }

    #[test]
    fn picks_the_fastest_candidate() {
        let candidates = vec![3, 616, 42, 500];
        let mut at = DynamicAutotuner::new(&DeviceSpec::amd_r9_nano(), candidates.clone());
        let shape = GemmShape::new(512, 512, 512);
        let d = at.decide(shape);
        let chosen_cost = at.run_cost(shape, d.config);
        for &c in &candidates {
            assert!(chosen_cost <= at.run_cost(shape, c) + 1e-15);
        }
    }

    #[test]
    fn trial_cost_is_sum_of_candidate_runs() {
        let candidates = vec![10, 20, 30];
        let mut at = DynamicAutotuner::new(&DeviceSpec::amd_r9_nano(), candidates.clone());
        let shape = GemmShape::new(128, 64, 32);
        let d = at.decide(shape);
        let expect: f64 = candidates.iter().map(|&c| at.run_cost(shape, c)).sum();
        assert!((d.trial_cost_s - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_defaults_to_full_space() {
        let at = DynamicAutotuner::new(&DeviceSpec::amd_r9_nano(), vec![]);
        assert_eq!(at.candidates().len(), KernelConfig::count());
    }
}
