//! Resilient kernel execution: retry, circuit breaking and fallback
//! chains on top of the cached selector.
//!
//! The serving layer (`cache`) answers *which* kernel to launch; this
//! module guarantees the launch *completes* even when the runtime
//! injects faults or a shipped configuration is simply broken on the
//! current device. The strategy is the standard production triad:
//!
//! 1. **Retry with backoff** — transient faults (launch failures,
//!    device-lost, timeouts) are retried up to a per-candidate attempt
//!    budget, with exponential backoff plus deterministic jitter charged
//!    to the *simulated* clock, all under a per-launch deadline.
//! 2. **Circuit breakers** — each shipped configuration carries a
//!    closed → open → half-open breaker. A configuration that keeps
//!    failing is quarantined (open) for a cooldown and skipped without
//!    wasting an attempt; after the cooldown exactly one probe launch is
//!    admitted (half-open) to test recovery.
//! 3. **Fallback chain** — the selector's pick, then the remaining
//!    shipped configurations in recorded-performance order, then the
//!    reference GEMM on a fault-free queue. The last rung cannot fail,
//!    so [`ResilientExecutor::launch`] always returns a completed event
//!    with correct results.
//!
//! Every decision is visible: retries, breaker trips, quarantine skips
//! and fallback depths flow into [`SelectionTelemetry`] counters and
//! into the [`LaunchDecision`] annotations a
//! [`autokernel_sycl_sim::TraceRecorder`] renders.

use crate::cache::CachedSelector;
use crate::online::OnlineSelector;
use crate::{CoreError, Result};
use autokernel_analyze::SpaceAnalysis;
use autokernel_gemm::{GemmShape, KernelConfig, ReferenceGemmKernel, TiledGemmKernel};
use autokernel_sycl_sim::perf::deterministic_noise;
use autokernel_sycl_sim::trace::{FallbackLevel, LaunchDecision, TraceRecorder};
use autokernel_sycl_sim::{Buffer, Event, Queue, SimError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Knobs for retry, breaker and deadline behaviour. The defaults suit
/// the simulated device's microsecond-scale kernels; a real deployment
/// would scale them with observed launch latency.
#[derive(Debug, Clone)]
pub struct ResilientPolicy {
    /// Maximum launch attempts per candidate configuration (≥ 1).
    pub max_attempts: u32,
    /// First backoff interval after a transient failure, in simulated
    /// seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_multiplier: f64,
    /// Jitter amplitude on each backoff interval (0 disables, 0.25 means
    /// ±25 %), decorrelating retry storms across concurrent callers.
    pub jitter: f64,
    /// Per-launch deadline in simulated seconds: once spent, remaining
    /// candidates get one attempt each with no backoff waits.
    pub deadline_s: f64,
    /// Consecutive failures that trip a configuration's breaker open.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open, in simulated seconds.
    pub breaker_cooldown_s: f64,
}

impl Default for ResilientPolicy {
    fn default() -> Self {
        ResilientPolicy {
            max_attempts: 4,
            base_backoff_s: 20.0e-6,
            backoff_multiplier: 2.0,
            jitter: 0.25,
            deadline_s: 10.0e-3,
            breaker_threshold: 3,
            breaker_cooldown_s: 5.0e-3,
        }
    }
}

/// Observable breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: launches flow through, failures are counted.
    Closed,
    /// Quarantined: launches are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed (or probe in flight): exactly one probe launch
    /// is admitted; its outcome closes or re-opens the breaker.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { until_s: f64 },
    HalfOpen,
}

/// A per-configuration circuit breaker over simulated time.
///
/// Thread-safe: all transitions happen under an internal mutex, so
/// concurrent callers racing on [`CircuitBreaker::admit`] see
/// first-come-first-served semantics — in particular the half-open
/// probe is admitted to exactly one caller.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: Mutex<State>,
    threshold: u32,
    cooldown_s: f64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and quarantining for `cooldown_s` of simulated time.
    pub fn new(threshold: u32, cooldown_s: f64) -> Self {
        CircuitBreaker {
            state: Mutex::new(State::Closed { failures: 0 }),
            threshold: threshold.max(1),
            cooldown_s: cooldown_s.max(0.0),
        }
    }

    /// Whether a launch may proceed at simulated time `now_s`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits *this* caller as the single probe; further callers are
    /// rejected until the probe reports back.
    pub fn admit(&self, now_s: f64) -> bool {
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } => true,
            State::Open { until_s } => {
                if now_s >= until_s {
                    *state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
            State::HalfOpen => false,
        }
    }

    /// Report a successful launch: the breaker closes and the failure
    /// count resets.
    pub fn on_success(&self) {
        *self.state.lock() = State::Closed { failures: 0 };
    }

    /// Report a failed launch at simulated time `now_s`. Returns `true`
    /// when this failure *trips* the breaker open (threshold reached
    /// while closed, or a half-open probe failing).
    pub fn on_failure(&self, now_s: f64) -> bool {
        let mut state = self.state.lock();
        match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    *state = State::Open {
                        until_s: now_s + self.cooldown_s,
                    };
                    true
                } else {
                    *state = State::Closed { failures };
                    false
                }
            }
            State::HalfOpen => {
                *state = State::Open {
                    until_s: now_s + self.cooldown_s,
                };
                true
            }
            State::Open { .. } => false,
        }
    }

    /// The state an observer at `now_s` would see (an open breaker whose
    /// cooldown has elapsed reads as half-open: ready for a probe).
    pub fn state(&self, now_s: f64) -> BreakerState {
        match *self.state.lock() {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { until_s } if now_s < until_s => BreakerState::Open,
            State::Open { .. } | State::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Consecutive failures recorded while closed (0 in other states).
    pub fn failure_count(&self) -> u32 {
        match *self.state.lock() {
            State::Closed { failures } => failures,
            _ => 0,
        }
    }
}

/// One absorbed launch failure, for reporting and trace rendering.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The configuration whose launch failed.
    pub config_index: usize,
    /// The error the runtime returned.
    pub error: SimError,
    /// The failed launch's span on the device clock, when the fault
    /// consumed device time (injected faults do; structural rejections
    /// like resource exhaustion fail before touching the device).
    pub event: Option<Event>,
}

/// The outcome of one resilient launch: the completed event, the fully
/// annotated decision, and every failure absorbed along the way.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// The completion event of the kernel that finally ran.
    pub event: Event,
    /// Decision annotation: selector pick, cache hit, failed attempts,
    /// fallback depth.
    pub decision: LaunchDecision,
    /// The tiled configuration that served the launch, or `None` when
    /// the reference GEMM did.
    pub config: Option<KernelConfig>,
    /// Failures absorbed before completion (empty on the happy path).
    pub failures: Vec<FailureRecord>,
}

impl LaunchReport {
    /// Whether the launch completed without a single failure on the
    /// selector's own pick.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.decision.fallback == FallbackLevel::Primary
    }
}

/// A [`CachedSelector`] + [`Queue`] wrapped with retry, per-config
/// circuit breakers and a fallback chain. Shareable across threads by
/// reference (`&self` everywhere; clone the operand [`Buffer`]s per
/// caller as usual).
pub struct ResilientExecutor {
    selector: Arc<CachedSelector>,
    queue: Queue,
    /// The terminal rung runs here: same device and shared clock as
    /// `queue`, but no fault plan — modelling the host-side safe path
    /// device faults cannot reach.
    safe_queue: Queue,
    policy: ResilientPolicy,
    /// Shipped configurations, best recorded performance first; the
    /// fallback chain tries them in this order.
    ranking: Vec<usize>,
    /// `invalid[i]` marks config `i` statically unlaunchable on the
    /// serving device. Empty when no analysis was supplied (legacy
    /// [`ResilientExecutor::new`] path): every config is then trusted.
    invalid: Vec<bool>,
    breakers: HashMap<usize, CircuitBreaker>,
    /// Closed-loop refinement layer, attached via
    /// [`ResilientExecutor::with_online`]. When present, primary picks
    /// flow through it and every launch outcome — including fallback
    /// rungs — feeds its reward estimates and drift detector.
    online: Option<Arc<OnlineSelector>>,
}

impl ResilientExecutor {
    /// Wrap `selector` and `queue`. `ranking` lists the shipped
    /// configuration indices in fallback order (best recorded
    /// performance first); the selector's own shipped set is merged in
    /// so every possible pick has a breaker.
    pub fn new(
        selector: Arc<CachedSelector>,
        queue: Queue,
        ranking: Vec<usize>,
        policy: ResilientPolicy,
    ) -> Self {
        let mut breakers = HashMap::new();
        for &cfg in ranking.iter().chain(selector.selector().configs()) {
            breakers.entry(cfg).or_insert_with(|| {
                CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown_s)
            });
        }
        let safe_queue = queue.without_faults();
        ResilientExecutor {
            selector,
            queue,
            safe_queue,
            policy,
            ranking,
            invalid: Vec::new(),
            breakers,
            online: None,
        }
    }

    /// Attach an [`OnlineSelector`]: primary picks now flow through its
    /// two-stage policy (bit-identical to the cached selector until its
    /// drift detector trips) and every launch outcome feeds its reward
    /// estimates. Without this call the executor behaves exactly as in
    /// the static stack.
    pub fn with_online(mut self, online: Arc<OnlineSelector>) -> Self {
        self.online = Some(online);
        self
    }

    /// The attached online layer, if any.
    pub fn online(&self) -> Option<&Arc<OnlineSelector>> {
        self.online.as_ref()
    }

    /// Like [`ResilientExecutor::new`], but consults a static
    /// [`SpaceAnalysis`] of the serving device first: configurations the
    /// analyzer proved unlaunchable are removed from the fallback chain
    /// (wasting zero attempts on launches the runtime must reject), and
    /// dominated configurations are removed whenever their dominator is
    /// also in the chain (the dominator is pointwise at least as good).
    /// Each removal increments the `fallback_skipped_invalid` telemetry
    /// counter, as does skipping a statically invalid primary pick at
    /// launch time.
    pub fn with_static_analysis(
        selector: Arc<CachedSelector>,
        queue: Queue,
        ranking: Vec<usize>,
        policy: ResilientPolicy,
        analysis: &SpaceAnalysis,
    ) -> Self {
        let invalid = analysis.invalid_mask();
        let telemetry = selector.telemetry();
        let mut kept = Vec::with_capacity(ranking.len());
        for &cfg in &ranking {
            if invalid.get(cfg).copied().unwrap_or(false) {
                telemetry.record_fallback_skipped_invalid();
                continue;
            }
            let dominator_present = analysis
                .configs
                .get(cfg)
                .and_then(|c| c.dominated_by)
                .is_some_and(|d| ranking.contains(&d));
            if dominator_present {
                telemetry.record_fallback_skipped_invalid();
                continue;
            }
            kept.push(cfg);
        }
        let mut executor = Self::new(selector, queue, kept, policy);
        executor.invalid = invalid;
        executor
    }

    /// The policy in force.
    pub fn policy(&self) -> &ResilientPolicy {
        &self.policy
    }

    /// The fallback ranking (shipped configs, best first).
    pub fn ranking(&self) -> &[usize] {
        &self.ranking
    }

    /// The wrapped cached selector (telemetry lives here).
    pub fn selector(&self) -> &CachedSelector {
        &self.selector
    }

    /// The faultable queue launches run on (the device's timeline; a
    /// fleet scheduler reads its clock for load accounting).
    pub fn queue(&self) -> &Queue {
        &self.queue
    }

    /// The breaker state an observer would see for a configuration now.
    pub fn breaker_state(&self, config_index: usize) -> Option<BreakerState> {
        self.breakers
            .get(&config_index)
            .map(|b| b.state(self.queue.now_s()))
    }

    /// Configurations currently quarantined (breaker open).
    pub fn quarantined(&self) -> Vec<usize> {
        let now = self.queue.now_s();
        let mut out: Vec<usize> = self
            .breakers
            .iter()
            .filter(|(_, b)| b.state(now) == BreakerState::Open)
            .map(|(&cfg, _)| cfg)
            .collect();
        out.sort_unstable();
        out
    }

    /// Execute `C = A · B` for `shape`, guaranteeing completion: the
    /// selector's pick with retries, then next-best shipped configs,
    /// then the reference GEMM. Errors surface only for *structural*
    /// problems (operand buffers disagreeing with `shape`, a corrupted
    /// model artefact) — never for injected device faults.
    pub fn launch(
        &self,
        shape: GemmShape,
        a: &Buffer<f32>,
        b: &Buffer<f32>,
        c: &Buffer<f32>,
    ) -> Result<LaunchReport> {
        let telemetry = self.selector.telemetry();
        telemetry.record_resilient_launch();
        // Capture the selector generation with the decision: any reward
        // this launch eventually produces belongs to *this* regime, and
        // the online layer discards it if drift resets in between.
        let (outcome, decision_generation) = match &self.online {
            Some(online) => (online.select_outcome(&shape)?, online.generation()),
            None => (self.selector.select_outcome(&shape)?, 0),
        };
        let primary = outcome.config_index;

        let deadline_s = self.queue.now_s() + self.policy.deadline_s;
        let mut failures: Vec<FailureRecord> = Vec::new();

        // A statically invalid primary pick (possible only when the model
        // artefact and the serving device disagree) is skipped without
        // burning an attempt: the runtime would reject every launch of it.
        let primary_ok = !self.invalid.get(primary).copied().unwrap_or(false);
        if !primary_ok {
            telemetry.record_fallback_skipped_invalid();
        }
        let candidates = std::iter::once(primary)
            .filter(|_| primary_ok)
            .chain(self.ranking.iter().copied().filter(|&r| r != primary));
        for (depth, cfg_idx) in candidates.enumerate() {
            let effective_depth = if primary_ok { depth } else { depth + 1 };
            let config =
                KernelConfig::from_index(cfg_idx).ok_or(CoreError::BadConfigIndex(cfg_idx))?;
            let kernel = TiledGemmKernel::new(config, shape, a.clone(), b.clone(), c.clone())?;
            let range = kernel.preferred_range()?;
            let mut backoff_s = self.policy.base_backoff_s;

            for attempt in 0..self.policy.max_attempts.max(1) {
                if let Some(breaker) = self.breakers.get(&cfg_idx) {
                    if !breaker.admit(self.queue.now_s()) {
                        telemetry.record_quarantine_skip();
                        break; // quarantined: next candidate
                    }
                }
                match self.queue.submit(&kernel, range) {
                    Ok(event) => {
                        if let Some(breaker) = self.breakers.get(&cfg_idx) {
                            breaker.on_success();
                        }
                        if let Some(online) = &self.online {
                            online.record_success(
                                &shape,
                                cfg_idx,
                                event.duration_s(),
                                decision_generation,
                            );
                        }
                        let fallback = if effective_depth == 0 {
                            FallbackLevel::Primary
                        } else {
                            telemetry.record_fallback_next_best();
                            FallbackLevel::NextBest(effective_depth.min(u8::MAX as usize) as u8)
                        };
                        let decision = LaunchDecision::new(cfg_idx, outcome.cache_hit)
                            .with_resilience(failures.len() as u32, fallback);
                        return Ok(LaunchReport {
                            event,
                            decision,
                            config: Some(config),
                            failures,
                        });
                    }
                    Err(error) => {
                        telemetry.record_launch_failure();
                        let now = self.queue.now_s();
                        let tripped = match self.breakers.get(&cfg_idx) {
                            Some(breaker) => breaker.on_failure(now),
                            None => false,
                        };
                        if tripped {
                            telemetry.record_breaker_trip();
                        }
                        let event = match &error {
                            SimError::Fault(f) => Some(Event::failed(
                                f.kernel.clone(),
                                f.at_s,
                                f.at_s + f.consumed_s,
                                f.kind,
                            )),
                            _ => None,
                        };
                        let transient = error.is_transient();
                        if let Some(online) = &self.online {
                            online.record_failure(&shape, cfg_idx, transient, decision_generation);
                        }
                        failures.push(FailureRecord {
                            config_index: cfg_idx,
                            error,
                            event,
                        });
                        if !transient || tripped {
                            break; // this config is a lost cause: next candidate
                        }
                        if attempt + 1 < self.policy.max_attempts {
                            if now >= deadline_s {
                                break; // deadline spent: stop retrying, fall through
                            }
                            telemetry.record_retry();
                            let jitter_seed = (cfg_idx as u64)
                                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                .wrapping_add(attempt as u64)
                                .wrapping_add(shape.stable_hash());
                            let wait =
                                backoff_s * deterministic_noise(jitter_seed, self.policy.jitter);
                            self.queue.wait(wait);
                            backoff_s *= self.policy.backoff_multiplier.max(1.0);
                        }
                    }
                }
            }
        }

        // Terminal rung: the reference GEMM on the fault-free queue.
        // Exact results, untuned speed, cannot be quarantined.
        telemetry.record_fallback_reference();
        let kernel = ReferenceGemmKernel::new(shape, a.clone(), b.clone(), c.clone())?;
        let range = kernel.preferred_range()?;
        let event = self.safe_queue.submit(&kernel, range)?;
        let decision = LaunchDecision::new(primary, outcome.cache_hit)
            .with_resilience(failures.len() as u32, FallbackLevel::Reference);
        Ok(LaunchReport {
            event,
            decision,
            config: None,
            failures,
        })
    }

    /// Like [`ResilientExecutor::launch`], also rendering the outcome
    /// into `trace`: every absorbed failure that consumed device time
    /// appears as a `kernel_fault` span, and the completing launch
    /// carries the full [`LaunchDecision`] annotation.
    pub fn launch_traced(
        &self,
        shape: GemmShape,
        a: &Buffer<f32>,
        b: &Buffer<f32>,
        c: &Buffer<f32>,
        trace: &mut TraceRecorder,
        queue_label: &str,
    ) -> Result<LaunchReport> {
        let report = self.launch(shape, a, b, c)?;
        for failure in &report.failures {
            if let Some(event) = &failure.event {
                trace.record(queue_label, event.clone());
            }
        }
        trace.record_with_decision(queue_label, report.event.clone(), report.decision);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let b = CircuitBreaker::new(3, 1.0);
        assert_eq!(b.state(0.0), BreakerState::Closed);
        assert!(!b.on_failure(0.0));
        assert!(!b.on_failure(0.0));
        assert_eq!(b.failure_count(), 2);
        assert!(b.on_failure(0.0), "third failure trips");
        assert_eq!(b.state(0.5), BreakerState::Open);
        assert!(!b.admit(0.5), "open rejects");
        // Cooldown elapsed: exactly one probe admitted.
        assert!(b.admit(1.5));
        assert!(!b.admit(1.5), "second caller waits for the probe");
        b.on_success();
        assert_eq!(b.state(1.5), BreakerState::Closed);
        assert!(b.admit(1.6));
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let b = CircuitBreaker::new(1, 2.0);
        assert!(b.on_failure(0.0));
        assert!(b.admit(2.5), "probe after cooldown");
        assert!(b.on_failure(2.5), "failed probe re-trips");
        assert_eq!(b.state(3.0), BreakerState::Open);
        assert!(!b.admit(3.0));
        assert!(b.admit(5.0), "new cooldown counted from the re-trip");
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = CircuitBreaker::new(2, 1.0);
        assert!(!b.on_failure(0.0));
        b.on_success();
        assert!(!b.on_failure(0.0), "count restarted");
        assert_eq!(b.failure_count(), 1);
    }

    #[test]
    fn policy_defaults_are_sane() {
        let p = ResilientPolicy::default();
        assert!(p.max_attempts >= 1);
        assert!(p.base_backoff_s > 0.0 && p.deadline_s > p.base_backoff_s);
        assert!(p.breaker_threshold >= 1 && p.breaker_cooldown_s > 0.0);
    }
}
