//! The sub-20ns decision hot path (ROADMAP item 4).
//!
//! Serving decisions used to cost ~155 ns (mirror) / ~68 ns (adaptive)
//! per pick: a `RwLock`-guarded `HashMap` probe, an `Instant::now`
//! pair, a latency-histogram record and a linear shipped-set scan on
//! every single call. This module provides the flat, open-addressed
//! tables that replace those map lookups:
//!
//! * [`ShapeTable`] — a fixed-size, lock-free L1 in front of the
//!   sharded decision cache. One `Acquire` generation load, a short
//!   linear probe over atomic key words and two `Relaxed` counter
//!   bumps answer the common pick; everything else (the model run, the
//!   LRU-touched shard insert, per-decision latency sampling) stays on
//!   the existing slow path. Invalidation is free: each published
//!   value carries the cache generation it was decided under, so the
//!   O(1) generation bump the drift path already performs makes every
//!   L1 entry unreadable at once.
//! * [`ClusterTable`] — an open-addressed replacement for the online
//!   layer's `HashMap<[i64; 3], ClusterState>`. It lives under the
//!   existing bandit mutex, so it is plain (non-atomic) storage; the
//!   win is the flat probe sequence and allocation-free steady state.
//! * [`cost`] — a deterministic operation-count model of the fast
//!   path. Wall-clock nanoseconds are noisy enough that the bench gate
//!   must band them at 300%; the op counts (table probes + atomic RMWs
//!   per pick) are exact and banded at 15%, so a "small" structural
//!   regression cannot hide inside timing noise.
//!
//! The decide path operates on `u16` configuration indices end-to-end
//! (`KernelConfig::index_u16`: the space has 640 points), halving the
//! packed-entry footprint and keeping the whole L1 slot in one
//! `AtomicU64`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of L1 slots in a default [`ShapeTable`]: comfortably above
/// the paper's 170-shape working set at a load factor where probe
/// sequences stay short, and small enough (32 KiB of key+value words)
/// to live in L2 cache.
pub const DEFAULT_SLOTS: usize = 2048;

/// Probe-sequence cap. A lookup or install that does not resolve
/// within this many slots falls through to the slow path instead of
/// scanning further — the table never degrades into a linear search.
pub const MAX_PROBES: usize = 16;

/// Shipped-slot sentinel for configurations outside the shipped set
/// (they are counted but own no `picks` slot).
pub const NO_SLOT: u16 = u16::MAX;

const VALID: u64 = 1 << 63;
const GEN_MASK: u64 = 0x7FFF_FFFF;
/// `stable_hash` output 0 is remapped to this constant so the key word
/// 0 can mean "never claimed" (the golden-ratio odd constant used by
/// splitmix-style mixers).
const ZERO_HASH_REMAP: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn pack(generation: u64, slot: u16, config: u16) -> u64 {
    VALID | ((generation & GEN_MASK) << 32) | ((slot as u64) << 16) | config as u64
}

/// A lock-free, fixed-size, open-addressed decision table: the L1 of
/// the decide path.
///
/// Keys are shape hashes (`GemmShape::stable_hash`, remapped away from
/// 0); values pack `valid | generation | shipped-slot | config` into
/// one word. A probe is a hit only if the stored generation matches
/// the live cache generation, so `ShardedCache::bump_generation` —
/// the drift-invalidation path — implicitly empties this table too.
///
/// Concurrency: keys are claimed once with a CAS and never change
/// (linear probing stays stable), values are republished with plain
/// `Release` stores. Within one cache generation a shape's decision
/// is a pure function of the selector, so racing installers write the
/// same value; across generations the generation tag arbitrates.
#[derive(Debug)]
pub struct ShapeTable {
    mask: u64,
    keys: Box<[AtomicU64]>,
    values: Box<[AtomicU64]>,
}

impl ShapeTable {
    /// A table with [`DEFAULT_SLOTS`] slots.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// A table with at least `slots` slots (rounded up to a power of
    /// two, minimum 64 so [`MAX_PROBES`] never wraps past the start).
    pub fn with_slots(slots: usize) -> Self {
        let cap = slots.max(64).next_power_of_two();
        ShapeTable {
            mask: (cap - 1) as u64,
            keys: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            values: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Slot count (a power of two).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn remap(hash: u64) -> u64 {
        if hash == 0 {
            ZERO_HASH_REMAP
        } else {
            hash
        }
    }

    /// Probe for `hash` under `generation`. Returns the packed
    /// `(config, shipped_slot)` on a generation-current hit, `None` on
    /// a miss, a stale generation, or an over-long probe sequence.
    #[inline]
    pub fn probe(&self, hash: u64, generation: u64) -> Option<(u16, u16)> {
        let hash = Self::remap(hash);
        let mut idx = (hash & self.mask) as usize;
        for _ in 0..MAX_PROBES {
            let key = self.keys.get(idx)?.load(Ordering::Acquire); // atomic:role(publish)
            if key == hash {
                let value = self.values.get(idx)?.load(Ordering::Acquire); // atomic:role(publish)
                if value & VALID != 0 && (value >> 32) & GEN_MASK == generation & GEN_MASK {
                    return Some(((value & 0xFFFF) as u16, ((value >> 16) & 0xFFFF) as u16));
                }
                return None;
            }
            if key == 0 {
                return None;
            }
            idx = ((idx as u64 + 1) & self.mask) as usize;
        }
        None
    }

    /// Publish `(config, slot)` for `hash` under `generation`. Returns
    /// `false` (and publishes nothing) if the probe window is already
    /// full of other keys — the slow path stays correct without the
    /// memoisation.
    pub fn install(&self, hash: u64, generation: u64, config: u16, slot: u16) -> bool {
        let hash = Self::remap(hash);
        let mut idx = (hash & self.mask) as usize;
        for _ in 0..MAX_PROBES {
            let Some(key) = self.keys.get(idx) else {
                return false;
            };
            let current = key.load(Ordering::Acquire); // atomic:role(publish)
            let owned = current == hash
                || (current == 0
                    // atomic:role(publish)
                    && match key.compare_exchange(0, hash, Ordering::AcqRel, Ordering::Acquire) {
                        Ok(_) => true,
                        Err(actual) => actual == hash,
                    });
            if owned {
                if let Some(value) = self.values.get(idx) {
                    // atomic:role(publish)
                    value.store(pack(generation, slot, config), Ordering::Release);
                    return true;
                }
                return false;
            }
            idx = ((idx as u64 + 1) & self.mask) as usize;
        }
        false
    }

    /// Drop the published value for `hash`, if present. Used when the
    /// underlying cache entry is overwritten or evicted out-of-band
    /// (direct `ShardedCache::insert`), so the L1 cannot serve a
    /// decision the L2 no longer holds.
    pub fn invalidate_key(&self, hash: u64) {
        let hash = Self::remap(hash);
        let mut idx = (hash & self.mask) as usize;
        for _ in 0..MAX_PROBES {
            let Some(key) = self.keys.get(idx) else {
                return;
            };
            let current = key.load(Ordering::Acquire); // atomic:role(publish)
            if current == hash {
                if let Some(value) = self.values.get(idx) {
                    value.store(0, Ordering::Release); // atomic:role(publish)
                }
                return;
            }
            if current == 0 {
                return;
            }
            idx = ((idx as u64 + 1) & self.mask) as usize;
        }
    }

    /// Unpublish every value (keys stay claimed so concurrent probes
    /// stay wait-free). Cold path: full-clear and snapshot-restore,
    /// where the cache generation does *not* change but the cached
    /// decisions do.
    pub fn invalidate_all(&self) {
        for value in self.values.iter() {
            value.store(0, Ordering::Release); // atomic:role(publish)
        }
    }

    /// Deterministic probe length for `hash`: how many key words a
    /// [`ShapeTable::probe`] inspects before resolving (hit or
    /// definitive miss). `None` if the probe window is exhausted.
    /// This feeds the [`cost`] proxy the bench gate bands at 15%.
    pub fn probe_length(&self, hash: u64) -> Option<u64> {
        let hash = Self::remap(hash);
        let mut idx = (hash & self.mask) as usize;
        for step in 0..MAX_PROBES {
            let key = self.keys.get(idx)?.load(Ordering::Acquire); // atomic:role(publish)
            if key == hash || key == 0 {
                return Some(step as u64 + 1);
            }
            idx = ((idx as u64 + 1) & self.mask) as usize;
        }
        None
    }
}

impl Default for ShapeTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic operation-count model of the decide fast path.
///
/// The bench gate's wall-clock band is 300% (timing noise on shared
/// CI runners); these counts are exact, so `micro_decide` records
/// them alongside the nanoseconds and bands them at 15%. Any change
/// that adds a probe step or an atomic RMW to the common pick moves
/// the proxy even when the ns column happens to look flat.
pub mod cost {
    /// Atomic loads on an L1 hit beyond the key probes: the value word
    /// and the cache-generation word.
    pub const HIT_EXTRA_LOADS: u64 = 2;
    /// Atomic RMWs a single L1-hit `decide` performs: the `hits`
    /// counter and the per-shipped-slot pick counter.
    pub const SINGLE_HIT_RMWS: u64 = 2;
    /// Atomic RMWs an all-hit `decide_batch` flushes *per batch*
    /// independent of batch length: the `hits` counter and the
    /// `hit_nanos` counter (pick-slot flushes add one RMW per
    /// *distinct* shipped slot, not per pick).
    pub const BATCH_FLUSH_RMWS: u64 = 2;
}

/// How many shipped-set slots a `decide_batch` call can accumulate on
/// the stack before flushing pick counts directly. The paper ships a
/// handful of configurations; 64 is far above any real shipped set.
pub const MAX_SHIPPED_SLOTS: usize = 64;

fn hash_cluster_key(key: &[i64; 3]) -> u64 {
    // FNV-1a over the three coordinates, matching the spirit of
    // `GemmShape::stable_hash` (stable across platforms and runs).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &coord in key {
        let mut v = coord as u64;
        for _ in 0..8 {
            h ^= v & 0xFF;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            v >>= 8;
        }
    }
    h
}

/// An open-addressed map from shape-cluster lattice points (`[i64; 3]`
/// quantised log-features) to per-cluster values, replacing the online
/// layer's `HashMap`.
///
/// It lives under the bandit mutex, so there is no interior atomicity;
/// the point is the flat storage: probes walk a contiguous slot array,
/// the steady state allocates nothing, and `clear` (the drift reset)
/// retains capacity instead of rebuilding the map.
#[derive(Debug)]
pub struct ClusterTable<V> {
    slots: Vec<Option<([i64; 3], V)>>,
    len: usize,
}

impl<V> ClusterTable<V> {
    /// An empty table with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// An empty table able to hold at least `capacity` clusters before
    /// growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two() * 2;
        ClusterTable {
            slots: (0..cap).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Number of clusters stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no cluster is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn find(&self, key: &[i64; 3]) -> std::result::Result<usize, usize> {
        let mask = self.mask();
        let mut idx = hash_cluster_key(key) as usize & mask;
        loop {
            match self.slots.get(idx) {
                Some(Some((k, _))) if k == key => return Ok(idx),
                Some(None) => return Err(idx),
                Some(Some(_)) => idx = (idx + 1) & mask,
                // Unreachable: idx is masked to the slot count, but the
                // decide path proves totality instead of panicking.
                None => return Err(0),
            }
        }
    }

    /// Shared lookup.
    pub fn get(&self, key: &[i64; 3]) -> Option<&V> {
        match self.find(key) {
            Ok(idx) => self.slots.get(idx).and_then(|s| s.as_ref()).map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// Exclusive lookup.
    pub fn get_mut(&mut self, key: &[i64; 3]) -> Option<&mut V> {
        match self.find(key) {
            Ok(idx) => self
                .slots
                .get_mut(idx)
                .and_then(|s| s.as_mut())
                .map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// The entry for `key`, created with `make` if absent — the
    /// bandit's `cluster_entry` operation. Amortised allocation-free:
    /// growth only happens when the live load factor crosses 1/2.
    pub fn get_or_insert_with(&mut self, key: [i64; 3], make: impl FnOnce() -> V) -> &mut V {
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        // `find` lands on either the key's own slot or the first empty
        // probe slot; the clamp keeps the index total (the table is
        // never empty, so `len - 1` cannot underflow).
        let idx = match self.find(&key) {
            Ok(idx) => idx,
            Err(idx) => idx,
        }
        .min(self.slots.len() - 1);
        // lint:allow(no-index) idx clamped to slots.len() - 1 above
        let slot = &mut self.slots[idx];
        if slot.is_none() {
            self.len += 1;
        }
        &mut slot.get_or_insert_with(|| (key, make())).1
    }

    /// Insert `value` under `key`, replacing and returning any previous
    /// value (used by the snapshot-restore path).
    pub fn insert(&mut self, key: [i64; 3], value: V) -> Option<V> {
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let idx = match self.find(&key) {
            Ok(idx) => idx,
            Err(idx) => idx,
        }
        .min(self.slots.len() - 1);
        // lint:allow(no-index) idx clamped to slots.len() - 1 above
        let slot = &mut self.slots[idx];
        let previous = slot.replace((key, value)).map(|(_, v)| v);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    // lint:allow-fn(no-alloc) growth is amortised over many inserts, off the common pick
    #[cold]
    fn grow(&mut self) {
        let next_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(
            &mut self.slots,
            (0..next_cap).map(|_| None).collect::<Vec<_>>(),
        );
        self.len = 0;
        for (key, value) in old.into_iter().flatten() {
            self.insert(key, value);
        }
    }

    /// Iterate over `(key, value)` pairs in slot order (callers that
    /// need determinism sort, exactly as they did over the `HashMap`).
    pub fn iter(&self) -> impl Iterator<Item = (&[i64; 3], &V)> {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (k, v)))
    }

    /// Drop every cluster, retaining capacity — the drift reset.
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = None;
        }
        self.len = 0;
    }
}

impl<V> Default for ClusterTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_table_probe_install_roundtrip() {
        let table = ShapeTable::with_slots(128);
        assert_eq!(table.slots(), 128);
        assert_eq!(table.probe(42, 0), None);
        assert!(table.install(42, 0, 617, 3));
        assert_eq!(table.probe(42, 0), Some((617, 3)));
        // A generation bump invalidates without any table write.
        assert_eq!(table.probe(42, 1), None);
        // Republish under the new generation.
        assert!(table.install(42, 1, 12, NO_SLOT));
        assert_eq!(table.probe(42, 1), Some((12, NO_SLOT)));
        assert_eq!(table.probe(42, 0), None);
    }

    #[test]
    fn shape_table_remaps_zero_hash() {
        let table = ShapeTable::with_slots(64);
        assert!(table.install(0, 0, 7, 0));
        assert_eq!(table.probe(0, 0), Some((7, 0)));
        // The remap constant and 0 are the same key.
        assert_eq!(table.probe(ZERO_HASH_REMAP, 0), Some((7, 0)));
    }

    #[test]
    fn shape_table_linear_probing_resolves_collisions() {
        let table = ShapeTable::with_slots(64);
        // Same masked start slot, distinct keys.
        let base = 5u64;
        for i in 0..8u64 {
            let key = base + i * 64;
            assert!(table.install(key, 0, i as u16, NO_SLOT));
        }
        for i in 0..8u64 {
            let key = base + i * 64;
            assert_eq!(table.probe(key, 0), Some((i as u16, NO_SLOT)));
            assert_eq!(table.probe_length(key), Some(i + 1));
        }
    }

    #[test]
    fn shape_table_full_window_falls_through() {
        let table = ShapeTable::with_slots(64);
        for i in 0..MAX_PROBES as u64 {
            assert!(table.install(5 + i * 64, 0, 0, NO_SLOT));
        }
        // The probe window for this start slot is now full of other
        // keys: install declines, probe and probe_length report misses.
        assert!(!table.install(5 + 99 * 64, 0, 1, NO_SLOT));
        assert_eq!(table.probe(5 + 99 * 64, 0), None);
        assert_eq!(table.probe_length(5 + 99 * 64), None);
    }

    #[test]
    fn shape_table_invalidation() {
        let table = ShapeTable::with_slots(64);
        assert!(table.install(9, 4, 100, 1));
        table.invalidate_key(9);
        assert_eq!(table.probe(9, 4), None);
        assert!(table.install(9, 4, 101, 1));
        table.invalidate_all();
        assert_eq!(table.probe(9, 4), None);
        // Keys stay claimed: reinstall lands on the same slot.
        assert!(table.install(9, 4, 102, 1));
        assert_eq!(table.probe(9, 4), Some((102, 1)));
    }

    #[test]
    fn cluster_table_behaves_like_a_map() {
        let mut table: ClusterTable<u32> = ClusterTable::with_capacity(4);
        assert!(table.is_empty());
        assert_eq!(table.insert([1, 2, 3], 10), None);
        assert_eq!(table.insert([1, 2, 3], 11), Some(10));
        assert_eq!(table.get(&[1, 2, 3]), Some(&11));
        assert_eq!(table.get(&[0, 0, 0]), None);
        *table.get_or_insert_with([4, 5, 6], || 20) += 1;
        assert_eq!(table.get(&[4, 5, 6]), Some(&21));
        assert_eq!(table.len(), 2);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.get(&[1, 2, 3]), None);
    }

    #[test]
    fn cluster_table_survives_growth() {
        let mut table: ClusterTable<i64> = ClusterTable::with_capacity(4);
        for i in 0..500i64 {
            table.insert([i, -i, i * 7], i);
        }
        assert_eq!(table.len(), 500);
        for i in 0..500i64 {
            assert_eq!(table.get(&[i, -i, i * 7]), Some(&i), "key {i}");
        }
        assert_eq!(table.iter().count(), 500);
        let sum: i64 = table.iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, (0..500).sum::<i64>());
    }

    #[test]
    fn cluster_table_negative_and_extreme_keys() {
        let mut table: ClusterTable<&'static str> = ClusterTable::new();
        let keys = [
            [i64::MIN, 0, i64::MAX],
            [-1, -1, -1],
            [0, 0, 0],
            [i64::MAX, i64::MAX, i64::MAX],
        ];
        for (i, key) in keys.iter().enumerate() {
            table.insert(*key, ["a", "b", "c", "d"][i]);
        }
        assert_eq!(table.get(&keys[0]), Some(&"a"));
        assert_eq!(table.get(&keys[3]), Some(&"d"));
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn shape_table_concurrent_install_probe() {
        use std::sync::Arc;
        let table = Arc::new(ShapeTable::with_slots(1024));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let hash = 1 + i; // all threads install the same keyset
                        table.install(hash, 0, (i % 640) as u16, NO_SLOT);
                        if let Some((config, _)) = table.probe(hash, 0) {
                            assert_eq!(config, (i % 640) as u16, "thread {t}");
                        }
                    }
                });
            }
        });
        for i in 0..200u64 {
            assert_eq!(table.probe(1 + i, 0), Some(((i % 640) as u16, NO_SLOT)));
        }
    }
}
